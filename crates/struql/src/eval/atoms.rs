//! Evaluation of individual where-clause conditions over a bindings
//! relation.
//!
//! Every function here maps each input row to zero or more extended rows
//! independently of every other row, and emits row *i*'s extensions before
//! row *i+1*'s. [`apply_partitioned`] leans on exactly that property: it
//! splits the relation into contiguous chunks, runs [`apply`] on each
//! chunk on its own scoped thread, and merges the chunk outputs in
//! partition order — producing the byte-identical relation the sequential
//! path would.
//!
//! General path regexes are evaluated *batched*: before the relation is
//! partitioned, [`RegexBatch::prepare`] groups the rows by their distinct
//! bound source (or destination) value and computes each group's
//! extensions exactly once into a read-only memo table. The per-row fan-out
//! then only looks the memo up, so the work is proportional to distinct
//! probe values, not row count, and the memo is shared across
//! [`par::map_chunks`] partitions without perturbing output bytes. A bound
//! destination is probed through the graph's reverse adjacency index with
//! a reversed NFA instead of traversing forward from every node; the
//! results are emitted in ascending source-oid order, which is exactly the
//! order the forward full scan produces, so the old per-row engine (kept
//! behind [`EvalOptions::batch`](super::EvalOptions) as the differential
//! oracle) and the batched engine agree byte-for-byte.

use super::{var_slot, Evaluator, Row};
use crate::ast::{CmpOp, Condition, PathRegex, PathSpec, Term};
use crate::builtins::eval_builtin;
use crate::error::{StruqlError, StruqlResult};
use crate::par;
use crate::plan::Plan;
use crate::rpe::{Nfa, StepPred};
use std::collections::{HashMap, HashSet};
use strudel_graph::{coerce, CollectionId, Graph, InEdge, Label, Oid, Value};

/// Appends variables this condition can bind (positive binders only) that
/// are not yet in scope.
pub(crate) fn introduce_vars(cond: &Condition, vars: &mut Vec<String>) {
    let mut add = |name: &str| {
        if !vars.iter().any(|v| v == name) {
            vars.push(name.to_owned());
        }
    };
    match cond {
        Condition::Collection { arg, .. } => {
            if let Term::Var(v) = arg {
                add(v);
            }
        }
        Condition::Path { src, path, dst, .. } => {
            if let Term::Var(v) = src {
                add(v);
            }
            if let PathSpec::ArcVar(l) = path {
                add(l);
            }
            if let Term::Var(v) = dst {
                add(v);
            }
        }
        Condition::Compare { .. } | Condition::Builtin { .. } => {}
        // Local existentials inside not(…) need slots so the inner
        // existence test can enumerate them.
        Condition::Not(inner, _) => introduce_vars(inner, vars),
    }
}

/// How a term participates in matching: a constant, a bound slot, or an
/// unbound slot to fill.
enum Pos {
    Const(Value),
    Slot(usize),
}

fn term_pos(t: &Term, vars: &[String]) -> StruqlResult<Pos> {
    match t {
        Term::Const(v) => Ok(Pos::Const(v.clone())),
        Term::Var(v) => var_slot(v, vars)
            .map(Pos::Slot)
            .ok_or_else(|| StruqlError::eval(format!("variable '{v}' has no slot"))),
        Term::Skolem { .. } => Err(StruqlError::eval(
            "Skolem terms cannot appear in the where stage",
        )),
    }
}

impl Pos {
    /// The value this position holds in `row`, if any.
    fn value<'r>(&'r self, row: &'r Row) -> Option<&'r Value> {
        match self {
            Pos::Const(v) => Some(v),
            Pos::Slot(i) => row[*i].as_ref(),
        }
    }

    /// Unifies the position with `v` in `row`: if already bound, the values
    /// must agree under dynamic coercion; if unbound, the slot is filled.
    fn unify(&self, row: &mut Row, v: &Value) -> bool {
        match self {
            Pos::Const(c) => coerce::eq(c, v),
            Pos::Slot(i) => match &row[*i] {
                Some(existing) => coerce::eq(existing, v),
                None => {
                    row[*i] = Some(v.clone());
                    true
                }
            },
        }
    }

    /// Whether unifying with `v` *would* succeed, without mutating the row.
    fn would_unify(&self, row: &Row, v: &Value) -> bool {
        match self {
            Pos::Const(c) => coerce::eq(c, v),
            Pos::Slot(i) => match &row[*i] {
                Some(existing) => coerce::eq(existing, v),
                None => true,
            },
        }
    }
}

/// Pre-compiled NFAs for one general-regex path condition: the forward
/// automaton and its reversal (for bound-destination probes over the
/// reverse adjacency index). Cached per epoch by the click-time query
/// cache so a request executes without recompilation.
#[derive(Clone, Debug)]
pub struct PreparedPath {
    pub(crate) fwd: Nfa,
    pub(crate) rev: Nfa,
}

impl PreparedPath {
    /// Compiles both directions of `regex` against `graph`'s interner.
    pub(crate) fn compile(regex: &PathRegex, graph: &Graph) -> Self {
        PreparedPath {
            fwd: Nfa::compile(regex, graph),
            rev: Nfa::compile_reversed(regex, graph),
        }
    }
}

/// Applies the condition at position `pos` of `plan` to the relation,
/// splitting the work across the evaluator's worker budget when the
/// planner's cost-aware sizing says the relation is big enough to pay for
/// it. Output (rows, order, and errors) is identical to [`apply`].
pub(crate) fn apply_partitioned(
    ev: &Evaluator<'_>,
    cond: &Condition,
    rows: Vec<Row>,
    vars: &[String],
    plan: &Plan,
    pos: usize,
) -> StruqlResult<Vec<Row>> {
    apply_partitioned_prepared(ev, cond, None, rows, vars, plan, pos)
}

/// [`apply_partitioned`] with optionally pre-compiled NFAs from a
/// [`PreparedWhere`](super::PreparedWhere). For general regexes the memo
/// table is built over the distinct probe values of the *whole* relation
/// before partitioning, then shared read-only across the workers — the
/// partitions make identical keep/extend decisions from it, so the merged
/// output is byte-identical to the sequential one.
pub(crate) fn apply_partitioned_prepared(
    ev: &Evaluator<'_>,
    cond: &Condition,
    prepared: Option<&PreparedPath>,
    rows: Vec<Row>,
    vars: &[String],
    plan: &Plan,
    pos: usize,
) -> StruqlResult<Vec<Row>> {
    let parts = plan.partitions(pos, rows.len(), ev.workers());
    if let Condition::Path { src, path: PathSpec::Regex(r), dst, .. } = cond {
        if r.as_single_step().is_none() {
            let graph = ev.db().graph();
            let spos = term_pos(src, vars)?;
            let dpos = term_pos(dst, vars)?;
            let batch = RegexBatch::prepare(ev, r, prepared, &rows, &spos, &dpos);
            if parts <= 1 {
                return apply_regex(graph, rows, &spos, &dpos, &batch);
            }
            return par::map_chunks(rows, parts, |chunk| {
                apply_regex(graph, chunk, &spos, &dpos, &batch)
            });
        }
    }
    if parts <= 1 {
        return apply(ev, cond, rows, vars);
    }
    par::map_chunks(rows, parts, |chunk| apply(ev, cond, chunk, vars))
}

/// Applies one condition to the relation, producing the extended relation.
pub(crate) fn apply(
    ev: &Evaluator<'_>,
    cond: &Condition,
    rows: Vec<Row>,
    vars: &[String],
) -> StruqlResult<Vec<Row>> {
    let graph = ev.db().graph();
    match cond {
        Condition::Collection { name, arg, .. } => {
            let pos = term_pos(arg, vars)?;
            let members: &[Value] = graph.members_str(name);
            let cid = graph.collection_id(name);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                match pos.value(&row) {
                    Some(v) => {
                        let is_member = match cid {
                            Some(c) => graph.in_collection(c, v),
                            None => false,
                        };
                        if is_member {
                            out.push(row);
                        }
                    }
                    None => {
                        for m in members {
                            let mut r = row.clone();
                            if pos.unify(&mut r, m) {
                                out.push(r);
                            }
                        }
                    }
                }
            }
            Ok(out)
        }

        Condition::Path { src, path, dst, .. } => {
            let spos = term_pos(src, vars)?;
            let dpos = term_pos(dst, vars)?;
            match path {
                PathSpec::ArcVar(l) => {
                    let lslot = var_slot(l, vars)
                        .ok_or_else(|| StruqlError::eval(format!("arc variable '{l}' lost")))?;
                    apply_arc_var(ev, graph, rows, &spos, lslot, &dpos)
                }
                PathSpec::Regex(r) => match r.as_single_step() {
                    Some(StepPred::Label(name)) => {
                        apply_label_step(ev, graph, rows, &spos, &name, &dpos)
                    }
                    Some(StepPred::Any) => apply_any_step(ev, graph, rows, &spos, &dpos),
                    None => {
                        let batch = RegexBatch::prepare(ev, r, None, &rows, &spos, &dpos);
                        apply_regex(graph, rows, &spos, &dpos, &batch)
                    }
                },
            }
        }

        Condition::Compare { op, lhs, rhs, .. } => {
            let lp = term_pos(lhs, vars)?;
            let rp = term_pos(rhs, vars)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let (Some(a), Some(b)) = (lp.value(&row), rp.value(&row)) else {
                    return Err(StruqlError::eval("comparison over unbound variable"));
                };
                if compare_keeps(*op, a, b) {
                    out.push(row);
                }
            }
            Ok(out)
        }

        Condition::Builtin { pred, arg, .. } => {
            let pos = term_pos(arg, vars)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let Some(v) = pos.value(&row) else {
                    return Err(StruqlError::eval("builtin predicate over unbound variable"));
                };
                if eval_builtin(*pred, v) {
                    out.push(row);
                }
            }
            Ok(out)
        }

        Condition::Not(inner, _) => {
            // All inner variables are bound (checked statically), so the
            // inner condition acts as a per-row existence test. The test
            // runs against the borrowed row — no one-row relation is
            // materialized — and anything hoistable (term positions, NFA
            // compilation, collection lookup) is prepared once up front.
            let check = NotCheck::prepare(graph, inner, vars)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if !check.holds(graph, &row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

fn compare_keeps(op: CmpOp, a: &Value, b: &Value) -> bool {
    use CmpOp::*;
    match op {
        Eq => coerce::eq(a, b),
        Ne => {
            // Comparable-and-different; incomparable values are
            // neither equal nor unequal.
            matches!(
                coerce::compare(a, b),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Greater)
            )
        }
        Lt => coerce::lt(a, b),
        Le => coerce::le(a, b),
        Gt => coerce::lt(b, a),
        Ge => coerce::le(b, a),
    }
}

/// A `not(…)` inner condition compiled for repeated existence checks: term
/// positions resolved, labels and collections looked up, and regexes
/// NFA-compiled once per condition application instead of once per row.
enum NotCheck {
    Collection {
        pos: Pos,
        cid: Option<CollectionId>,
        has_members: bool,
    },
    ArcVar {
        spos: Pos,
        lslot: usize,
        dpos: Pos,
    },
    LabelStep {
        spos: Pos,
        label: Option<Label>,
        dpos: Pos,
    },
    AnyStep {
        spos: Pos,
        dpos: Pos,
    },
    Regex {
        spos: Pos,
        dpos: Pos,
        nfa: Nfa,
    },
    Compare {
        op: CmpOp,
        lp: Pos,
        rp: Pos,
    },
    Builtin {
        pred: crate::ast::BuiltinPred,
        pos: Pos,
    },
    Not(Box<NotCheck>),
}

impl NotCheck {
    fn prepare(graph: &Graph, cond: &Condition, vars: &[String]) -> StruqlResult<NotCheck> {
        Ok(match cond {
            Condition::Collection { name, arg, .. } => NotCheck::Collection {
                pos: term_pos(arg, vars)?,
                cid: graph.collection_id(name),
                has_members: !graph.members_str(name).is_empty(),
            },
            Condition::Path { src, path, dst, .. } => {
                let spos = term_pos(src, vars)?;
                let dpos = term_pos(dst, vars)?;
                match path {
                    PathSpec::ArcVar(l) => NotCheck::ArcVar {
                        spos,
                        lslot: var_slot(l, vars).ok_or_else(|| {
                            StruqlError::eval(format!("arc variable '{l}' lost"))
                        })?,
                        dpos,
                    },
                    PathSpec::Regex(r) => match r.as_single_step() {
                        Some(StepPred::Label(name)) => NotCheck::LabelStep {
                            spos,
                            label: graph.label(&name),
                            dpos,
                        },
                        Some(StepPred::Any) => NotCheck::AnyStep { spos, dpos },
                        None => NotCheck::Regex {
                            spos,
                            dpos,
                            nfa: Nfa::compile(r, graph),
                        },
                    },
                }
            }
            Condition::Compare { op, lhs, rhs, .. } => NotCheck::Compare {
                op: *op,
                lp: term_pos(lhs, vars)?,
                rp: term_pos(rhs, vars)?,
            },
            Condition::Builtin { pred, arg, .. } => NotCheck::Builtin {
                pred: *pred,
                pos: term_pos(arg, vars)?,
            },
            Condition::Not(inner, _) => {
                NotCheck::Not(Box::new(NotCheck::prepare(graph, inner, vars)?))
            }
        })
    }

    /// Whether the inner condition has at least one satisfying extension
    /// of `row` — i.e. whether `apply(cond, [row])` would be non-empty —
    /// without cloning the row or materializing the extensions. Keep/error
    /// decisions match [`apply`] exactly.
    fn holds(&self, graph: &Graph, row: &Row) -> StruqlResult<bool> {
        // The label slot check mirrors Pos::would_unify for the arc
        // variable's string binding.
        let label_ok = |row: &Row, lslot: usize, lname: &str| match &row[lslot] {
            Some(existing) => coerce::eq(existing, &Value::string(lname)),
            None => true,
        };
        Ok(match self {
            NotCheck::Collection {
                pos,
                cid,
                has_members,
            } => match pos.value(row) {
                Some(v) => match cid {
                    Some(c) => graph.in_collection(*c, v),
                    None => false,
                },
                None => *has_members,
            },
            NotCheck::ArcVar { spos, lslot, dpos } => {
                let edge_ok = |e: &strudel_graph::Edge| {
                    label_ok(row, *lslot, graph.label_name(e.label))
                        && dpos.would_unify(row, &e.to)
                };
                match spos.value(row) {
                    Some(Value::Node(o)) => graph.edges(*o).iter().any(edge_ok),
                    Some(_) => false, // atomic source: no out-edges
                    None => graph
                        .node_oids()
                        .any(|o| graph.edges(o).iter().any(edge_ok)),
                }
            }
            NotCheck::LabelStep { spos, label, dpos } => {
                let Some(l) = label else {
                    return Ok(false); // label never interned: no such edges
                };
                match spos.value(row) {
                    Some(Value::Node(o)) => graph.attr(*o, *l).any(|v| dpos.would_unify(row, v)),
                    Some(_) => false,
                    None => graph
                        .node_oids()
                        .any(|o| graph.attr(o, *l).any(|v| dpos.would_unify(row, v))),
                }
            }
            NotCheck::AnyStep { spos, dpos } => match spos.value(row) {
                Some(Value::Node(o)) => {
                    graph.edges(*o).iter().any(|e| dpos.would_unify(row, &e.to))
                }
                Some(_) => false,
                None => graph
                    .node_oids()
                    .any(|o| graph.edges(o).iter().any(|e| dpos.would_unify(row, &e.to))),
            },
            NotCheck::Regex { spos, dpos, nfa } => match spos.value(row) {
                Some(start) => nfa
                    .eval_from(graph, start)
                    .iter()
                    .any(|v| dpos.would_unify(row, v)),
                None => graph.node_oids().any(|o| {
                    nfa.eval_from(graph, &Value::Node(o))
                        .iter()
                        .any(|v| dpos.would_unify(row, v))
                }),
            },
            NotCheck::Compare { op, lp, rp } => {
                let (Some(a), Some(b)) = (lp.value(row), rp.value(row)) else {
                    return Err(StruqlError::eval("comparison over unbound variable"));
                };
                compare_keeps(*op, a, b)
            }
            NotCheck::Builtin { pred, pos } => {
                let Some(v) = pos.value(row) else {
                    return Err(StruqlError::eval("builtin predicate over unbound variable"));
                };
                eval_builtin(*pred, v)
            }
            NotCheck::Not(inner) => !inner.holds(graph, row)?,
        })
    }
}

/// The finite set of structurally distinct values that are
/// coercion-equal to `v` — the keys an *exact-match* index must be probed
/// with so that indexed lookups agree with coercing scans.
///
/// Numeric values return `None`: infinitely many string spellings coerce
/// to the same number ("7", "07", " 7"), so no finite key set is complete
/// and the caller must fall back to a scanning plan. Strings, URLs,
/// files, booleans, and nodes have complete finite sets.
fn coercion_candidates(v: &Value) -> Option<Vec<Value>> {
    use strudel_graph::FileKind;
    Some(match v {
        Value::Node(_) => vec![v.clone()], // nodes coerce only with equal nodes
        Value::Int(_) | Value::Float(_) => return None,
        Value::Bool(b) => vec![
            v.clone(),
            Value::string(if *b { "true" } else { "false" }),
        ],
        Value::File(f) => vec![v.clone(), Value::string(f.path.clone())],
        Value::Str(s) | Value::Url(s) => {
            let mut out = vec![Value::string(s.clone()), Value::url(s.clone())];
            if matches!(v, Value::Str(_)) {
                for kind in [
                    FileKind::Text,
                    FileKind::Image,
                    FileKind::PostScript,
                    FileKind::Html,
                ] {
                    out.push(Value::file(kind, s.clone()));
                }
                match s.as_ref() {
                    "true" => out.push(Value::Bool(true)),
                    "false" => out.push(Value::Bool(false)),
                    _ => {}
                }
            }
            let t = s.trim();
            if let Ok(i) = t.parse::<i64>() {
                out.push(Value::Int(i));
                out.push(Value::Float(i as f64));
            } else if let Ok(f) = t.parse::<f64>() {
                out.push(Value::Float(f));
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    out.push(Value::Int(f as i64));
                }
            }
            out
        }
    })
}

/// The coercion-candidate key set for a destination position, computed
/// once per condition application when the position is a constant (the
/// common case for schema guards) instead of once per row.
struct DstCandidates {
    /// `Some(cands)` when the destination is `Pos::Const`; `None` means
    /// "compute from the row's bound value".
    hoisted: Option<Option<Vec<Value>>>,
}

impl DstCandidates {
    fn new(dpos: &Pos) -> Self {
        DstCandidates {
            hoisted: match dpos {
                Pos::Const(v) => Some(coercion_candidates(v)),
                Pos::Slot(_) => None,
            },
        }
    }

    /// Candidate keys for the destination value `dv` of the current row.
    fn get<'a>(&'a self, dv: &Value, scratch: &'a mut Option<Vec<Value>>) -> Option<&'a [Value]> {
        match &self.hoisted {
            Some(c) => c.as_deref(),
            None => {
                *scratch = coercion_candidates(dv);
                scratch.as_deref()
            }
        }
    }
}

/// In-edges of `target`, in ascending source-oid order (stable, so each
/// source's edges keep their insertion order). This is exactly the order
/// in which a forward full scan (`for o in node_oids { for e in edges(o) }`)
/// visits the edges targeting `target`, which keeps the reverse-adjacency
/// probes byte-identical to the scans they replace.
fn sorted_edges_in(graph: &Graph, target: Oid) -> Vec<InEdge> {
    let mut ins = graph.edges_in(target).to_vec();
    ins.sort_by_key(|ie| ie.from.index());
    ins
}

/// `src -> l -> dst` with `l` an arc variable: any single edge, binding the
/// label name.
fn apply_arc_var(
    ev: &Evaluator<'_>,
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    lslot: usize,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let batched = ev.batched();
    let cands = DstCandidates::new(dpos);
    let tracing = strudel_trace::enabled();
    let mut fwd_probes: u64 = 0;
    let mut rev_probes: u64 = 0;
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row) {
            Some(Value::Node(o)) => {
                let o = *o;
                fwd_probes += 1;
                for e in graph.edges(o) {
                    let lname = Value::string(graph.label_name(e.label));
                    let mut r = row.clone();
                    let lab_ok = match &r[lslot] {
                        Some(existing) => coerce::eq(existing, &lname),
                        None => {
                            r[lslot] = Some(lname);
                            true
                        }
                    };
                    if lab_ok && dpos.unify(&mut r, &e.to) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {} // atomic source: no out-edges
            None => {
                let dval = dpos.value(&row);
                // Bound node destination: answer from the reverse
                // adjacency index. Ascending-source order makes the rows
                // byte-identical to the full scan below.
                if batched {
                    if let Some(dv @ Value::Node(t)) = dval {
                        rev_probes += 1;
                        for ie in sorted_edges_in(graph, *t) {
                            let lname = Value::string(graph.label_name(ie.label));
                            let mut r = row.clone();
                            let lab_ok = match &r[lslot] {
                                Some(existing) => coerce::eq(existing, &lname),
                                None => {
                                    r[lslot] = Some(lname);
                                    true
                                }
                            };
                            if lab_ok
                                && spos.unify(&mut r, &Value::Node(ie.from))
                                && dpos.unify(&mut r, dv)
                            {
                                out.push(r);
                            }
                        }
                        continue;
                    }
                }
                // Unbound source: enumerate all edges. With a bound atomic
                // destination and a full value index, invert through it —
                // probing every coercion-equal key so the indexed path
                // agrees with the coercing scan below (numeric targets
                // have no finite key set and take the scan).
                let mut scratch = None;
                let indexed = dval.and_then(|dv| {
                    if !dv.is_atomic() || ev.db().value_locations(dv).is_none() {
                        return None;
                    }
                    cands.get(dv, &mut scratch).map(|c| (dv, c))
                });
                if let Some((dv, cands)) = indexed {
                    for cand in cands {
                        let locs = ev
                            .db()
                            .value_locations(cand)
                            .expect("index present per the guard above");
                        for (o, lab) in locs.iter() {
                            let mut r = row.clone();
                            let lname = Value::string(graph.label_name(*lab));
                            let lab_ok = match &r[lslot] {
                                Some(existing) => coerce::eq(existing, &lname),
                                None => {
                                    r[lslot] = Some(lname);
                                    true
                                }
                            };
                            if lab_ok
                                && spos.unify(&mut r, &Value::Node(*o))
                                && dpos.unify(&mut r, dv)
                            {
                                out.push(r);
                            }
                        }
                    }
                    continue;
                }
                fwd_probes += 1;
                for o in graph.node_oids() {
                    for e in graph.edges(o) {
                        let mut r = row.clone();
                        if !spos.unify(&mut r, &Value::Node(o)) {
                            continue;
                        }
                        let lname = Value::string(graph.label_name(e.label));
                        let lab_ok = match &r[lslot] {
                            Some(existing) => coerce::eq(existing, &lname),
                            None => {
                                r[lslot] = Some(lname);
                                true
                            }
                        };
                        if lab_ok && dpos.unify(&mut r, &e.to) {
                            out.push(r);
                        }
                    }
                }
            }
        }
    }
    if tracing {
        strudel_trace::count("struql.probe.fwd", fwd_probes);
        strudel_trace::count("struql.probe.rev", rev_probes);
    }
    Ok(out)
}

/// `src -> "label" -> dst`: one edge with a fixed label. This is the hot
/// atom; it is served from the extension indexes whenever possible.
fn apply_label_step(
    ev: &Evaluator<'_>,
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    label_name: &str,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let Some(label) = graph.label(label_name) else {
        return Ok(Vec::new()); // label never interned: no such edges
    };
    let batched = ev.batched();
    let cands = DstCandidates::new(dpos);
    // The reverse-adjacency path only replaces the *graph scan* fallback:
    // when an extension or inverted index exists, those keep precedence
    // (and their output order).
    let use_rev = batched && ev.db().extension(label).is_none();
    let tracing = strudel_trace::enabled();
    let mut fwd_probes: u64 = 0;
    let mut rev_probes: u64 = 0;
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row) {
            Some(Value::Node(o)) => {
                let o = *o;
                fwd_probes += 1;
                for v in graph.attr(o, label) {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, v) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {}
            None => {
                // Unbound source. Prefer the inverted index when the
                // destination is bound — probing every coercion-equal key,
                // since the index is exact-match but unification coerces;
                // numeric targets (no finite key set) fall through to the
                // coercing extension scan.
                let dbound = dpos.value(&row);
                if let Some(dv) = dbound {
                    let usable = ev.db().sources(label, dv).is_some();
                    if usable {
                        let mut scratch = None;
                        if let Some(cands) = cands.get(dv, &mut scratch) {
                            for cand in cands {
                                let sources = ev
                                    .db()
                                    .sources(label, cand)
                                    .expect("index present per the guard above");
                                for &o in sources {
                                    let mut r = row.clone();
                                    if spos.unify(&mut r, &Value::Node(o))
                                        && dpos.unify(&mut r, dv)
                                    {
                                        out.push(r);
                                    }
                                }
                            }
                            continue;
                        }
                    }
                    if use_rev {
                        if let Value::Node(t) = dv {
                            rev_probes += 1;
                            for ie in sorted_edges_in(graph, *t) {
                                if ie.label != label {
                                    continue;
                                }
                                let mut r = row.clone();
                                if spos.unify(&mut r, &Value::Node(ie.from))
                                    && dpos.unify(&mut r, dv)
                                {
                                    out.push(r);
                                }
                            }
                            continue;
                        }
                    }
                }
                fwd_probes += 1;
                if let Some(ext) = ev.db().extension(label) {
                    for (o, v) in ext {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &Value::Node(*o)) && dpos.unify(&mut r, v) {
                            out.push(r);
                        }
                    }
                } else {
                    for o in graph.node_oids() {
                        for v in graph.attr(o, label) {
                            let mut r = row.clone();
                            if spos.unify(&mut r, &Value::Node(o)) && dpos.unify(&mut r, v) {
                                out.push(r);
                            }
                        }
                    }
                }
            }
        }
    }
    if tracing {
        strudel_trace::count("struql.probe.fwd", fwd_probes);
        strudel_trace::count("struql.probe.rev", rev_probes);
    }
    Ok(out)
}

/// `src -> true -> dst`: one edge with any label.
fn apply_any_step(
    ev: &Evaluator<'_>,
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let batched = ev.batched();
    let tracing = strudel_trace::enabled();
    let mut fwd_probes: u64 = 0;
    let mut rev_probes: u64 = 0;
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row) {
            Some(Value::Node(o)) => {
                let o = *o;
                fwd_probes += 1;
                for e in graph.edges(o) {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, &e.to) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {}
            None => {
                if batched {
                    if let Some(dv @ Value::Node(t)) = dpos.value(&row) {
                        rev_probes += 1;
                        for ie in sorted_edges_in(graph, *t) {
                            let mut r = row.clone();
                            if spos.unify(&mut r, &Value::Node(ie.from))
                                && dpos.unify(&mut r, dv)
                            {
                                out.push(r);
                            }
                        }
                        continue;
                    }
                }
                fwd_probes += 1;
                for o in graph.node_oids() {
                    for e in graph.edges(o) {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &Value::Node(o)) && dpos.unify(&mut r, &e.to) {
                            out.push(r);
                        }
                    }
                }
            }
        }
    }
    if tracing {
        strudel_trace::count("struql.probe.fwd", fwd_probes);
        strudel_trace::count("struql.probe.rev", rev_probes);
    }
    Ok(out)
}

/// The batched evaluation context for one general-regex path condition.
///
/// [`RegexBatch::prepare`] inspects the whole relation, collects the
/// distinct probe values per case (bound source, bound destination, both,
/// neither), and computes each probe's answer exactly once into read-only
/// memo tables. [`apply_regex`] then fans the memo back out per row. The
/// memo is built *before* the relation is partitioned, so every
/// `map_chunks` worker reads the same table and parallel output stays
/// byte-identical to sequential.
///
/// Determinism rules:
/// - memo values are pure functions of the probe value, so build order
///   (including a parallel build) cannot change any looked-up result;
/// - a bound-destination fan-out emits sources in ascending-oid order —
///   exactly the forward full scan's order — so batched and per-row
///   engines agree byte-for-byte;
/// - a both-bound condition is a pure filter (no slot is written), so
///   probing the destination side instead of the source side changes keep
///   decisions for no row.
struct RegexBatch {
    fwd: Nfa,
    rev: Option<Nfa>,
    /// `EvalOptions::batch`: `false` degenerates every lookup to the old
    /// per-row computation (the differential oracle).
    batched: bool,
    /// Whether the regex matches the empty path.
    nullable: bool,
    /// Both-bound rows check membership against the reverse-reachable set
    /// of the destination instead of forward sets of each source.
    use_rev_check: bool,
    /// source value -> forward reachable values, in BFS emit order.
    fwd_memo: HashMap<Value, Vec<Value>>,
    /// node destination -> sources reaching it, ascending oid order.
    rev_fan: HashMap<Value, Vec<Oid>>,
    /// destination value -> full reverse-reachable value set.
    rev_check: HashMap<Value, HashSet<Value>>,
    /// Forward reachable values per node, for rows with no bound end.
    scan: Option<Vec<(Oid, Vec<Value>)>>,
}

impl RegexBatch {
    fn prepare(
        ev: &Evaluator<'_>,
        regex: &PathRegex,
        prepared: Option<&PreparedPath>,
        rows: &[Row],
        spos: &Pos,
        dpos: &Pos,
    ) -> RegexBatch {
        let graph = ev.db().graph();
        let fwd = match prepared {
            Some(p) => p.fwd.clone(),
            None => Nfa::compile(regex, graph),
        };
        let nullable = fwd.matches_empty();
        let mut batch = RegexBatch {
            fwd,
            rev: None,
            batched: ev.batched(),
            nullable,
            use_rev_check: false,
            fwd_memo: HashMap::new(),
            rev_fan: HashMap::new(),
            rev_check: HashMap::new(),
            scan: None,
        };
        if !batch.batched || rows.is_empty() {
            return batch;
        }

        // Distinct probe values per case, in first-appearance order.
        let mut fwd_probes: Vec<Value> = Vec::new();
        let mut fwd_seen: HashSet<Value> = HashSet::new();
        let mut bb_src_probes: Vec<Value> = Vec::new();
        let mut bb_src_seen: HashSet<Value> = HashSet::new();
        let mut bb_dst_probes: Vec<Value> = Vec::new();
        let mut bb_dst_seen: HashSet<Value> = HashSet::new();
        let mut fan_probes: Vec<Value> = Vec::new();
        let mut fan_seen: HashSet<Value> = HashSet::new();
        let mut need_scan = false;
        for row in rows {
            match spos.value(row) {
                Some(s) => match dpos.value(row) {
                    Some(d) => {
                        if bb_src_seen.insert(s.clone()) {
                            bb_src_probes.push(s.clone());
                        }
                        if bb_dst_seen.insert(d.clone()) {
                            bb_dst_probes.push(d.clone());
                        }
                    }
                    None => {
                        if fwd_seen.insert(s.clone()) {
                            fwd_probes.push(s.clone());
                        }
                    }
                },
                None => match dpos.value(row) {
                    Some(d @ Value::Node(_)) => {
                        if fan_seen.insert(d.clone()) {
                            fan_probes.push(d.clone());
                        }
                    }
                    _ => need_scan = true,
                },
            }
        }

        // Direction choice for both-bound rows: probe the side with fewer
        // distinct values. The condition is a pure filter there, so the
        // direction cannot change output bytes — only traversal work.
        batch.use_rev_check =
            !bb_dst_probes.is_empty() && bb_dst_probes.len() < bb_src_probes.len();
        if !batch.use_rev_check {
            for s in bb_src_probes {
                if fwd_seen.insert(s.clone()) {
                    fwd_probes.push(s);
                }
            }
        }

        if batch.use_rev_check || !fan_probes.is_empty() {
            batch.rev = Some(match prepared {
                Some(p) => p.rev.clone(),
                None => Nfa::compile_reversed(regex, graph),
            });
        }

        let workers = ev.workers();
        let tracing = strudel_trace::enabled();
        let mut built: u64 = 0;
        let mut fwd_built: u64 = 0;
        let mut rev_built: u64 = 0;

        built += fwd_probes.len() as u64;
        fwd_built += fwd_probes.len() as u64;
        let fwd_nfa = &batch.fwd;
        batch.fwd_memo = memoize(fwd_probes, workers, |v| fwd_nfa.eval_from(graph, v));

        if !fan_probes.is_empty() {
            let rev = batch.rev.as_ref().expect("compiled above");
            built += fan_probes.len() as u64;
            rev_built += fan_probes.len() as u64;
            batch.rev_fan = memoize(fan_probes, workers, |d| {
                rev_fan_sources(graph, rev, d)
            });
        }
        if batch.use_rev_check {
            let rev = batch.rev.as_ref().expect("compiled above");
            built += bb_dst_probes.len() as u64;
            rev_built += bb_dst_probes.len() as u64;
            batch.rev_check = memoize(bb_dst_probes, workers, |d| {
                let seeds = if d.is_atomic() {
                    atomic_target_seeds(graph, d)
                } else {
                    Vec::new()
                };
                rev.eval_from_reverse(graph, d, &seeds)
                    .into_iter()
                    .collect::<HashSet<Value>>()
            });
        }
        if need_scan {
            let oids: Vec<Oid> = graph.node_oids().collect();
            built += oids.len() as u64;
            fwd_built += oids.len() as u64;
            let pairs = memoize_vec(oids, workers, |&o| {
                fwd_nfa.eval_from(graph, &Value::Node(o))
            });
            batch.scan = Some(pairs);
        }
        if tracing {
            strudel_trace::count("struql.memo.misses", built);
            strudel_trace::count("struql.probe.fwd", fwd_built);
            strudel_trace::count("struql.probe.rev", rev_built);
        }
        batch
    }
}

/// Sources with a path matching the (forward) regex ending at node value
/// `dv`, in ascending oid order — the forward full scan's emit order.
fn rev_fan_sources(graph: &Graph, rev: &Nfa, dv: &Value) -> Vec<Oid> {
    let mut oids: Vec<Oid> = rev
        .eval_from_reverse(graph, dv, &[])
        .iter()
        .filter_map(Value::as_node)
        .collect();
    oids.sort_unstable_by_key(|o| o.index());
    oids
}

/// `(source, label)` pairs of edges whose atomic target coerces equal to
/// `dv` — the seeds a reverse NFA walk starts from when the destination
/// has no incoming-edge index entry. A deterministic edge scan, complete
/// for every value kind (including numerics, which have no finite
/// coercion key set).
fn atomic_target_seeds(graph: &Graph, dv: &Value) -> Vec<(Oid, Label)> {
    let mut seeds = Vec::new();
    for o in graph.node_oids() {
        for e in graph.edges(o) {
            if !matches!(e.to, Value::Node(_)) && coerce::eq(dv, &e.to) {
                seeds.push((o, e.label));
            }
        }
    }
    seeds
}

/// Computes `f` once per probe, in parallel when the batch is large enough
/// to pay for the threads. Each entry is a pure function of its key, so
/// the resulting map is identical at any worker count.
fn memoize<R: Send>(
    probes: Vec<Value>,
    workers: usize,
    f: impl Fn(&Value) -> R + Sync,
) -> HashMap<Value, R> {
    memoize_vec(probes, workers, |v| f(v)).into_iter().collect()
}

fn memoize_vec<K: Send + Clone, R: Send>(
    probes: Vec<K>,
    workers: usize,
    f: impl Fn(&K) -> R + Sync,
) -> Vec<(K, R)> {
    const MIN_PROBES_PER_WORKER: usize = 8;
    let parts = if workers > 1 {
        workers.min(probes.len() / MIN_PROBES_PER_WORKER)
    } else {
        1
    };
    if parts <= 1 {
        return probes
            .into_iter()
            .map(|k| {
                let r = f(&k);
                (k, r)
            })
            .collect();
    }
    par::map_chunks(probes, parts, |chunk| {
        Ok::<_, std::convert::Infallible>(
            chunk
                .into_iter()
                .map(|k| {
                    let r = f(&k);
                    (k, r)
                })
                .collect(),
        )
    })
    .unwrap_or_else(|e| match e {})
}

/// A general regular path expression, evaluated through a [`RegexBatch`].
fn apply_regex(
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    dpos: &Pos,
    batch: &RegexBatch,
) -> StruqlResult<Vec<Row>> {
    let tracing = strudel_trace::enabled();
    let mut hits: u64 = 0;
    let mut misses: u64 = 0;
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row) {
            Some(start) => {
                if batch.use_rev_check {
                    if let Some(dv) = dpos.value(&row) {
                        // Pure filter: does a matching path lead from the
                        // bound source to the bound destination? Checked
                        // against the destination's reverse-reachable set.
                        let survives = match start {
                            Value::Node(_) => match batch.rev_check.get(dv) {
                                Some(set) => {
                                    hits += 1;
                                    set.contains(start)
                                }
                                None => {
                                    misses += 1;
                                    batch
                                        .fwd
                                        .eval_from(graph, start)
                                        .iter()
                                        .any(|v| coerce::eq(dv, v))
                                }
                            },
                            // An atomic source can only satisfy a
                            // zero-length path, and only onto itself.
                            _ => batch.nullable && coerce::eq(dv, start),
                        };
                        if survives {
                            out.push(row);
                        }
                        continue;
                    }
                }
                let computed: Vec<Value>;
                let results: &[Value] = match batch.fwd_memo.get(start) {
                    Some(r) => {
                        hits += 1;
                        r
                    }
                    None => {
                        misses += 1;
                        computed = batch.fwd.eval_from(graph, start);
                        &computed
                    }
                };
                for v in results {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, v) {
                        out.push(r);
                    }
                }
            }
            None => {
                let fan = if batch.batched {
                    dpos.value(&row).filter(|dv| dv.as_node().is_some())
                } else {
                    None
                };
                if let Some(dv) = fan {
                    // Bound node destination: reverse probe, fanned out in
                    // ascending source-oid order (the forward scan order).
                    let computed: Vec<Oid>;
                    let sources: &[Oid] = match batch.rev_fan.get(dv) {
                        Some(s) => {
                            hits += 1;
                            s
                        }
                        None => {
                            misses += 1;
                            computed = match &batch.rev {
                                Some(rev) => rev_fan_sources(graph, rev, dv),
                                None => graph
                                    .node_oids()
                                    .filter(|&o| {
                                        batch
                                            .fwd
                                            .eval_from(graph, &Value::Node(o))
                                            .contains(dv)
                                    })
                                    .collect(),
                            };
                            &computed
                        }
                    };
                    for &o in sources {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &Value::Node(o)) {
                            out.push(r);
                        }
                    }
                    continue;
                }
                // No usable bound end: traverse from every node. The
                // planner prices this pessimistically, so it only runs
                // when unavoidable; batched mode computes the scan once.
                match &batch.scan {
                    Some(scan) => {
                        hits += 1;
                        for (o, vs) in scan {
                            for v in vs {
                                let mut r = row.clone();
                                if spos.unify(&mut r, &Value::Node(*o)) && dpos.unify(&mut r, v)
                                {
                                    out.push(r);
                                }
                            }
                        }
                    }
                    None => {
                        misses += 1;
                        for o in graph.node_oids() {
                            let start = Value::Node(o);
                            for v in batch.fwd.eval_from(graph, &start) {
                                let mut r = row.clone();
                                if spos.unify(&mut r, &start) && dpos.unify(&mut r, &v) {
                                    out.push(r);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if tracing {
        strudel_trace::count("struql.memo.hits", hits);
        strudel_trace::count("struql.memo.misses", misses);
    }
    Ok(out)
}
