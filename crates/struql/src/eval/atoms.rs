//! Evaluation of individual where-clause conditions over a bindings
//! relation.
//!
//! Every function here maps each input row to zero or more extended rows
//! independently of every other row, and emits row *i*'s extensions before
//! row *i+1*'s. [`apply_partitioned`] leans on exactly that property: it
//! splits the relation into contiguous chunks, runs [`apply`] on each
//! chunk on its own scoped thread, and merges the chunk outputs in
//! partition order — producing the byte-identical relation the sequential
//! path would.

use super::{var_slot, Evaluator, Row};
use crate::ast::{Condition, PathSpec, Term};
use crate::builtins::eval_builtin;
use crate::error::{StruqlError, StruqlResult};
use crate::par;
use crate::plan::Plan;
use crate::rpe::{Nfa, StepPred};
use strudel_graph::{coerce, Graph, Value};

/// Appends variables this condition can bind (positive binders only) that
/// are not yet in scope.
pub(crate) fn introduce_vars(cond: &Condition, vars: &mut Vec<String>) {
    let mut add = |name: &str| {
        if !vars.iter().any(|v| v == name) {
            vars.push(name.to_owned());
        }
    };
    match cond {
        Condition::Collection { arg, .. } => {
            if let Term::Var(v) = arg {
                add(v);
            }
        }
        Condition::Path { src, path, dst, .. } => {
            if let Term::Var(v) = src {
                add(v);
            }
            if let PathSpec::ArcVar(l) = path {
                add(l);
            }
            if let Term::Var(v) = dst {
                add(v);
            }
        }
        Condition::Compare { .. } | Condition::Builtin { .. } => {}
        // Local existentials inside not(…) need slots so the inner
        // existence test can enumerate them.
        Condition::Not(inner, _) => introduce_vars(inner, vars),
    }
}

/// How a term participates in matching: a constant, a bound slot, or an
/// unbound slot to fill.
enum Pos {
    Const(Value),
    Slot(usize),
}

fn term_pos(t: &Term, vars: &[String]) -> StruqlResult<Pos> {
    match t {
        Term::Const(v) => Ok(Pos::Const(v.clone())),
        Term::Var(v) => var_slot(v, vars)
            .map(Pos::Slot)
            .ok_or_else(|| StruqlError::eval(format!("variable '{v}' has no slot"))),
        Term::Skolem { .. } => Err(StruqlError::eval(
            "Skolem terms cannot appear in the where stage",
        )),
    }
}

impl Pos {
    /// The value this position holds in `row`, if any.
    fn value<'r>(&'r self, row: &'r Row) -> Option<&'r Value> {
        match self {
            Pos::Const(v) => Some(v),
            Pos::Slot(i) => row[*i].as_ref(),
        }
    }

    /// Unifies the position with `v` in `row`: if already bound, the values
    /// must agree under dynamic coercion; if unbound, the slot is filled.
    fn unify(&self, row: &mut Row, v: &Value) -> bool {
        match self {
            Pos::Const(c) => coerce::eq(c, v),
            Pos::Slot(i) => match &row[*i] {
                Some(existing) => coerce::eq(existing, v),
                None => {
                    row[*i] = Some(v.clone());
                    true
                }
            },
        }
    }
}

/// Applies the condition at position `pos` of `plan` to the relation,
/// splitting the work across the evaluator's worker budget when the
/// planner's cost-aware sizing says the relation is big enough to pay for
/// it. Output (rows, order, and errors) is identical to [`apply`].
pub(crate) fn apply_partitioned(
    ev: &Evaluator<'_>,
    cond: &Condition,
    rows: Vec<Row>,
    vars: &[String],
    plan: &Plan,
    pos: usize,
) -> StruqlResult<Vec<Row>> {
    let parts = plan.partitions(pos, rows.len(), ev.workers());
    if parts <= 1 {
        return apply(ev, cond, rows, vars);
    }
    par::map_chunks(rows, parts, |chunk| apply(ev, cond, chunk, vars))
}

/// Applies one condition to the relation, producing the extended relation.
pub(crate) fn apply(
    ev: &Evaluator<'_>,
    cond: &Condition,
    rows: Vec<Row>,
    vars: &[String],
) -> StruqlResult<Vec<Row>> {
    let graph = ev.db().graph();
    match cond {
        Condition::Collection { name, arg, .. } => {
            let pos = term_pos(arg, vars)?;
            let members: &[Value] = graph.members_str(name);
            let cid = graph.collection_id(name);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                match pos.value(&row) {
                    Some(v) => {
                        let is_member = match cid {
                            Some(c) => graph.in_collection(c, v),
                            None => false,
                        };
                        if is_member {
                            out.push(row);
                        }
                    }
                    None => {
                        for m in members {
                            let mut r = row.clone();
                            if pos.unify(&mut r, m) {
                                out.push(r);
                            }
                        }
                    }
                }
            }
            Ok(out)
        }

        Condition::Path { src, path, dst, .. } => {
            let spos = term_pos(src, vars)?;
            let dpos = term_pos(dst, vars)?;
            match path {
                PathSpec::ArcVar(l) => {
                    let lslot = var_slot(l, vars)
                        .ok_or_else(|| StruqlError::eval(format!("arc variable '{l}' lost")))?;
                    apply_arc_var(ev, graph, rows, &spos, lslot, &dpos)
                }
                PathSpec::Regex(r) => match r.as_single_step() {
                    Some(StepPred::Label(name)) => {
                        apply_label_step(ev, graph, rows, &spos, &name, &dpos)
                    }
                    Some(StepPred::Any) => apply_any_step(graph, rows, &spos, &dpos),
                    None => {
                        let nfa = Nfa::compile(r, graph);
                        apply_regex(graph, rows, &spos, &nfa, &dpos)
                    }
                },
            }
        }

        Condition::Compare { op, lhs, rhs, .. } => {
            let lp = term_pos(lhs, vars)?;
            let rp = term_pos(rhs, vars)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let (Some(a), Some(b)) = (lp.value(&row), rp.value(&row)) else {
                    return Err(StruqlError::eval("comparison over unbound variable"));
                };
                use crate::ast::CmpOp::*;
                let keep = match op {
                    Eq => coerce::eq(a, b),
                    Ne => {
                        // Comparable-and-different; incomparable values are
                        // neither equal nor unequal.
                        matches!(
                            coerce::compare(a, b),
                            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Greater)
                        )
                    }
                    Lt => coerce::lt(a, b),
                    Le => coerce::le(a, b),
                    Gt => coerce::lt(b, a),
                    Ge => coerce::le(b, a),
                };
                if keep {
                    out.push(row);
                }
            }
            Ok(out)
        }

        Condition::Builtin { pred, arg, .. } => {
            let pos = term_pos(arg, vars)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let Some(v) = pos.value(&row) else {
                    return Err(StruqlError::eval("builtin predicate over unbound variable"));
                };
                if eval_builtin(*pred, v) {
                    out.push(row);
                }
            }
            Ok(out)
        }

        Condition::Not(inner, _) => {
            // All inner variables are bound (checked statically), so the
            // inner condition acts as a per-row existence test.
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let survives = apply(ev, inner, vec![row.clone()], vars)?;
                if survives.is_empty() {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}


/// The finite set of structurally distinct values that are
/// coercion-equal to `v` — the keys an *exact-match* index must be probed
/// with so that indexed lookups agree with coercing scans.
///
/// Numeric values return `None`: infinitely many string spellings coerce
/// to the same number ("7", "07", " 7"), so no finite key set is complete
/// and the caller must fall back to a scanning plan. Strings, URLs,
/// files, booleans, and nodes have complete finite sets.
fn coercion_candidates(v: &Value) -> Option<Vec<Value>> {
    use strudel_graph::FileKind;
    Some(match v {
        Value::Node(_) => vec![v.clone()], // nodes coerce only with equal nodes
        Value::Int(_) | Value::Float(_) => return None,
        Value::Bool(b) => vec![
            v.clone(),
            Value::string(if *b { "true" } else { "false" }),
        ],
        Value::File(f) => vec![v.clone(), Value::string(f.path.clone())],
        Value::Str(s) | Value::Url(s) => {
            let mut out = vec![Value::string(s.clone()), Value::url(s.clone())];
            if matches!(v, Value::Str(_)) {
                for kind in [
                    FileKind::Text,
                    FileKind::Image,
                    FileKind::PostScript,
                    FileKind::Html,
                ] {
                    out.push(Value::file(kind, s.clone()));
                }
                match s.as_ref() {
                    "true" => out.push(Value::Bool(true)),
                    "false" => out.push(Value::Bool(false)),
                    _ => {}
                }
            }
            let t = s.trim();
            if let Ok(i) = t.parse::<i64>() {
                out.push(Value::Int(i));
                out.push(Value::Float(i as f64));
            } else if let Ok(f) = t.parse::<f64>() {
                out.push(Value::Float(f));
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    out.push(Value::Int(f as i64));
                }
            }
            out
        }
    })
}

/// `src -> l -> dst` with `l` an arc variable: any single edge, binding the
/// label name.
fn apply_arc_var(
    ev: &Evaluator<'_>,
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    lslot: usize,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row).cloned() {
            Some(Value::Node(o)) => {
                for e in graph.edges(o) {
                    let lname = Value::string(graph.label_name(e.label));
                    let mut r = row.clone();
                    let lab_ok = match &r[lslot] {
                        Some(existing) => coerce::eq(existing, &lname),
                        None => {
                            r[lslot] = Some(lname);
                            true
                        }
                    };
                    if lab_ok && dpos.unify(&mut r, &e.to) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {} // atomic source: no out-edges
            None => {
                // Unbound source: enumerate all edges. With a bound atomic
                // destination and a full value index, invert through it —
                // probing every coercion-equal key so the indexed path
                // agrees with the coercing scan below (numeric targets
                // have no finite key set and take the scan).
                let indexed = dpos.value(&row).cloned().and_then(|dv| {
                    if !dv.is_atomic() || ev.db().value_locations(&dv).is_none() {
                        return None;
                    }
                    coercion_candidates(&dv).map(|cands| (dv, cands))
                });
                if let Some((dv, cands)) = indexed {
                    for cand in &cands {
                        let locs = ev
                            .db()
                            .value_locations(cand)
                            .expect("index present per the guard above");
                        for (o, lab) in locs.iter() {
                            let mut r = row.clone();
                            let lname = Value::string(graph.label_name(*lab));
                            let lab_ok = match &r[lslot] {
                                Some(existing) => coerce::eq(existing, &lname),
                                None => {
                                    r[lslot] = Some(lname);
                                    true
                                }
                            };
                            if lab_ok
                                && spos.unify(&mut r, &Value::Node(*o))
                                && dpos.unify(&mut r, &dv)
                            {
                                out.push(r);
                            }
                        }
                    }
                    continue;
                }
                for o in graph.node_oids() {
                    for e in graph.edges(o) {
                        let mut r = row.clone();
                        if !spos.unify(&mut r, &Value::Node(o)) {
                            continue;
                        }
                        let lname = Value::string(graph.label_name(e.label));
                        let lab_ok = match &r[lslot] {
                            Some(existing) => coerce::eq(existing, &lname),
                            None => {
                                r[lslot] = Some(lname);
                                true
                            }
                        };
                        if lab_ok && dpos.unify(&mut r, &e.to) {
                            out.push(r);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `src -> "label" -> dst`: one edge with a fixed label. This is the hot
/// atom; it is served from the extension indexes whenever possible.
fn apply_label_step(
    ev: &Evaluator<'_>,
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    label_name: &str,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let Some(label) = graph.label(label_name) else {
        return Ok(Vec::new()); // label never interned: no such edges
    };
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row).cloned() {
            Some(Value::Node(o)) => {
                for v in graph.attr(o, label) {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, v) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {}
            None => {
                // Unbound source. Prefer the inverted index when the
                // destination is bound — probing every coercion-equal key,
                // since the index is exact-match but unification coerces;
                // numeric targets (no finite key set) fall through to the
                // coercing extension scan.
                let dbound = dpos.value(&row).cloned();
                if let Some(dv) = &dbound {
                    let usable = ev.db().sources(label, dv).is_some();
                    if usable {
                        if let Some(cands) = coercion_candidates(dv) {
                            for cand in &cands {
                                let sources = ev
                                    .db()
                                    .sources(label, cand)
                                    .expect("index present per the guard above");
                                for &o in sources {
                                    let mut r = row.clone();
                                    if spos.unify(&mut r, &Value::Node(o))
                                        && dpos.unify(&mut r, dv)
                                    {
                                        out.push(r);
                                    }
                                }
                            }
                            continue;
                        }
                    }
                }
                if let Some(ext) = ev.db().extension(label) {
                    for (o, v) in ext {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &Value::Node(*o)) && dpos.unify(&mut r, v) {
                            out.push(r);
                        }
                    }
                } else {
                    for o in graph.node_oids() {
                        for v in graph.attr(o, label) {
                            let mut r = row.clone();
                            if spos.unify(&mut r, &Value::Node(o)) && dpos.unify(&mut r, v) {
                                out.push(r);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `src -> true -> dst`: one edge with any label.
fn apply_any_step(
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row).cloned() {
            Some(Value::Node(o)) => {
                for e in graph.edges(o) {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, &e.to) {
                        out.push(r);
                    }
                }
            }
            Some(_) => {}
            None => {
                for o in graph.node_oids() {
                    for e in graph.edges(o) {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &Value::Node(o)) && dpos.unify(&mut r, &e.to) {
                            out.push(r);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// A general regular path expression.
fn apply_regex(
    graph: &Graph,
    rows: Vec<Row>,
    spos: &Pos,
    nfa: &Nfa,
    dpos: &Pos,
) -> StruqlResult<Vec<Row>> {
    let mut out = Vec::new();
    for row in rows {
        match spos.value(&row).cloned() {
            Some(start) => {
                for v in nfa.eval_from(graph, &start) {
                    let mut r = row.clone();
                    if dpos.unify(&mut r, &v) {
                        out.push(r);
                    }
                }
            }
            None => {
                // Unbound source: traverse from every node. The planner
                // prices this pessimistically, so it only runs when
                // unavoidable.
                for o in graph.node_oids() {
                    let start = Value::Node(o);
                    for v in nfa.eval_from(graph, &start) {
                        let mut r = row.clone();
                        if spos.unify(&mut r, &start) && dpos.unify(&mut r, &v) {
                            out.push(r);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}
