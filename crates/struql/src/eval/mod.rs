//! STRUQL program evaluation.
//!
//! Evaluation follows the two-stage active-domain semantics of §2.2:
//!
//! 1. **Query stage** — each block's `where` clause is evaluated against
//!    the *input* graph into a bindings relation: one row per assignment of
//!    variables to oids/labels/values satisfying every condition. Nested
//!    blocks conjoin with the enclosing clause — their relations extend the
//!    parent rows.
//! 2. **Construction stage** — for each row, `create` mints Skolem nodes
//!    (same arguments ⇒ same node, via [`SkolemTable`]), `link` adds edges
//!    (with set semantics — the relation is a set of assignments), and
//!    `collect` populates output collections.
//!
//! The output graph starts as a clone of the input graph, so data-graph
//! leaves referenced by `link` targets (titles, abstracts, embedded data
//! nodes) are present in the site graph — "the site graph represents both
//! the site's content and structure". Created nodes are tracked in
//! [`EvalResult::new_nodes`]; only they may be link sources (existing nodes
//! are immutable).

mod atoms;
pub mod diff;

use crate::ast::{Block, LabelTerm, Program, Term};
use crate::error::{StruqlError, StruqlResult};
use crate::par::Parallelism;
use crate::plan;
use std::collections::HashSet;
use strudel_graph::{Graph, Oid, SkolemTable, Value};
use strudel_repo::Database;

/// Evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Use cost-based condition ordering (default). `false` keeps the
    /// textual order — the join-ordering ablation baseline.
    pub optimize: bool,
    /// Worker budget for the where stage. Results are byte-identical at
    /// any setting — see [`crate::par`].
    pub parallelism: Parallelism,
    /// Batched path evaluation (default): group rows by distinct bound
    /// source/destination value, compute each group's extensions once, and
    /// answer bound-destination probes through the reverse adjacency
    /// index. `false` restores the per-row engine — the differential
    /// oracle; both settings produce byte-identical relations.
    pub batch: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            optimize: true,
            parallelism: Parallelism::default(),
            batch: true,
        }
    }
}

/// The result of evaluating a program.
#[derive(Debug)]
pub struct EvalResult {
    /// The output graph: the input graph plus everything the program
    /// constructed.
    pub graph: Graph,
    /// Oids of nodes the program created, in creation order. These are the
    /// "site nodes" when the program is a site-definition query.
    pub new_nodes: Vec<Oid>,
    /// The Skolem table, for addressing created nodes by term (used by
    /// composed query pipelines and by the HTML generator).
    pub skolem: SkolemTable,
    /// Total rows produced across all where-stage expansions —
    /// instrumentation for the optimizer ablation.
    pub rows_evaluated: usize,
}

impl EvalResult {
    /// Looks up the node a Skolem application produced, e.g.
    /// `result.skolem_node("YearPage", &[Value::Int(1998)])`.
    pub fn skolem_node(&self, symbol: &str, args: &[Value]) -> Option<Oid> {
        self.skolem.lookup(symbol, args)
    }
}

/// Evaluates STRUQL programs against a database.
#[derive(Debug)]
pub struct Evaluator<'db> {
    db: &'db Database,
    opts: EvalOptions,
}

/// One bindings row: a slot per variable in scope, `None` until bound.
pub(crate) type Row = Vec<Option<Value>>;

/// Mutable evaluation context threaded through blocks.
#[derive(Debug)]
struct Ctx {
    out: Graph,
    skolem: SkolemTable,
    new_nodes: Vec<Oid>,
    created: HashSet<Oid>,
    rows_evaluated: usize,
}

impl<'db> Evaluator<'db> {
    /// An evaluator with default options.
    pub fn new(db: &'db Database) -> Self {
        Evaluator {
            db,
            opts: EvalOptions::default(),
        }
    }

    /// An evaluator with explicit options.
    pub fn with_options(db: &'db Database, opts: EvalOptions) -> Self {
        Evaluator { db, opts }
    }

    /// Evaluates a checked program. Blocks run in order, sharing one
    /// Skolem table and one output graph.
    pub fn eval(&self, program: &Program) -> StruqlResult<EvalResult> {
        crate::analyze::check(program)?;
        let mut ctx = Ctx {
            out: self.db.graph().clone(),
            skolem: SkolemTable::new(),
            new_nodes: Vec::new(),
            created: HashSet::new(),
            rows_evaluated: 0,
        };
        for block in &program.blocks {
            let mut vars: Vec<String> = Vec::new();
            let seed: Vec<Row> = vec![Vec::new()];
            self.eval_block(block, &mut vars, &seed, &mut ctx)?;
        }
        Ok(EvalResult {
            graph: ctx.out,
            new_nodes: ctx.new_nodes,
            skolem: ctx.skolem,
            rows_evaluated: ctx.rows_evaluated,
        })
    }

    /// Evaluates one block: extend the variable table with this block's new
    /// variables, run the where stage over the incoming rows, construct,
    /// then recurse into nested blocks.
    fn eval_block(
        &self,
        block: &Block,
        vars: &mut Vec<String>,
        in_rows: &[Row],
        ctx: &mut Ctx,
    ) -> StruqlResult<()> {
        let base_len = vars.len();
        for cond in &block.where_ {
            atoms::introduce_vars(cond, vars);
        }
        let width = vars.len();

        let mut rows: Vec<Row> = in_rows
            .iter()
            .map(|r| {
                let mut row = r.clone();
                row.resize(width, None);
                row
            })
            .collect();

        let bound: HashSet<String> = vars[..base_len].iter().cloned().collect();
        let plan = plan::plan(&block.where_, &bound, self.db, self.opts.optimize);
        let tracing = strudel_trace::enabled();
        for (step, &idx) in plan.order.iter().enumerate() {
            let rows_in = rows.len();
            let span = strudel_trace::span("struql.step");
            rows = atoms::apply_partitioned(self, &block.where_[idx], rows, vars, &plan, step)?;
            drop(span);
            if tracing {
                strudel_trace::count("struql.steps", 1);
                strudel_trace::count("struql.rows", rows.len() as u64);
                strudel_trace::event_with("struql.step", || {
                    format!(
                        "cond={} est={:.2} in={rows_in} out={}",
                        crate::pretty::pretty_condition(&block.where_[idx]),
                        plan.estimates[step],
                        rows.len()
                    )
                });
            }
            ctx.rows_evaluated += rows.len();
            if rows.is_empty() {
                break;
            }
        }

        if !rows.is_empty() {
            for row in &rows {
                construct_into(block, row, vars, ctx)?;
            }
            for nested in &block.nested {
                self.eval_block(nested, vars, &rows, ctx)?;
            }
        }
        vars.truncate(base_len);
        Ok(())
    }

    pub(crate) fn db(&self) -> &Database {
        self.db
    }

    /// The resolved worker budget for where-stage evaluation.
    pub(crate) fn workers(&self) -> usize {
        self.opts.parallelism.workers()
    }

    /// Whether batched path evaluation is enabled.
    pub(crate) fn batched(&self) -> bool {
        self.opts.batch
    }
}

/// Applies the construction stage of `block` for one row.
fn construct_into(block: &Block, row: &Row, vars: &[String], ctx: &mut Ctx) -> StruqlResult<()> {
    for t in &block.create {
        eval_term_into(t, row, vars, ctx)?;
    }
    for l in &block.link {
        let src = eval_term_into(&l.src, row, vars, ctx)?;
        let Some(src_oid) = src.as_node() else {
            return Err(StruqlError::eval("link source is not a node"));
        };
        if !ctx.created.contains(&src_oid) {
            return Err(StruqlError::eval(format!(
                "link source {src_oid} is an existing node; existing nodes are immutable"
            )));
        }
        let label: String = match &l.label {
            LabelTerm::Const(s) => s.clone(),
            LabelTerm::Var(v) => {
                let val = lookup_var(v, row, vars)?;
                match val {
                    Value::Str(s) => s.to_string(),
                    other => {
                        return Err(StruqlError::eval(format!(
                            "arc variable '{v}' is bound to {other}, not a label"
                        )))
                    }
                }
            }
        };
        let dst = eval_term_into(&l.dst, row, vars, ctx)?;
        // Set semantics: the bindings relation is a set of assignments,
        // so identical links from different derivations collapse.
        let lab = ctx.out.intern_label(&label);
        if !ctx.out.has_edge(src_oid, lab, &dst) {
            ctx.out.add_edge(src_oid, lab, dst);
        }
    }
    for c in &block.collect {
        let member = eval_term_into(&c.arg, row, vars, ctx)?;
        ctx.out.collect_str(&c.collection, member);
    }
    Ok(())
}

/// Evaluates a construction term to a value.
fn eval_term_into(term: &Term, row: &Row, vars: &[String], ctx: &mut Ctx) -> StruqlResult<Value> {
    match term {
        Term::Var(v) => lookup_var(v, row, vars).cloned(),
        Term::Const(v) => Ok(v.clone()),
        Term::Skolem { symbol, args } => {
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval_term_into(a, row, vars, ctx)?);
            }
            let (oid, new) = ctx.skolem.apply(&mut ctx.out, symbol, &arg_vals);
            if new {
                ctx.new_nodes.push(oid);
                ctx.created.insert(oid);
            }
            Ok(Value::Node(oid))
        }
    }
}

/// A condition list compiled for repeated seeded evaluation: variable
/// slots resolved, conditions planned against the database's statistics,
/// and every general path regex NFA-compiled in both directions. This is
/// the unit the click-time compiled-query cache stores per schema edge —
/// a request then executes the prepared plan instead of re-planning.
///
/// A `PreparedWhere` is valid only for the `(conditions, seed-name list,
/// database snapshot)` it was prepared against: the NFAs capture interned
/// label ids and the plan captures statistics, both of which a delta can
/// change. Callers key caches by epoch for exactly this reason.
#[derive(Debug)]
pub struct PreparedWhere {
    vars: Vec<String>,
    seed_names: Vec<String>,
    plan: plan::Plan,
    /// Per source-condition compiled NFAs (general regexes only), indexed
    /// like the condition list itself.
    paths: Vec<Option<atoms::PreparedPath>>,
}

impl PreparedWhere {
    /// Variable names in slot order (seed variables first) — the column
    /// names of the rows [`Evaluator::eval_where_prepared`] produces.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }
}

impl<'db> Evaluator<'db> {
    /// Analyzes, plans, and NFA-compiles a condition list for repeated
    /// evaluation with seeds named `seed_names` (values vary per call).
    pub fn prepare_where(
        &self,
        conds: &[crate::ast::Condition],
        seed_names: &[String],
    ) -> PreparedWhere {
        use crate::ast::{Condition, PathSpec};
        let mut vars: Vec<String> = seed_names.to_vec();
        for cond in conds {
            atoms::introduce_vars(cond, &mut vars);
        }
        let bound: HashSet<String> = seed_names.iter().cloned().collect();
        let plan = plan::plan(conds, &bound, self.db, self.opts.optimize);
        let graph = self.db.graph();
        let paths = conds
            .iter()
            .map(|c| match c {
                Condition::Path {
                    path: PathSpec::Regex(r),
                    ..
                } if r.as_single_step().is_none() => {
                    Some(atoms::PreparedPath::compile(r, graph))
                }
                _ => None,
            })
            .collect();
        PreparedWhere {
            vars,
            seed_names: seed_names.to_vec(),
            plan,
            paths,
        }
    }

    /// Runs a prepared condition list with concrete seed values. `conds`
    /// and the seed names must match what [`Evaluator::prepare_where`]
    /// saw, and the database must be the same snapshot.
    pub fn eval_where_prepared(
        &self,
        conds: &[crate::ast::Condition],
        prepared: &PreparedWhere,
        seed: &[(String, Value)],
    ) -> StruqlResult<Vec<Row>> {
        if conds.len() != prepared.paths.len()
            || seed.len() != prepared.seed_names.len()
            || seed
                .iter()
                .zip(&prepared.seed_names)
                .any(|((n, _), pn)| n != pn)
        {
            return Err(StruqlError::eval(
                "prepared where does not match the condition list or seed names",
            ));
        }
        let width = prepared.vars.len();
        let mut row: Row = vec![None; width];
        for (i, (_, v)) in seed.iter().enumerate() {
            row[i] = Some(v.clone());
        }
        let mut rows = vec![row];

        let tracing = strudel_trace::enabled();
        for (step, &idx) in prepared.plan.order.iter().enumerate() {
            let rows_in = rows.len();
            let span = strudel_trace::span("struql.step");
            rows = atoms::apply_partitioned_prepared(
                self,
                &conds[idx],
                prepared.paths[idx].as_ref(),
                rows,
                &prepared.vars,
                &prepared.plan,
                step,
            )?;
            drop(span);
            if tracing {
                strudel_trace::count("struql.steps", 1);
                strudel_trace::count("struql.rows", rows.len() as u64);
                strudel_trace::event_with("struql.step", || {
                    format!(
                        "cond={} est={:.2} in={rows_in} out={}",
                        crate::pretty::pretty_condition(&conds[idx]),
                        prepared.plan.estimates[step],
                        rows.len()
                    )
                });
            }
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }

    /// Evaluates a bare condition list — the building block for dynamic
    /// (click-time) and incremental evaluation, where the schema crate
    /// runs fragments of a site-definition query with some variables
    /// pre-bound.
    ///
    /// `seed` pre-binds variables; the result is the list of variables in
    /// slot order (seeds first) and all satisfying rows. Conditions are
    /// planned with the same cost model as full evaluation. Equivalent to
    /// [`Evaluator::prepare_where`] + [`Evaluator::eval_where_prepared`];
    /// callers that re-run the same conditions should prepare once.
    pub fn eval_where_bindings(
        &self,
        conds: &[crate::ast::Condition],
        seed: &[(String, Value)],
    ) -> StruqlResult<(Vec<String>, Vec<Row>)> {
        let seed_names: Vec<String> = seed.iter().map(|(n, _)| n.clone()).collect();
        let prepared = self.prepare_where(conds, &seed_names);
        let rows = self.eval_where_prepared(conds, &prepared, seed)?;
        Ok((prepared.vars, rows))
    }

    /// [`Evaluator::eval_where_bindings`] with the instrument panel on:
    /// every plan step is timed and counted regardless of the global
    /// tracing flag, and the result carries an [`ExplainReport`] pairing
    /// the planner's estimates with the measured actuals.
    ///
    /// [`ExplainReport`]: crate::explain::ExplainReport
    pub fn explain_where_bindings(
        &self,
        conds: &[crate::ast::Condition],
        seed: &[(String, Value)],
    ) -> StruqlResult<(Vec<String>, Vec<Row>, crate::explain::ExplainReport)> {
        let mut vars: Vec<String> = seed.iter().map(|(n, _)| n.clone()).collect();
        for cond in conds {
            atoms::introduce_vars(cond, &mut vars);
        }
        let width = vars.len();
        let mut row: Row = vec![None; width];
        for (i, (_, v)) in seed.iter().enumerate() {
            row[i] = Some(v.clone());
        }
        let mut rows = vec![row];

        let bound: HashSet<String> = seed.iter().map(|(n, _)| n.clone()).collect();
        let plan = plan::plan(conds, &bound, self.db, self.opts.optimize);
        let mut report = crate::explain::ExplainReport {
            optimized: self.opts.optimize,
            ..Default::default()
        };
        for (step, &idx) in plan.order.iter().enumerate() {
            let rows_in = rows.len();
            let start = std::time::Instant::now();
            rows = atoms::apply_partitioned(self, &conds[idx], rows, &vars, &plan, step)?;
            let elapsed_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            report.steps.push(crate::explain::ExplainStep {
                source_index: idx,
                condition: crate::pretty::pretty_condition(&conds[idx]),
                estimate: plan.estimates[step],
                rows_in,
                rows_out: rows.len(),
                elapsed_us,
            });
            report.total_us += elapsed_us;
            if rows.is_empty() {
                break;
            }
        }
        report.total_rows = rows.len();
        Ok((vars, rows, report))
    }
}

/// A construction sink: applies the construction stage of blocks to a
/// graph, maintaining the Skolem table across calls.
///
/// This is [`Evaluator::eval`]'s construction machinery exposed for the
/// dynamic and incremental engines: they compute bindings rows themselves
/// (seeded, partial, or delta-derived) and push construction through a
/// `Constructor` that *resumes* a previous evaluation's Skolem state, so
/// newly derived links attach to the already-materialized site nodes.
#[derive(Debug)]
pub struct Constructor {
    ctx: Ctx,
}

impl Constructor {
    /// A fresh constructor over `graph` (usually a clone of the input
    /// graph).
    pub fn new(graph: Graph) -> Self {
        Constructor {
            ctx: Ctx {
                out: graph,
                skolem: SkolemTable::new(),
                new_nodes: Vec::new(),
                created: HashSet::new(),
                rows_evaluated: 0,
            },
        }
    }

    /// Resumes construction from a previous evaluation's output.
    pub fn resume(result: EvalResult) -> Self {
        let created: HashSet<Oid> = result.new_nodes.iter().copied().collect();
        Constructor {
            ctx: Ctx {
                out: result.graph,
                skolem: result.skolem,
                new_nodes: result.new_nodes,
                created,
                rows_evaluated: result.rows_evaluated,
            },
        }
    }

    /// Applies one block's `create`/`link`/`collect` (not its nested
    /// blocks) for every row. `vars` gives the slot names of `rows`.
    pub fn apply_block(
        &mut self,
        block: &Block,
        vars: &[String],
        rows: &[Row],
    ) -> StruqlResult<()> {
        for row in rows {
            construct_into(block, row, vars, &mut self.ctx)?;
        }
        Ok(())
    }

    /// Evaluates a construction term against a row, minting Skolem nodes
    /// as needed.
    pub fn eval_term(
        &mut self,
        term: &Term,
        vars: &[String],
        row: &Row,
    ) -> StruqlResult<Value> {
        eval_term_into(term, row, vars, &mut self.ctx)
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.ctx.out
    }

    /// The node previously minted for `symbol(args)`, if any.
    pub fn skolem_node(&self, symbol: &str, args: &[Value]) -> Option<Oid> {
        self.ctx.skolem.lookup(symbol, args)
    }

    /// Finishes construction, returning an [`EvalResult`].
    pub fn finish(self) -> EvalResult {
        EvalResult {
            graph: self.ctx.out,
            new_nodes: self.ctx.new_nodes,
            skolem: self.ctx.skolem,
            rows_evaluated: self.ctx.rows_evaluated,
        }
    }
}

fn lookup_var<'r>(name: &str, row: &'r Row, vars: &[String]) -> StruqlResult<&'r Value> {
    let slot = vars
        .iter()
        .position(|v| v == name)
        .ok_or_else(|| StruqlError::eval(format!("variable '{name}' has no slot")))?;
    row.get(slot)
        .and_then(Option::as_ref)
        .ok_or_else(|| StruqlError::eval(format!("variable '{name}' is unbound at use")))
}

pub(crate) fn var_slot(name: &str, vars: &[String]) -> Option<usize> {
    vars.iter().position(|v| v == name)
}

#[cfg(test)]
mod tests;
