//! Regular path expression compilation and evaluation.
//!
//! A [`PathRegex`] is compiled by Thompson construction into a small NFA
//! over edge predicates, then evaluated as a product BFS over
//! `(node, state)` pairs. Zero-length paths are supported (`*` includes
//! the start node itself: "finds all nodes q reachable from the root p,
//! including p itself", §2.2), and a path may *end* at an atomic value —
//! only intermediate stops must be nodes, since atomic values have no
//! out-edges.

use crate::ast::PathRegex;
use std::collections::HashSet;
use strudel_graph::{Graph, Label, Oid, Value};

/// A single-step predicate, for path atoms the planner can serve straight
/// from the extension indexes without touching the NFA machinery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepPred {
    /// Any label (`true`).
    Any,
    /// One specific label.
    Label(String),
}

impl PathRegex {
    /// If this regex matches exactly one edge with a simple predicate,
    /// return that predicate.
    pub fn as_single_step(&self) -> Option<StepPred> {
        match self {
            PathRegex::Label(l) => Some(StepPred::Label(l.clone())),
            PathRegex::Any => Some(StepPred::Any),
            _ => None,
        }
    }

    /// Whether a traversal matching this regex could ever cross an edge
    /// labelled `label`. Conservative in one direction only: `true` may be
    /// a false positive (the label appears but no full match uses it), but
    /// `false` is exact — no matching path contains such an edge, so a
    /// delta touching only that label cannot change this regex's results.
    pub fn could_traverse(&self, label: &str) -> bool {
        match self {
            PathRegex::Label(l) => l == label,
            PathRegex::Any => true,
            PathRegex::Seq(a, b) | PathRegex::Alt(a, b) => {
                a.could_traverse(label) || b.could_traverse(label)
            }
            PathRegex::Star(inner) | PathRegex::Plus(inner) | PathRegex::Opt(inner) => {
                inner.could_traverse(label)
            }
        }
    }

    /// The mirror-image regex: `r.reversed()` matches the label sequence
    /// `l1 … lk` exactly when `r` matches `lk … l1`. Compiling the reversed
    /// regex lets a bound *destination* be answered by a BFS over the
    /// reverse adjacency index instead of a forward scan from every node.
    pub fn reversed(&self) -> PathRegex {
        match self {
            PathRegex::Label(_) | PathRegex::Any => self.clone(),
            PathRegex::Seq(a, b) => {
                PathRegex::Seq(Box::new(b.reversed()), Box::new(a.reversed()))
            }
            PathRegex::Alt(a, b) => {
                PathRegex::Alt(Box::new(a.reversed()), Box::new(b.reversed()))
            }
            PathRegex::Star(inner) => PathRegex::Star(Box::new(inner.reversed())),
            PathRegex::Plus(inner) => PathRegex::Plus(Box::new(inner.reversed())),
            PathRegex::Opt(inner) => PathRegex::Opt(Box::new(inner.reversed())),
        }
    }
}

/// An edge predicate on a compiled transition. Labels are resolved against
/// a concrete graph: a label name the graph never interned can never match.
#[derive(Clone, Debug)]
enum CompiledPred {
    Any,
    Label(Option<Label>),
}

impl CompiledPred {
    #[inline]
    fn matches(&self, label: Label) -> bool {
        match self {
            CompiledPred::Any => true,
            CompiledPred::Label(l) => *l == Some(label),
        }
    }
}

/// A compiled NFA, specialized to one graph's label interner.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Labeled transitions per state.
    trans: Vec<Vec<(CompiledPred, usize)>>,
    /// Epsilon transitions per state.
    eps: Vec<Vec<usize>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Compiles `regex` against `graph`'s label interner.
    pub fn compile(regex: &PathRegex, graph: &Graph) -> Nfa {
        let mut b = Builder {
            trans: Vec::new(),
            eps: Vec::new(),
        };
        let start = b.state();
        let accept = b.state();
        b.build(regex, graph, start, accept);
        Nfa {
            trans: b.trans,
            eps: b.eps,
            start,
            accept,
        }
    }

    /// Number of NFA states (for tests and plan costing).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Epsilon closure of a set of states, pushed into `out` (deduplicated
    /// via `mark`).
    fn closure(&self, seed: usize, out: &mut Vec<usize>, mark: &mut [bool]) {
        let mut stack = vec![seed];
        while let Some(s) = stack.pop() {
            if mark[s] {
                continue;
            }
            mark[s] = true;
            out.push(s);
            for &t in &self.eps[s] {
                stack.push(t);
            }
        }
    }

    /// All values reachable from `start` along paths matching the regex.
    ///
    /// The result preserves first-discovery order (BFS order), which makes
    /// query results deterministic.
    pub fn eval_from(&self, graph: &Graph, start: &Value) -> Vec<Value> {
        let mut results: Vec<Value> = Vec::new();
        let mut seen_results: HashSet<Value> = HashSet::new();
        let emit = |v: Value, results: &mut Vec<Value>, seen: &mut HashSet<Value>| {
            if seen.insert(v.clone()) {
                results.push(v);
            }
        };

        let mut mark = vec![false; self.trans.len()];
        let mut start_states = Vec::new();
        self.closure(self.start, &mut start_states, &mut mark);

        let Some(o) = start.as_node() else {
            // An atomic start can only satisfy a zero-length path.
            if start_states.contains(&self.accept) {
                emit(start.clone(), &mut results, &mut seen_results);
            }
            return results;
        };

        // visited[(node, state)] as a flat bitset when small, else a set.
        let mut visited: HashSet<(Oid, usize)> = HashSet::new();
        let mut queue: std::collections::VecDeque<(Oid, usize)> = Default::default();
        for &s in &start_states {
            if visited.insert((o, s)) {
                queue.push_back((o, s));
            }
        }

        let mut closure_buf = Vec::new();
        while let Some((n, s)) = queue.pop_front() {
            if s == self.accept {
                emit(Value::Node(n), &mut results, &mut seen_results);
            }
            if self.trans[s].is_empty() {
                continue;
            }
            for e in graph.edges(n) {
                for (pred, t) in &self.trans[s] {
                    if !pred.matches(e.label) {
                        continue;
                    }
                    closure_buf.clear();
                    mark.iter_mut().for_each(|m| *m = false);
                    self.closure(*t, &mut closure_buf, &mut mark);
                    match &e.to {
                        Value::Node(m) => {
                            for &u in &closure_buf {
                                if visited.insert((*m, u)) {
                                    queue.push_back((*m, u));
                                }
                            }
                        }
                        atomic => {
                            if closure_buf.contains(&self.accept) {
                                emit(atomic.clone(), &mut results, &mut seen_results);
                            }
                        }
                    }
                }
            }
        }
        results
    }

    /// Compiles the reversal of `regex` (see [`PathRegex::reversed`]),
    /// suitable for [`Nfa::eval_from_reverse`].
    pub fn compile_reversed(regex: &PathRegex, graph: &Graph) -> Nfa {
        Nfa::compile(&regex.reversed(), graph)
    }

    /// Whether the regex matches the empty path (the start's epsilon
    /// closure contains the accept state).
    pub fn matches_empty(&self) -> bool {
        let mut mark = vec![false; self.trans.len()];
        let mut start_states = Vec::new();
        self.closure(self.start, &mut start_states, &mut mark);
        start_states.contains(&self.accept)
    }

    /// All *source nodes* with a path matching the original regex ending at
    /// `target`, found by BFS over [`Graph::edges_in`]. `self` must have
    /// been compiled with [`Nfa::compile_reversed`].
    ///
    /// When `target` is an atomic value it has no incoming-edge index;
    /// `atomic_seeds` supplies the `(source, label)` pairs of edges whose
    /// target coerces equal to it (the caller gathers those from the value
    /// index or an edge scan), and the zero-length match emits `target`
    /// itself, mirroring the forward semantics for atomic starts.
    ///
    /// Results preserve first-discovery (BFS) order; intermediate hops are
    /// node-to-node only, exactly as in the forward direction.
    pub fn eval_from_reverse(
        &self,
        graph: &Graph,
        target: &Value,
        atomic_seeds: &[(Oid, Label)],
    ) -> Vec<Value> {
        let mut results: Vec<Value> = Vec::new();
        let mut seen_results: HashSet<Value> = HashSet::new();
        let emit = |v: Value, results: &mut Vec<Value>, seen: &mut HashSet<Value>| {
            if seen.insert(v.clone()) {
                results.push(v);
            }
        };

        let mut mark = vec![false; self.trans.len()];
        let mut start_states = Vec::new();
        self.closure(self.start, &mut start_states, &mut mark);

        if start_states.contains(&self.accept) {
            // Zero-length path: the target itself is a matching source.
            emit(target.clone(), &mut results, &mut seen_results);
        }

        let mut visited: HashSet<(Oid, usize)> = HashSet::new();
        let mut queue: std::collections::VecDeque<(Oid, usize)> = Default::default();
        let mut closure_buf = Vec::new();

        match target.as_node() {
            Some(o) => {
                for &s in &start_states {
                    if visited.insert((o, s)) {
                        queue.push_back((o, s));
                    }
                }
            }
            None => {
                // Consume the (forward-)final edge into the atomic value:
                // one reverse transition from each start state per seed.
                for &(from, label) in atomic_seeds {
                    for &s in &start_states {
                        for (pred, t) in &self.trans[s] {
                            if !pred.matches(label) {
                                continue;
                            }
                            closure_buf.clear();
                            mark.iter_mut().for_each(|m| *m = false);
                            self.closure(*t, &mut closure_buf, &mut mark);
                            for &u in &closure_buf {
                                if visited.insert((from, u)) {
                                    queue.push_back((from, u));
                                }
                            }
                        }
                    }
                }
            }
        }

        while let Some((n, s)) = queue.pop_front() {
            if s == self.accept {
                emit(Value::Node(n), &mut results, &mut seen_results);
            }
            if self.trans[s].is_empty() {
                continue;
            }
            for ie in graph.edges_in(n) {
                for (pred, t) in &self.trans[s] {
                    if !pred.matches(ie.label) {
                        continue;
                    }
                    closure_buf.clear();
                    mark.iter_mut().for_each(|m| *m = false);
                    self.closure(*t, &mut closure_buf, &mut mark);
                    for &u in &closure_buf {
                        if visited.insert((ie.from, u)) {
                            queue.push_back((ie.from, u));
                        }
                    }
                }
            }
        }
        results
    }

    /// Whether a path matching the regex leads from `from` to `to`.
    pub fn connects(&self, graph: &Graph, from: &Value, to: &Value) -> bool {
        // Simple and correct; evaluation is bounded by reachable size. A
        // bidirectional search would be faster but this is only used for
        // bound-bound checks, which are rare.
        self.eval_from(graph, from).iter().any(|v| v == to)
    }
}

struct Builder {
    trans: Vec<Vec<(CompiledPred, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    /// Thompson construction of `regex` between `from` and `to`.
    fn build(&mut self, regex: &PathRegex, graph: &Graph, from: usize, to: usize) {
        match regex {
            PathRegex::Label(name) => {
                let pred = CompiledPred::Label(graph.label(name));
                self.trans[from].push((pred, to));
            }
            PathRegex::Any => {
                self.trans[from].push((CompiledPred::Any, to));
            }
            PathRegex::Seq(a, b) => {
                let mid = self.state();
                self.build(a, graph, from, mid);
                self.build(b, graph, mid, to);
            }
            PathRegex::Alt(a, b) => {
                self.build(a, graph, from, to);
                self.build(b, graph, from, to);
            }
            PathRegex::Star(inner) => {
                let hub = self.state();
                self.eps[from].push(hub);
                self.eps[hub].push(to);
                self.build(inner, graph, hub, hub);
            }
            PathRegex::Plus(inner) => {
                // R+ = R . R*
                let mid = self.state();
                self.build(inner, graph, from, mid);
                self.build(&PathRegex::Star(inner.clone()), graph, mid, to);
            }
            PathRegex::Opt(inner) => {
                self.eps[from].push(to);
                self.build(inner, graph, from, to);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::FileKind;

    /// root -a-> mid -b-> leaf("end"), root -c-> img(image file),
    /// cycle: mid -a-> root
    fn sample() -> Graph {
        let mut g = Graph::new();
        let root = g.add_named_node("root");
        let mid = g.add_named_node("mid");
        let leaf = g.add_named_node("leaf");
        g.add_edge_str(root, "a", Value::Node(mid));
        g.add_edge_str(mid, "b", Value::Node(leaf));
        g.add_edge_str(leaf, "val", Value::string("end"));
        g.add_edge_str(root, "c", Value::file(FileKind::Image, "x.gif"));
        g.add_edge_str(mid, "a", Value::Node(root));
        g
    }

    fn eval(g: &Graph, r: &PathRegex, from: &str) -> Vec<Value> {
        let nfa = Nfa::compile(r, g);
        let start = Value::Node(g.node_by_name(from).unwrap());
        nfa.eval_from(g, &start)
    }

    fn node(g: &Graph, name: &str) -> Value {
        Value::Node(g.node_by_name(name).unwrap())
    }

    #[test]
    fn single_label_step() {
        let g = sample();
        let r = PathRegex::Label("a".into());
        assert_eq!(eval(&g, &r, "root"), vec![node(&g, "mid")]);
    }

    #[test]
    fn any_step_reaches_atomic_values() {
        let g = sample();
        let r = PathRegex::Any;
        let out = eval(&g, &r, "root");
        assert!(out.contains(&node(&g, "mid")));
        assert!(out.contains(&Value::file(FileKind::Image, "x.gif")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn star_includes_start_and_handles_cycles() {
        let g = sample();
        let r = PathRegex::Star(Box::new(PathRegex::Any));
        let out = eval(&g, &r, "root");
        assert!(out.contains(&node(&g, "root")), "zero-length path");
        assert!(out.contains(&node(&g, "mid")));
        assert!(out.contains(&node(&g, "leaf")));
        assert!(out.contains(&Value::string("end")));
        assert!(out.contains(&Value::file(FileKind::Image, "x.gif")));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn seq_concatenates() {
        let g = sample();
        let r = PathRegex::Seq(
            Box::new(PathRegex::Label("a".into())),
            Box::new(PathRegex::Label("b".into())),
        );
        assert_eq!(eval(&g, &r, "root"), vec![node(&g, "leaf")]);
    }

    #[test]
    fn alt_unions() {
        let g = sample();
        let r = PathRegex::Alt(
            Box::new(PathRegex::Label("a".into())),
            Box::new(PathRegex::Label("c".into())),
        );
        let out = eval(&g, &r, "root");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn plus_requires_at_least_one() {
        let g = sample();
        let r = PathRegex::Plus(Box::new(PathRegex::Label("a".into())));
        let out = eval(&g, &r, "root");
        // a, aa, aaa… cycles root->mid->root->…
        assert!(out.contains(&node(&g, "mid")));
        assert!(out.contains(&node(&g, "root")));
        assert_eq!(out.len(), 2);
        // but not zero-length only: from leaf (no 'a' edges) nothing.
        assert!(eval(&g, &r, "leaf").is_empty());
    }

    #[test]
    fn opt_is_zero_or_one() {
        let g = sample();
        let r = PathRegex::Opt(Box::new(PathRegex::Label("a".into())));
        let out = eval(&g, &r, "root");
        assert!(out.contains(&node(&g, "root")));
        assert!(out.contains(&node(&g, "mid")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unknown_label_matches_nothing() {
        let g = sample();
        let r = PathRegex::Label("never-interned".into());
        assert!(eval(&g, &r, "root").is_empty());
    }

    #[test]
    fn atomic_start_only_matches_zero_length() {
        let g = sample();
        let star = Nfa::compile(&PathRegex::Star(Box::new(PathRegex::Any)), &g);
        let v = Value::string("atom");
        assert_eq!(star.eval_from(&g, &v), vec![v.clone()]);
        let one = Nfa::compile(&PathRegex::Any, &g);
        assert!(one.eval_from(&g, &v).is_empty());
    }

    #[test]
    fn connects_checks_pairs() {
        let g = sample();
        let star = Nfa::compile(&PathRegex::Star(Box::new(PathRegex::Any)), &g);
        assert!(star.connects(&g, &node(&g, "root"), &Value::string("end")));
        assert!(!star.connects(&g, &node(&g, "leaf"), &node(&g, "root")));
    }

    #[test]
    fn single_step_detection() {
        assert_eq!(
            PathRegex::Label("a".into()).as_single_step(),
            Some(StepPred::Label("a".into()))
        );
        assert_eq!(PathRegex::Any.as_single_step(), Some(StepPred::Any));
        assert_eq!(
            PathRegex::Star(Box::new(PathRegex::Any)).as_single_step(),
            None
        );
    }

    #[test]
    fn could_traverse_is_exact_on_false() {
        let rel_star = PathRegex::Star(Box::new(PathRegex::Label("rel".into())));
        assert!(rel_star.could_traverse("rel"));
        assert!(!rel_star.could_traverse("title"));

        let seq = PathRegex::Seq(
            Box::new(PathRegex::Label("a".into())),
            Box::new(PathRegex::Plus(Box::new(PathRegex::Label("b".into())))),
        );
        assert!(seq.could_traverse("a"));
        assert!(seq.could_traverse("b"));
        assert!(!seq.could_traverse("c"));

        let any = PathRegex::Opt(Box::new(PathRegex::Any));
        assert!(any.could_traverse("anything"));

        let alt = PathRegex::Alt(
            Box::new(PathRegex::Label("x".into())),
            Box::new(PathRegex::Label("y".into())),
        );
        assert!(alt.could_traverse("y"));
        assert!(!alt.could_traverse("z"));
    }

    #[test]
    fn reversed_mirrors_sequences() {
        let r = PathRegex::Seq(
            Box::new(PathRegex::Label("a".into())),
            Box::new(PathRegex::Star(Box::new(PathRegex::Label("b".into())))),
        );
        let rev = r.reversed();
        assert_eq!(
            rev,
            PathRegex::Seq(
                Box::new(PathRegex::Star(Box::new(PathRegex::Label("b".into())))),
                Box::new(PathRegex::Label("a".into())),
            )
        );
        assert_eq!(rev.reversed(), r, "reversal is an involution");
    }

    #[test]
    fn reverse_eval_agrees_with_forward_on_node_targets() {
        let g = sample();
        let regexes = vec![
            PathRegex::Label("a".into()),
            PathRegex::Any,
            PathRegex::Star(Box::new(PathRegex::Any)),
            PathRegex::Plus(Box::new(PathRegex::Label("a".into()))),
            PathRegex::Seq(
                Box::new(PathRegex::Label("a".into())),
                Box::new(PathRegex::Label("b".into())),
            ),
            PathRegex::Opt(Box::new(PathRegex::Label("a".into()))),
        ];
        for r in &regexes {
            let fwd = Nfa::compile(r, &g);
            let rev = Nfa::compile_reversed(r, &g);
            for target in g.node_oids() {
                let tv = Value::Node(target);
                let mut expect: Vec<Value> = g
                    .node_oids()
                    .filter(|&s| fwd.eval_from(&g, &Value::Node(s)).contains(&tv))
                    .map(Value::Node)
                    .collect();
                let mut got = rev.eval_from_reverse(&g, &tv, &[]);
                let key = |v: &Value| v.as_node().unwrap().index();
                got.sort_by_key(key);
                expect.sort_by_key(key);
                assert_eq!(got, expect, "regex {r:?} target {target:?}");
            }
        }
    }

    #[test]
    fn reverse_eval_atomic_target_uses_seeds() {
        let g = sample();
        let star = Nfa::compile_reversed(&PathRegex::Star(Box::new(PathRegex::Any)), &g);
        let leaf = g.node_by_name("leaf").unwrap();
        let val = g.label("val").unwrap();
        let out = star.eval_from_reverse(&g, &Value::string("end"), &[(leaf, val)]);
        // Zero-length match surfaces the atomic itself, then every node
        // that reaches it: leaf directly, mid and root transitively.
        assert_eq!(out[0], Value::string("end"));
        assert!(out.contains(&node(&g, "leaf")));
        assert!(out.contains(&node(&g, "mid")));
        assert!(out.contains(&node(&g, "root")));
        assert_eq!(out.len(), 4);
        // Without seeds, only the zero-length match remains.
        assert_eq!(
            star.eval_from_reverse(&g, &Value::string("end"), &[]),
            vec![Value::string("end")]
        );
    }

    #[test]
    fn matches_empty_detects_nullable_regexes() {
        let g = sample();
        assert!(Nfa::compile(&PathRegex::Star(Box::new(PathRegex::Any)), &g).matches_empty());
        assert!(Nfa::compile(&PathRegex::Opt(Box::new(PathRegex::Any)), &g).matches_empty());
        assert!(!Nfa::compile(&PathRegex::Any, &g).matches_empty());
        assert!(!Nfa::compile(&PathRegex::Plus(Box::new(PathRegex::Any)), &g).matches_empty());
    }

    #[test]
    fn nested_star_terminates() {
        let g = sample();
        let r = PathRegex::Star(Box::new(PathRegex::Star(Box::new(PathRegex::Label(
            "a".into(),
        )))));
        let out = eval(&g, &r, "root");
        assert!(out.contains(&node(&g, "root")));
        assert!(out.contains(&node(&g, "mid")));
    }
}
