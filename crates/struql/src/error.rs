//! STRUQL error types.

use crate::token::Span;
use std::fmt;

/// Result alias for STRUQL operations.
pub type StruqlResult<T> = Result<T, StruqlError>;

/// An error from parsing, analyzing, or evaluating a STRUQL program.
#[derive(Clone, Debug, PartialEq)]
pub enum StruqlError {
    /// Syntax error.
    Parse {
        /// Where.
        span: Span,
        /// What.
        message: String,
    },
    /// Static analysis rejection (unbound variable, immutable source, …).
    Analyze {
        /// Where.
        span: Span,
        /// What.
        message: String,
    },
    /// Run-time evaluation failure.
    Eval {
        /// What.
        message: String,
    },
}

impl StruqlError {
    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        StruqlError::Parse {
            span,
            message: message.into(),
        }
    }

    pub(crate) fn analyze(span: Span, message: impl Into<String>) -> Self {
        StruqlError::Analyze {
            span,
            message: message.into(),
        }
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        StruqlError::Eval {
            message: message.into(),
        }
    }

    /// The error message without position information.
    pub fn message(&self) -> &str {
        match self {
            StruqlError::Parse { message, .. }
            | StruqlError::Analyze { message, .. }
            | StruqlError::Eval { message } => message,
        }
    }
}

impl fmt::Display for StruqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StruqlError::Parse { span, message } => {
                write!(f, "struql parse error at {span}: {message}")
            }
            StruqlError::Analyze { span, message } => {
                write!(f, "struql analysis error at {span}: {message}")
            }
            StruqlError::Eval { message } => write!(f, "struql evaluation error: {message}"),
        }
    }
}

impl std::error::Error for StruqlError {}
