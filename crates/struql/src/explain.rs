//! `EXPLAIN` for STRUQL where clauses: the chosen plan, its cost-model
//! estimates, and — after an instrumented run — the actual per-step row
//! counts and wall times.
//!
//! The planner (see [`crate::plan`]) greedily orders conditions by
//! estimated output-rows-per-input-row. An [`ExplainReport`] lays the
//! estimate and the measured actual side by side per step, which is how
//! mis-estimates (and therefore bad join orders) are diagnosed. Reports
//! are produced by [`Evaluator::explain_where_bindings`]
//! (`Evaluator` lives in [`crate::eval`]) and surfaced through the
//! `strudel explain` CLI verb and strudel-serve's `/debug/explain` route.
//!
//! [`Evaluator::explain_where_bindings`]: crate::Evaluator::explain_where_bindings

/// One evaluated plan step: a condition, where the planner scheduled it,
/// and what actually happened when it ran.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainStep {
    /// Index of the condition in the source where clause.
    pub source_index: usize,
    /// Canonical rendering of the condition ([`crate::pretty_condition`]).
    pub condition: String,
    /// The planner's cost estimate (≈ output rows per input row;
    /// infinite marks a filter that was unschedulable when picked).
    pub estimate: f64,
    /// Rows entering the step.
    pub rows_in: usize,
    /// Rows leaving the step.
    pub rows_out: usize,
    /// Measured wall time of the step, in microseconds.
    pub elapsed_us: u64,
}

/// A full plan explanation: every step in evaluation order, plus totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplainReport {
    /// Whether cost-based ordering was on (false = textual order).
    pub optimized: bool,
    /// Steps in the order the plan ran them.
    pub steps: Vec<ExplainStep>,
    /// Rows in the final bindings relation.
    pub total_rows: usize,
    /// Total measured wall time across steps, in microseconds.
    pub total_us: u64,
}

impl ExplainReport {
    /// Renders the report as an aligned plain-text table: one line per
    /// step, estimates next to actuals.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "plan ({} steps, optimize={}, {} rows, {} us)\n",
            self.steps.len(),
            self.optimized,
            self.total_rows,
            self.total_us
        );
        out.push_str("step  est/row     in -> out    us      condition\n");
        for (i, s) in self.steps.iter().enumerate() {
            let est = if s.estimate.is_finite() {
                format!("{:.2}", s.estimate)
            } else {
                "inf".to_string()
            };
            out.push_str(&format!(
                "{:<4}  {:<10}  {:>5} -> {:<5}  {:<6}  {}\n",
                i + 1,
                est,
                s.rows_in,
                s.rows_out,
                s.elapsed_us,
                s.condition
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Evaluator};
    use strudel_repo::{Database, IndexLevel};

    fn db() -> Database {
        let g = strudel_graph::ddl::parse(
            r#"
            object p1 in Publications { title : "Strudel"; year : 1998; }
            object p2 in Publications { title : "WebOQL"; year : 1998; }
            object p3 in Publications { title : "Araneus"; year : 1997; }
        "#,
        )
        .unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    #[test]
    fn explain_reports_actual_rows_per_step() {
        let db = db();
        let prog = parse(r#"where Publications(x), x -> "year" -> y, y = 1998 create P(x)"#)
            .unwrap();
        let ev = Evaluator::new(&db);
        let (vars, rows, report) = ev
            .explain_where_bindings(&prog.blocks[0].where_, &[])
            .unwrap();
        assert!(vars.contains(&"x".to_string()) && vars.contains(&"y".to_string()));
        assert_eq!(rows.len(), 2);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.total_rows, 2);
        // The membership step enumerates all three publications.
        let membership = report
            .steps
            .iter()
            .find(|s| s.condition.contains("Publications"))
            .unwrap();
        assert_eq!(membership.rows_out, 3);
        // The comparison filters 3 rows down to 2.
        let filter = report
            .steps
            .iter()
            .find(|s| s.condition.contains("="))
            .unwrap();
        assert_eq!(filter.rows_out, 2);
        assert!(report.steps.iter().all(|s| s.estimate.is_finite()));
    }

    #[test]
    fn explain_matches_plain_evaluation() {
        let db = db();
        let prog = parse(r#"where Publications(x), x -> "year" -> y create P(x)"#).unwrap();
        let ev = Evaluator::new(&db);
        let (vars_a, rows_a) = ev
            .eval_where_bindings(&prog.blocks[0].where_, &[])
            .unwrap();
        let (vars_b, rows_b, _) = ev
            .explain_where_bindings(&prog.blocks[0].where_, &[])
            .unwrap();
        assert_eq!(vars_a, vars_b);
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn render_text_aligns_estimates_and_actuals() {
        let report = ExplainReport {
            optimized: true,
            steps: vec![ExplainStep {
                source_index: 0,
                condition: "Publications(x)".into(),
                estimate: 3.0,
                rows_in: 1,
                rows_out: 3,
                elapsed_us: 12,
            }],
            total_rows: 3,
            total_us: 12,
        };
        let text = report.render_text();
        assert!(text.contains("3.00"));
        assert!(text.contains("Publications(x)"));
        assert!(text.contains("1 ->"));
    }
}
