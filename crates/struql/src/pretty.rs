//! Pretty-printing of STRUQL programs.
//!
//! `parse(pretty(p))` reproduces `p` (round-trip property tested in the
//! crate's integration tests). The printer is also what the experiment
//! harness uses to count "query lines" the way the paper reports them.

use crate::ast::*;
use std::fmt::Write;

/// Renders a program in canonical form.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for (i, b) in program.blocks.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        block(b, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn block(b: &Block, level: usize, out: &mut String) {
    if !b.where_.is_empty() {
        indent(level, out);
        out.push_str("where ");
        for (i, c) in b.where_.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
                indent(level, out);
                out.push_str("      ");
            }
            condition(c, out);
        }
        out.push('\n');
    }
    if !b.create.is_empty() {
        indent(level, out);
        out.push_str("create ");
        for (i, t) in b.create.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            term(t, out);
        }
        out.push('\n');
    }
    if !b.link.is_empty() {
        indent(level, out);
        out.push_str("link ");
        for (i, l) in b.link.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
                indent(level, out);
                out.push_str("     ");
            }
            term(&l.src, out);
            out.push_str(" -> ");
            match &l.label {
                LabelTerm::Const(s) => string_lit(s, out),
                LabelTerm::Var(v) => out.push_str(v),
            }
            out.push_str(" -> ");
            term(&l.dst, out);
        }
        out.push('\n');
    }
    if !b.collect.is_empty() {
        indent(level, out);
        out.push_str("collect ");
        for (i, c) in b.collect.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.collection);
            out.push('(');
            term(&c.arg, out);
            out.push(')');
        }
        out.push('\n');
    }
    for n in &b.nested {
        indent(level, out);
        out.push_str("{\n");
        block(n, level + 1, out);
        indent(level, out);
        out.push_str("}\n");
    }
}

/// Renders a single where-condition in canonical form — the label the
/// trace/EXPLAIN machinery attaches to per-condition timings.
pub fn pretty_condition(c: &Condition) -> String {
    let mut out = String::new();
    condition(c, &mut out);
    out
}

fn condition(c: &Condition, out: &mut String) {
    match c {
        Condition::Collection { name, arg, .. } => {
            out.push_str(name);
            out.push('(');
            term(arg, out);
            out.push(')');
        }
        Condition::Path { src, path, dst, .. } => {
            term(src, out);
            out.push_str(" -> ");
            match path {
                PathSpec::ArcVar(l) => out.push_str(l),
                PathSpec::Regex(r) => regex(r, out, 0),
            }
            out.push_str(" -> ");
            term(dst, out);
        }
        Condition::Compare { op, lhs, rhs, .. } => {
            term(lhs, out);
            write!(out, " {} ", op.symbol()).unwrap();
            term(rhs, out);
        }
        Condition::Builtin { pred, arg, .. } => {
            out.push_str(pred.name());
            out.push('(');
            term(arg, out);
            out.push(')');
        }
        Condition::Not(inner, _) => {
            out.push_str("not(");
            condition(inner, out);
            out.push(')');
        }
    }
}

/// Precedence levels: 0 = alternation, 1 = sequence, 2 = postfix/primary.
fn regex(r: &PathRegex, out: &mut String, prec: u8) {
    let level = match r {
        PathRegex::Alt(..) => 0,
        PathRegex::Seq(..) => 1,
        _ => 2,
    };
    let paren = level < prec;
    if paren {
        out.push('(');
    }
    match r {
        PathRegex::Label(l) => string_lit(l, out),
        PathRegex::Any => out.push_str("true"),
        PathRegex::Seq(a, b) => {
            regex(a, out, 1);
            out.push_str(" . ");
            regex(b, out, 1);
        }
        PathRegex::Alt(a, b) => {
            regex(a, out, 0);
            out.push_str(" | ");
            regex(b, out, 0);
        }
        PathRegex::Star(inner) => {
            regex(inner, out, 2);
            out.push('*');
        }
        PathRegex::Plus(inner) => {
            regex(inner, out, 2);
            out.push('+');
        }
        PathRegex::Opt(inner) => {
            regex(inner, out, 2);
            out.push('?');
        }
    }
    if paren {
        out.push(')');
    }
}

fn term(t: &Term, out: &mut String) {
    match t {
        Term::Var(v) => out.push_str(v),
        Term::Const(v) => match v {
            strudel_graph::Value::Str(s) => string_lit(s, out),
            other => write!(out, "{other}").unwrap(),
        },
        Term::Skolem { symbol, args } => {
            out.push_str(symbol);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                term(a, out);
            }
            out.push(')');
        }
    }
}

fn string_lit(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_unchecked;
    use crate::pretty;

    fn round_trip(src: &str) {
        let p1 = parse_unchecked(src).unwrap();
        let text = pretty(&p1);
        let p2 = parse_unchecked(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{text}"));
        // Spans differ; compare the canonical rendering instead.
        assert_eq!(pretty(&p2), text);
        assert_eq!(p2.blocks.len(), p1.blocks.len());
        assert_eq!(p2.link_clause_count(), p1.link_clause_count());
    }

    #[test]
    fn round_trips_the_paper_queries() {
        round_trip(
            r#"
            where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
            create New(p), New(q), New(r)
            link   New(q) -> l -> New(r)
            collect TextOnlyRoot(New(p))
        "#,
        );
        round_trip(
            r#"
            create RootPage(), AbstractsPage()
            link RootPage() -> "Abstracts" -> AbstractsPage()
            where Publications(x)
            create AbstractPage(x), PaperPresentation(x)
            { where x -> l -> v link PaperPresentation(x) -> l -> v }
            { where x -> "year" -> y
              create YearPage(y)
              link YearPage(y) -> "Paper" -> PaperPresentation(x) }
        "#,
        );
    }

    #[test]
    fn round_trips_regex_precedence() {
        round_trip(r#"where x -> ("a" | "b") . "c"* -> y create P(x)"#);
        round_trip(r#"where x -> "a" | "b" . "c" -> y create P(x)"#);
        round_trip(r#"where x -> ("a" . "b")+ . "d"? -> y create P(x)"#);
    }

    #[test]
    fn round_trips_comparisons_and_constants() {
        round_trip(r#"where C(x), x -> "year" -> y, y >= 1997, y != 2000 create P(x, "tag", 3)"#);
    }

    #[test]
    fn escapes_strings() {
        round_trip(r#"where x -> "we\"ird\\label" -> y create P(y)"#);
    }
}
