//! Condition ordering (join planning) for where-clause evaluation.
//!
//! STRUQL's separation of query and construction stages means "all where
//! clauses can be evaluated by an optimizer at once" (§6.2). The planner
//! orders the conditions of one clause greedily: starting from the
//! variables bound by enclosing blocks, it repeatedly picks the condition
//! with the lowest estimated cost given what is bound so far, using the
//! repository's cardinality statistics. Filters (comparisons, built-ins,
//! negations) are scheduled as soon as their variables are bound — they
//! cost nearly nothing and prune rows early.
//!
//! With `optimize = false` the planner keeps textual order, deferring
//! filters only as far as safety requires — the baseline for the
//! join-ordering ablation (E-struql-scale).

use crate::ast::{Condition, PathSpec, Term};
use crate::rpe::StepPred;
use std::collections::HashSet;
use strudel_repo::{Database, Stats};

/// The chosen evaluation order for one where clause.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Indices into the condition list, in evaluation order.
    pub order: Vec<usize>,
    /// Estimated per-condition costs, parallel to `order`.
    pub estimates: Vec<f64>,
}

/// Estimated per-row work (in cost-model units) a worker chunk must carry
/// to amortize spawning a scoped thread. Below this the evaluator stays
/// sequential — partitioning a relation whose evaluation takes microseconds
/// costs more than it saves.
const MIN_CHUNK_WORK: f64 = 256.0;

/// Never split a relation into chunks smaller than this many rows: row
/// cloning is the floor cost and tiny chunks thrash the allocator.
const MIN_CHUNK_ROWS: usize = 64;

impl Plan {
    /// Overall estimated work (product of expansion factors ≥ 1).
    pub fn estimated_work(&self) -> f64 {
        self.estimates.iter().map(|c| c.max(1.0)).product()
    }

    /// Cost-aware partition count for evaluating the condition at position
    /// `pos` of [`Plan::order`] over a relation of `rows` rows with at most
    /// `workers` threads. The per-condition estimate (derived from the
    /// repository's [`Stats`]) sizes the chunks: expensive conditions
    /// (traversals, large expansions) parallelize at smaller relations than
    /// near-free filters, and relations too small to amortize a thread
    /// spawn return 1 (sequential).
    pub fn partitions(&self, pos: usize, rows: usize, workers: usize) -> usize {
        if workers <= 1 || rows < 2 * MIN_CHUNK_ROWS {
            return 1;
        }
        let per_row = match self.estimates.get(pos) {
            Some(c) if c.is_finite() => c.max(0.1),
            _ => 1.0,
        };
        let min_rows = ((MIN_CHUNK_WORK / per_row).ceil() as usize).max(MIN_CHUNK_ROWS);
        (rows / min_rows).clamp(1, workers)
    }
}

/// Plans the evaluation order of `conds` given the variables already
/// `bound` by enclosing blocks.
pub fn plan(
    conds: &[Condition],
    bound: &HashSet<String>,
    db: &Database,
    optimize: bool,
) -> Plan {
    let stats = db.stats();
    let mut bound = bound.clone();
    // Variables that some positive atom of this clause will eventually
    // bind. Variables outside this set (local existentials inside not(…))
    // never block scheduling.
    let mut eventually_bound = bound.clone();
    for c in conds {
        bind_vars(c, &mut eventually_bound);
    }
    let mut remaining: Vec<usize> = (0..conds.len()).collect();
    let mut order = Vec::with_capacity(conds.len());
    let mut estimates = Vec::with_capacity(conds.len());

    while !remaining.is_empty() {
        let pick = if optimize {
            // Cheapest schedulable condition.
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &i)| (pos, cost(&conds[i], &bound, &eventually_bound, db, &stats)))
                // `total_cmp`, not `partial_cmp`: a NaN estimate (e.g. a
                // 0.0/0.0 selectivity from an empty-collection Stats row)
                // must order deterministically instead of panicking — NaN
                // sorts above +inf, so it is simply never preferred.
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            pos
        } else {
            // Textual order, but skip filters whose variables are not yet
            // bound (they are picked up as soon as they become safe).
            remaining
                .iter()
                .position(|&i| cost(&conds[i], &bound, &eventually_bound, db, &stats).is_finite())
                .unwrap_or(0)
        };
        let idx = remaining.remove(pick);
        estimates.push(cost(&conds[idx], &bound, &eventually_bound, db, &stats));
        bind_vars(&conds[idx], &mut bound);
        order.push(idx);
    }
    Plan { order, estimates }
}

/// Estimated cost (≈ output rows per input row) of evaluating `cond` with
/// the given bound variables. `f64::INFINITY` marks filters that cannot run
/// yet.
fn cost(
    cond: &Condition,
    bound: &HashSet<String>,
    eventually_bound: &HashSet<String>,
    db: &Database,
    stats: &Stats,
) -> f64 {
    match cond {
        Condition::Collection { name, arg, .. } => match arg {
            Term::Var(v) if !bound.contains(v) => stats.collection_size(name) as f64,
            _ => 0.6, // membership check: prunes, never expands
        },
        Condition::Path { src, path, dst, .. } => {
            let src_bound = term_bound(src, bound);
            let dst_bound = term_bound(dst, bound);
            match path {
                PathSpec::ArcVar(_) | PathSpec::Regex(_)
                    if matches!(path, PathSpec::ArcVar(_))
                        || matches!(
                            path,
                            PathSpec::Regex(r) if r.as_single_step() == Some(StepPred::Any)
                        ) =>
                {
                    // Any single edge.
                    match (src_bound, dst_bound) {
                        (true, true) => 0.9,
                        (true, false) => stats.avg_degree().max(1.0),
                        (false, true) => (stats.edges as f64).sqrt().max(1.0),
                        (false, false) => (stats.edges as f64).max(1.0),
                    }
                }
                PathSpec::Regex(r) => match r.as_single_step() {
                    Some(StepPred::Label(l)) => {
                        let ls = db
                            .graph()
                            .label(l.as_str())
                            .map(|lab| stats.label(lab))
                            .unwrap_or_default();
                        match (src_bound, dst_bound) {
                            (true, true) => 0.9,
                            (true, false) => ls.fanout().max(0.1),
                            (false, true) => ls.fanin().max(0.1),
                            (false, false) => (ls.edges as f64).max(0.1),
                        }
                    }
                    Some(StepPred::Any) => unreachable!("handled above"),
                    None => {
                        // General regex. Bound source: one forward
                        // traversal. Bound destination: one *reverse*
                        // traversal over the incoming-edge index — same
                        // price, not the node-count multiple the forward
                        // engine would pay. Neither bound: a traversal per
                        // source node.
                        let reach = (stats.nodes as f64 / 2.0).max(1.0);
                        match (src_bound, dst_bound) {
                            (true, _) => reach,
                            (false, true) => reach,
                            (false, false) => (stats.nodes as f64).max(1.0) * reach,
                        }
                    }
                },
                PathSpec::ArcVar(_) => unreachable!("handled above"),
            }
        }
        Condition::Compare { lhs, rhs, .. } => {
            if term_bound(lhs, bound) && term_bound(rhs, bound) {
                0.4
            } else {
                f64::INFINITY
            }
        }
        Condition::Builtin { arg, .. } => {
            if term_bound(arg, bound) {
                0.4
            } else {
                f64::INFINITY
            }
        }
        Condition::Not(inner, _) => {
            let mut vars = Vec::new();
            collect_condition_vars(inner, &mut vars);
            // Local existentials (never bound by any positive atom) do not
            // gate scheduling; everything else must be bound first.
            if vars
                .iter()
                .all(|v| bound.contains(*v) || !eventually_bound.contains(*v))
            {
                0.5
            } else {
                f64::INFINITY
            }
        }
    }
}

fn term_bound(t: &Term, bound: &HashSet<String>) -> bool {
    match t {
        Term::Var(v) => bound.contains(v),
        Term::Const(_) => true,
        Term::Skolem { .. } => false, // not legal in where; defensive
    }
}

/// Adds the variables a positive condition binds.
fn bind_vars(cond: &Condition, bound: &mut HashSet<String>) {
    match cond {
        Condition::Collection { arg, .. } => {
            if let Term::Var(v) = arg {
                bound.insert(v.clone());
            }
        }
        Condition::Path { src, path, dst, .. } => {
            if let Term::Var(v) = src {
                bound.insert(v.clone());
            }
            if let Term::Var(v) = dst {
                bound.insert(v.clone());
            }
            if let PathSpec::ArcVar(l) = path {
                bound.insert(l.clone());
            }
        }
        Condition::Compare { .. } | Condition::Builtin { .. } | Condition::Not(..) => {}
    }
}

fn collect_condition_vars<'a>(cond: &'a Condition, out: &mut Vec<&'a str>) {
    fn term<'a>(t: &'a Term, out: &mut Vec<&'a str>) {
        match t {
            Term::Var(v) => out.push(v),
            Term::Const(_) => {}
            Term::Skolem { args, .. } => args.iter().for_each(|a| term(a, out)),
        }
    }
    match cond {
        Condition::Collection { arg, .. } => term(arg, out),
        Condition::Path { src, path, dst, .. } => {
            term(src, out);
            term(dst, out);
            if let PathSpec::ArcVar(l) = path {
                out.push(l);
            }
        }
        Condition::Compare { lhs, rhs, .. } => {
            term(lhs, out);
            term(rhs, out);
        }
        Condition::Builtin { arg, .. } => term(arg, out),
        Condition::Not(inner, _) => collect_condition_vars(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unchecked;
    use strudel_graph::{Graph, Value};
    use strudel_repo::IndexLevel;

    fn db_with_skew() -> Database {
        // 100 members of Big, 2 members of Small; "year" edges on all.
        let mut g = Graph::new();
        for i in 0..100 {
            let n = g.add_named_node(&format!("b{i}"));
            g.add_edge_str(n, "year", Value::Int(1990 + (i % 10)));
            g.collect_str("Big", n);
            if i < 2 {
                g.collect_str("Small", n);
            }
        }
        Database::from_graph(g, IndexLevel::Full)
    }

    #[test]
    fn optimizer_starts_from_the_small_collection() {
        let db = db_with_skew();
        let prog = parse_unchecked("where Big(x), Small(x) create P(x)").unwrap();
        let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, true);
        // Small(x) enumerated first (2 rows), Big(x) becomes a membership
        // check.
        assert_eq!(p.order, vec![1, 0]);
        assert!(p.estimated_work() < 10.0);
    }

    #[test]
    fn naive_order_is_textual() {
        let db = db_with_skew();
        let prog = parse_unchecked("where Big(x), Small(x) create P(x)").unwrap();
        let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, false);
        assert_eq!(p.order, vec![0, 1]);
    }

    #[test]
    fn filters_wait_for_bindings_in_both_modes() {
        let db = db_with_skew();
        let prog =
            parse_unchecked(r#"where y >= 1995, Big(x), x -> "year" -> y create P(x)"#).unwrap();
        for optimize in [true, false] {
            let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, optimize);
            let filter_pos = p.order.iter().position(|&i| i == 0).unwrap();
            let path_pos = p.order.iter().position(|&i| i == 2).unwrap();
            assert!(
                filter_pos > path_pos,
                "filter must follow the atom binding y (optimize={optimize}): {:?}",
                p.order
            );
        }
    }

    #[test]
    fn bound_parent_vars_make_membership_cheap() {
        let db = db_with_skew();
        let prog = parse_unchecked("where Big(x) create P(x)").unwrap();
        let mut bound = HashSet::new();
        bound.insert("x".to_string());
        let p = plan(&prog.blocks[0].where_, &bound, &db, true);
        assert!(p.estimates[0] < 1.0, "membership check, not enumeration");
    }

    #[test]
    fn planning_against_an_empty_database_never_panics() {
        // Regression: the greedy pick used `partial_cmp(...).expect(...)`,
        // which panics the moment any cost estimate is NaN. An empty
        // database is the degenerate Stats source (every collection size,
        // fan-out, and fan-in is a 0/0-shaped ratio), so plan a clause with
        // every condition kind against it, at both index levels.
        let prog = parse_unchecked(
            r#"where Big(x), x -> "year" -> y, x -> l -> z, x -> * -> w,
                     y >= 1995, not(Small(x)) create P(x)"#,
        )
        .unwrap();
        for level in [IndexLevel::None, IndexLevel::Full] {
            let db = Database::from_graph(Graph::new(), level);
            for optimize in [true, false] {
                let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, optimize);
                let mut seen: Vec<usize> = p.order.clone();
                seen.sort_unstable();
                assert_eq!(seen, (0..prog.blocks[0].where_.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn nan_costs_order_deterministically() {
        // total_cmp sorts NaN above +inf, so a NaN-cost condition is the
        // least preferred but still scheduled — document the order here.
        let mut costs = [f64::NAN, 2.0, f64::INFINITY, 0.5];
        costs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(costs[0], 0.5);
        assert_eq!(costs[1], 2.0);
        assert_eq!(costs[2], f64::INFINITY);
        assert!(costs[3].is_nan());
    }

    #[test]
    fn partition_sizing_follows_cost_and_relation_size() {
        let db = db_with_skew();
        let prog = parse_unchecked("where Big(x), Small(x) create P(x)").unwrap();
        let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, true);
        // Tiny relations never partition, whatever the worker budget.
        assert_eq!(p.partitions(0, 10, 8), 1);
        // One worker never partitions, whatever the relation size.
        assert_eq!(p.partitions(0, 1_000_000, 1), 1);
        // Large relations split, capped by the worker budget.
        assert!(p.partitions(0, 1_000_000, 4) <= 4);
        assert!(p.partitions(0, 1_000_000, 4) >= 2);
        // Out-of-range positions fall back to a sane default, not a panic.
        assert!(p.partitions(99, 1_000_000, 4) >= 1);
    }

    /// Regression coverage for partition sizing under degenerate cost
    /// estimates: `per_row == 0.0` would make `MIN_CHUNK_WORK / per_row`
    /// infinite and NaN estimates would poison the ceil/cast chain without
    /// the positive-floor clamp. Every degenerate shape must yield a
    /// partition count in `[1, workers]` with no panic or saturation.
    #[test]
    fn partition_sizing_survives_degenerate_estimates() {
        let degenerate = [0.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.5];
        for est in degenerate {
            let p = Plan {
                order: vec![0],
                estimates: vec![est],
            };
            for (rows, workers) in [(0, 8), (10, 8), (10_000, 8), (1_000_000, 4)] {
                let parts = p.partitions(0, rows, workers);
                assert!(
                    (1..=workers).contains(&parts),
                    "estimate {est} rows {rows} workers {workers} -> {parts}"
                );
            }
        }
        // A zero estimate is clamped to the 0.1 floor, not divided through:
        // the chunk floor stays MIN_CHUNK_ROWS-bounded, so a large relation
        // still partitions rather than collapsing to a single huge chunk.
        let p = Plan {
            order: vec![0],
            estimates: vec![0.0],
        };
        assert!(p.partitions(0, 1_000_000, 8) > 1);
    }

    #[test]
    fn plan_covers_every_condition_exactly_once() {
        let db = db_with_skew();
        let prog = parse_unchecked(
            r#"where Big(x), x -> "year" -> y, y >= 1995, not(Small(x)) create P(x)"#,
        )
        .unwrap();
        for optimize in [true, false] {
            let p = plan(&prog.blocks[0].where_, &HashSet::new(), &db, optimize);
            let mut seen: Vec<usize> = p.order.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3]);
        }
    }
}
