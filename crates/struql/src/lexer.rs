//! STRUQL tokenizer.

use crate::error::StruqlError;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes a STRUQL program. Comments run from `--`, `//`, or `#` to end
/// of line. The final token is always `Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>, StruqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                span: Span::new($l, $c),
            })
        };
    }

    while i < bytes.len() {
        let (tl, tc) = (line, col);
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                bump!();
                bump!();
                push!(TokenKind::Arrow, tl, tc);
            }
            b'(' => {
                bump!();
                push!(TokenKind::LParen, tl, tc);
            }
            b')' => {
                bump!();
                push!(TokenKind::RParen, tl, tc);
            }
            b'{' => {
                bump!();
                push!(TokenKind::LBrace, tl, tc);
            }
            b'}' => {
                bump!();
                push!(TokenKind::RBrace, tl, tc);
            }
            b',' => {
                bump!();
                push!(TokenKind::Comma, tl, tc);
            }
            b'*' => {
                bump!();
                push!(TokenKind::Star, tl, tc);
            }
            b'+' => {
                bump!();
                push!(TokenKind::Plus, tl, tc);
            }
            b'?' => {
                bump!();
                push!(TokenKind::Question, tl, tc);
            }
            b'|' => {
                bump!();
                push!(TokenKind::Pipe, tl, tc);
            }
            b'.' => {
                bump!();
                push!(TokenKind::Dot, tl, tc);
            }
            b'=' => {
                bump!();
                push!(TokenKind::Eq, tl, tc);
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                bump!();
                bump!();
                push!(TokenKind::Ne, tl, tc);
            }
            b'<' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    push!(TokenKind::Le, tl, tc);
                } else {
                    push!(TokenKind::Lt, tl, tc);
                }
            }
            b'>' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    push!(TokenKind::Ge, tl, tc);
                } else {
                    push!(TokenKind::Gt, tl, tc);
                }
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        return Err(StruqlError::parse(
                            Span::new(tl, tc),
                            "unterminated string literal",
                        ));
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            if i >= bytes.len() {
                                return Err(StruqlError::parse(
                                    Span::new(tl, tc),
                                    "unterminated string literal",
                                ));
                            }
                            let esc = bytes[i];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(StruqlError::parse(
                                        Span::new(line, col),
                                        format!("unknown escape '\\{}'", other as char),
                                    ))
                                }
                            });
                            bump!();
                        }
                        _ => {
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("in-bounds char");
                            s.push(ch);
                            for _ in 0..ch.len_utf8() {
                                bump!();
                            }
                        }
                    }
                }
                push!(TokenKind::Str(s), tl, tc);
            }
            b'0'..=b'9' | b'-' => {
                // '-' here is always unary minus: arrow and comment forms
                // were matched above.
                let start = i;
                let mut is_float = false;
                if bytes[i] == b'-' {
                    if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() {
                        return Err(StruqlError::parse(
                            Span::new(tl, tc),
                            "expected digit after '-'",
                        ));
                    }
                    bump!();
                }
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => bump!(),
                        // Only treat '.' as part of a number when a digit
                        // follows — '.' is also the path concatenation
                        // operator.
                        b'.' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                            is_float = true;
                            bump!();
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        StruqlError::parse(Span::new(tl, tc), format!("bad float '{text}'"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        StruqlError::parse(Span::new(tl, tc), format!("bad integer '{text}'"))
                    })?)
                };
                push!(kind, tl, tc);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    bump!();
                }
                push!(TokenKind::Ident(src[start..i].to_string()), tl, tc);
            }
            other => {
                return Err(StruqlError::parse(
                    Span::new(tl, tc),
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(line, col),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn arrows_vs_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("x -> y -- comment\nz"),
            vec![
                Ident("x".into()),
                Arrow,
                Ident("y".into()),
                Ident("z".into()),
                Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(kinds("= != < <= > >="), vec![Eq, Ne, Lt, Le, Gt, Ge, Eof]);
    }

    #[test]
    fn path_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("\"a\" . \"b\" | \"c\" * + ?"),
            vec![
                Str("a".into()),
                Dot,
                Str("b".into()),
                Pipe,
                Str("c".into()),
                Star,
                Plus,
                Question,
                Eof
            ]
        );
    }

    #[test]
    fn dot_before_digit_is_float() {
        use TokenKind::*;
        assert_eq!(kinds("1.5"), vec![Float(1.5), Eof]);
        assert_eq!(
            kinds("x . y"),
            vec![Ident("x".into()), Dot, Ident("y".into()), Eof]
        );
    }

    #[test]
    fn primed_variables() {
        assert_eq!(
            kinds("q q'"),
            vec![
                TokenKind::Ident("q".into()),
                TokenKind::Ident("q'".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn all_comment_styles() {
        assert_eq!(
            kinds("a # x\nb // y\nc -- z\nd"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn spans_are_tracked() {
        let toks = lex("where\n  Publications(x)").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }
}
