//! Static analysis of STRUQL programs.
//!
//! STRUQL is declarative: conditions in a `where` clause are unordered, so
//! safety is defined against the clause as a whole. The checks are:
//!
//! * **Range restriction** — every variable used in a filter (`not`,
//!   comparison, built-in predicate) or in the construction stage must be
//!   bound by a *positive* atom (collection membership or path atom) of the
//!   same `where` clause or an enclosing one.
//! * **Immutability of existing nodes** (§2.2) — the source of every
//!   `link` must be a Skolem term; "edges are added from new nodes to new
//!   or existing nodes".
//! * **Skolem discipline** — every Skolem symbol used in `link` or
//!   `collect` must appear in some `create` clause of the program, and a
//!   symbol must be used with one arity everywhere.
//! * **Groundedness of path sources** — a path cannot start at a constant
//!   (constants are atomic; only nodes have out-edges).

use crate::ast::*;
use crate::error::{StruqlError, StruqlResult};
use crate::token::Span;
use std::collections::{HashMap, HashSet};

/// Checks a program, returning the first violation found.
pub fn check(program: &Program) -> StruqlResult<()> {
    // Pass 1: collect created Skolem symbols and check arity consistency.
    let mut arities: HashMap<&str, (usize, Span)> = HashMap::new();
    let mut created: HashSet<&str> = HashSet::new();

    fn walk_skolems<'a>(
        t: &'a Term,
        span: Span,
        arities: &mut HashMap<&'a str, (usize, Span)>,
    ) -> StruqlResult<()> {
        if let Term::Skolem { symbol, args } = t {
            match arities.get(symbol.as_str()) {
                Some((n, first)) if *n != args.len() => {
                    return Err(StruqlError::analyze(
                        span,
                        format!(
                            "Skolem symbol '{symbol}' used with arity {} here but arity {n} at {first}",
                            args.len()
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    arities.insert(symbol, (args.len(), span));
                }
            }
            for a in args {
                walk_skolems(a, span, arities)?;
            }
        }
        Ok(())
    }

    for block in program.blocks_preorder() {
        for t in &block.create {
            walk_skolems(t, block.span, &mut arities)?;
            if let Term::Skolem { symbol, .. } = t {
                created.insert(symbol);
            }
        }
        for l in &block.link {
            walk_skolems(&l.src, l.span, &mut arities)?;
            walk_skolems(&l.dst, l.span, &mut arities)?;
        }
        for c in &block.collect {
            walk_skolems(&c.arg, c.span, &mut arities)?;
        }
    }

    // Pass 2: per-block scoping and structural rules.
    let scope = HashSet::new();
    for block in &program.blocks {
        check_block(block, &scope, &created)?;
    }
    Ok(())
}

fn check_block(
    block: &Block,
    parent_scope: &HashSet<String>,
    created: &HashSet<&str>,
) -> StruqlResult<()> {
    // Positive atoms of this where clause bind variables.
    let mut scope = parent_scope.clone();
    for cond in &block.where_ {
        bind_positive(cond, &mut scope);
    }

    // Filters must be fully bound.
    for cond in &block.where_ {
        check_condition(cond, &scope)?;
    }

    // Construction terms must be bound; link sources must be Skolem terms
    // whose symbols are created somewhere.
    for t in &block.create {
        check_construct_term(t, &scope, block.span)?;
    }
    for l in &block.link {
        match &l.src {
            Term::Skolem { symbol, .. } => {
                if !created.contains(symbol.as_str()) {
                    return Err(StruqlError::analyze(
                        l.span,
                        format!("link source '{symbol}(…)' never appears in a create clause"),
                    ));
                }
            }
            _ => {
                return Err(StruqlError::analyze(
                    l.span,
                    "link source must be a Skolem term: existing nodes are immutable",
                ));
            }
        }
        check_construct_term(&l.src, &scope, l.span)?;
        check_construct_term(&l.dst, &scope, l.span)?;
        if let Term::Skolem { symbol, .. } = &l.dst {
            if !created.contains(symbol.as_str()) {
                return Err(StruqlError::analyze(
                    l.span,
                    format!("link target '{symbol}(…)' never appears in a create clause"),
                ));
            }
        }
        if let LabelTerm::Var(v) = &l.label {
            if !scope.contains(v) {
                return Err(StruqlError::analyze(
                    l.span,
                    format!("arc variable '{v}' in link label is not bound in any where clause"),
                ));
            }
        }
    }
    for c in &block.collect {
        check_construct_term(&c.arg, &scope, c.span)?;
        if let Term::Skolem { symbol, .. } = &c.arg {
            if !created.contains(symbol.as_str()) {
                return Err(StruqlError::analyze(
                    c.span,
                    format!("collected term '{symbol}(…)' never appears in a create clause"),
                ));
            }
        }
    }

    // Nested blocks see this block's bindings.
    for nested in &block.nested {
        check_block(nested, &scope, created)?;
    }
    Ok(())
}

/// Adds variables bound by positive atoms to `scope`.
fn bind_positive(cond: &Condition, scope: &mut HashSet<String>) {
    match cond {
        Condition::Collection { arg, .. } => {
            if let Term::Var(v) = arg {
                scope.insert(v.clone());
            }
        }
        Condition::Path { src, path, dst, .. } => {
            if let Term::Var(v) = src {
                scope.insert(v.clone());
            }
            if let Term::Var(v) = dst {
                scope.insert(v.clone());
            }
            if let PathSpec::ArcVar(l) = path {
                scope.insert(l.clone());
            }
        }
        // Filters bind nothing.
        Condition::Compare { .. } | Condition::Builtin { .. } | Condition::Not(..) => {}
    }
}

fn check_condition(cond: &Condition, scope: &HashSet<String>) -> StruqlResult<()> {
    match cond {
        Condition::Collection { .. } => Ok(()),
        Condition::Path { src, span, .. } => {
            if matches!(src, Term::Const(_)) {
                return Err(StruqlError::analyze(
                    *span,
                    "a path cannot start at a constant: only nodes have out-edges",
                ));
            }
            Ok(())
        }
        Condition::Compare { lhs, rhs, span, .. } => {
            require_bound(lhs, scope, *span, "comparison")?;
            require_bound(rhs, scope, *span, "comparison")
        }
        Condition::Builtin { arg, span, pred } => {
            require_bound(arg, scope, *span, pred.name())
        }
        Condition::Not(inner, span) => {
            // Negation as failure. Variables inside a negated *positive*
            // atom (collection or path) that are not bound outside act as
            // local existentials: `not(x -> "month" -> m)` means "x has no
            // month edge". Negated filters cannot generate bindings, so
            // their variables must be bound outside.
            match inner.as_ref() {
                Condition::Collection { .. } | Condition::Path { .. } => {
                    check_condition(inner, scope)
                }
                _ => {
                    let mut inner_vars = Vec::new();
                    condition_vars(inner, &mut inner_vars);
                    for v in inner_vars {
                        if !scope.contains(v) {
                            return Err(StruqlError::analyze(
                                *span,
                                format!(
                                    "variable '{v}' inside not(…) is not bound by a positive condition"
                                ),
                            ));
                        }
                    }
                    check_condition(inner, scope)
                }
            }
        }
    }
}

fn condition_vars<'a>(cond: &'a Condition, out: &mut Vec<&'a str>) {
    match cond {
        Condition::Collection { arg, .. } => arg.vars_str(out),
        Condition::Path { src, path, dst, .. } => {
            src.vars_str(out);
            dst.vars_str(out);
            if let PathSpec::ArcVar(l) = path {
                out.push(l);
            }
        }
        Condition::Compare { lhs, rhs, .. } => {
            lhs.vars_str(out);
            rhs.vars_str(out);
        }
        Condition::Builtin { arg, .. } => arg.vars_str(out),
        Condition::Not(inner, _) => condition_vars(inner, out),
    }
}

impl Term {
    fn vars_str<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Term::Var(v) => out.push(v),
            Term::Const(_) => {}
            Term::Skolem { args, .. } => {
                for a in args {
                    a.vars_str(out);
                }
            }
        }
    }
}

fn require_bound(
    term: &Term,
    scope: &HashSet<String>,
    span: Span,
    context: &str,
) -> StruqlResult<()> {
    let mut vars = Vec::new();
    term.vars_str(&mut vars);
    for v in vars {
        if !scope.contains(v) {
            return Err(StruqlError::analyze(
                span,
                format!("variable '{v}' in {context} is not bound by a positive condition"),
            ));
        }
    }
    Ok(())
}

fn check_construct_term(
    term: &Term,
    scope: &HashSet<String>,
    span: Span,
) -> StruqlResult<()> {
    match term {
        Term::Var(v) => {
            if !scope.contains(v) {
                return Err(StruqlError::analyze(
                    span,
                    format!("variable '{v}' used in construction is not bound in any where clause"),
                ));
            }
            Ok(())
        }
        Term::Const(_) => Ok(()),
        Term::Skolem { args, .. } => {
            for a in args {
                check_construct_term(a, scope, span)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_unchecked;

    fn check_src(src: &str) -> Result<(), String> {
        let prog = parse_unchecked(src).map_err(|e| format!("parse: {e}"))?;
        super::check(&prog).map_err(|e| e.to_string())
    }

    #[test]
    fn valid_textonly_passes() {
        check_src(
            r#"
            where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
            create New(p), New(q), New(r)
            link   New(q) -> l -> New(r)
            collect TextOnlyRoot(New(p))
        "#,
        )
        .unwrap();
    }

    #[test]
    fn unbound_var_in_create_is_rejected() {
        let err = check_src("where C(x) create P(y)").unwrap_err();
        assert!(err.contains("'y'"), "{err}");
    }

    #[test]
    fn unbound_var_in_comparison_is_rejected() {
        let err = check_src("where C(x), y = 1 create P(x)").unwrap_err();
        assert!(err.contains("'y'"), "{err}");
    }

    #[test]
    fn binding_is_order_independent() {
        // y is bound by a later positive atom: legal, STRUQL is declarative.
        check_src(r#"where y >= 1997, C(x), x -> "year" -> y create P(x)"#).unwrap();
    }

    #[test]
    fn link_from_variable_is_rejected() {
        let err = check_src("where C(x) create P(x) link x -> \"a\" -> P(x)").unwrap_err();
        assert!(err.contains("immutable"), "{err}");
    }

    #[test]
    fn link_source_must_be_created() {
        let err = check_src("where C(x) create P(x) link Q(x) -> \"a\" -> P(x)").unwrap_err();
        assert!(err.contains("never appears in a create"), "{err}");
    }

    #[test]
    fn link_target_skolem_must_be_created() {
        let err = check_src("where C(x) create P(x) link P(x) -> \"a\" -> R(x)").unwrap_err();
        assert!(err.contains("'R(…)'"), "{err}");
    }

    #[test]
    fn created_in_sibling_block_is_visible() {
        check_src(
            r#"
            create RootPage()
            where C(x) create P(x) link RootPage() -> "p" -> P(x)
        "#,
        )
        .unwrap();
    }

    #[test]
    fn arc_var_in_link_must_be_bound() {
        let err = check_src("where C(x) create P(x) link P(x) -> l -> x").unwrap_err();
        assert!(err.contains("arc variable 'l'"), "{err}");
    }

    #[test]
    fn skolem_arity_must_be_consistent() {
        let err = check_src("where C(x) create P(x) link P(x) -> \"a\" -> P(x, x)").unwrap_err();
        assert!(err.contains("arity"), "{err}");
    }

    #[test]
    fn unbound_var_in_not_is_rejected() {
        let err = check_src("where C(x), not(isImageFile(z)) create P(x)").unwrap_err();
        assert!(err.contains("'z'"), "{err}");
    }

    #[test]
    fn path_from_constant_is_rejected() {
        let err = check_src(r#"where "lit" -> "a" -> y create P(y)"#).unwrap_err();
        assert!(err.contains("constant"), "{err}");
    }

    #[test]
    fn nested_blocks_inherit_scope() {
        check_src(
            r#"
            where C(x)
            create P(x)
            { where x -> "year" -> y
              create Y(y)
              link Y(y) -> "paper" -> P(x) }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn nested_binding_does_not_leak_to_siblings() {
        let err = check_src(
            r#"
            where C(x)
            create P(x)
            { where x -> "year" -> y create Y(y) }
            { create Z(y) }
        "#,
        )
        .unwrap_err();
        assert!(err.contains("'y'"), "{err}");
    }

    #[test]
    fn collected_skolem_must_be_created() {
        let err = check_src("where C(x) create P(x) collect Out(Q(x))").unwrap_err();
        assert!(err.contains("'Q(…)'"), "{err}");
    }

    #[test]
    fn not_over_bound_path_is_allowed() {
        check_src(r#"where C(x), C(y), not(x -> "cites" -> y) create P(x)"#).unwrap();
    }
}
