//! Property-based tests for STRUQL: printer/parser round trips over
//! generated ASTs, and NFA path evaluation checked against a brute-force
//! reference matcher. Cases are generated from a deterministic seeded
//! PRNG so every failure is reproducible from its seed.

use strudel_graph::{Graph, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_struql::rpe::Nfa;
use strudel_struql::{
    parse_path_regex, pretty, Block, CollectExpr, Condition, LinkExpr, PathRegex, PathSpec,
    Program, Span, Term,
};

// ---------- generated regexes vs a reference matcher -----------------------

/// A random path regex over labels {a, b, c}, bounded depth.
fn arb_regex(rng: &mut SmallRng, depth: usize) -> PathRegex {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        if rng.gen_bool(0.75) {
            let l = ["a", "b", "c"][rng.gen_range(0..3usize)];
            PathRegex::Label(l.to_string())
        } else {
            PathRegex::Any
        }
    } else {
        match rng.gen_range(0..5) {
            0 => PathRegex::Seq(
                Box::new(arb_regex(rng, depth - 1)),
                Box::new(arb_regex(rng, depth - 1)),
            ),
            1 => PathRegex::Alt(
                Box::new(arb_regex(rng, depth - 1)),
                Box::new(arb_regex(rng, depth - 1)),
            ),
            2 => PathRegex::Star(Box::new(arb_regex(rng, depth - 1))),
            3 => PathRegex::Plus(Box::new(arb_regex(rng, depth - 1))),
            _ => PathRegex::Opt(Box::new(arb_regex(rng, depth - 1))),
        }
    }
}

/// A small random graph over labels {a, b, c}.
fn arb_graph(rng: &mut SmallRng) -> Graph {
    let nodes = rng.gen_range(2..7usize);
    let mut g = Graph::new();
    let oids: Vec<_> = (0..nodes).map(|_| g.add_node()).collect();
    for _ in 0..rng.gen_range(0..15usize) {
        let from = rng.gen_range(0..6usize);
        let to = rng.gen_range(0..6usize);
        if from < nodes && to < nodes {
            let l = ["a", "b", "c"][rng.gen_range(0..3usize)];
            g.add_edge_str(oids[from], l, Value::Node(oids[to]));
        }
    }
    g
}

/// Reference: does `regex` match the label word `word`? Classical
/// recursive matcher over label sequences.
fn matches_word(regex: &PathRegex, word: &[&str]) -> bool {
    match regex {
        PathRegex::Label(l) => word.len() == 1 && word[0] == l,
        PathRegex::Any => word.len() == 1,
        PathRegex::Seq(a, b) => {
            (0..=word.len()).any(|i| matches_word(a, &word[..i]) && matches_word(b, &word[i..]))
        }
        PathRegex::Alt(a, b) => matches_word(a, word) || matches_word(b, word),
        PathRegex::Star(inner) => {
            word.is_empty()
                || (1..=word.len())
                    .any(|i| matches_word(inner, &word[..i]) && matches_word(regex, &word[i..]))
        }
        PathRegex::Plus(inner) => (1..=word.len()).any(|i| {
            matches_word(inner, &word[..i]) && {
                let rest = &word[i..];
                rest.is_empty() || matches_word(&PathRegex::Plus(inner.clone()), rest)
            }
        }),
        PathRegex::Opt(inner) => word.is_empty() || matches_word(inner, word),
    }
}

/// Reference: all values reachable from `start` by a matching path, via
/// bounded path enumeration (paths up to length 6, enough for the small
/// graphs above; the NFA must agree on this bounded set when the NFA
/// result is restricted the same way).
fn reference_reachable(g: &Graph, regex: &PathRegex, start: strudel_graph::Oid) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    // Enumerate all label paths up to length 6.
    let mut stack: Vec<(Value, Vec<&str>)> = vec![(Value::Node(start), vec![])];
    let mut seen_paths = 0usize;
    while let Some((v, word)) = stack.pop() {
        seen_paths += 1;
        if seen_paths > 200_000 {
            break; // safety valve; graphs are tiny so this never triggers
        }
        if matches_word(regex, &word) && !out.contains(&v) {
            out.push(v.clone());
        }
        if word.len() >= 6 {
            continue;
        }
        if let Value::Node(o) = v {
            for e in g.edges(o) {
                let mut w = word.clone();
                w.push(match g.label_name(e.label) {
                    "a" => "a",
                    "b" => "b",
                    _ => "c",
                });
                stack.push((e.to.clone(), w));
            }
        }
    }
    out
}

/// Wraps a path regex in the one-condition skeleton used for round trips.
fn skeleton(regex: PathRegex) -> Program {
    Program {
        blocks: vec![Block {
            where_: vec![Condition::Path {
                src: Term::Var("x".into()),
                path: PathSpec::Regex(regex),
                dst: Term::Var("y".into()),
                span: Span::default(),
            }],
            create: vec![Term::Skolem {
                symbol: "P".into(),
                args: vec![Term::Var("x".into())],
            }],
            link: vec![],
            collect: vec![],
            nested: vec![],
            span: Span::default(),
        }],
    }
}

/// The Thompson NFA agrees with the brute-force matcher on every
/// reachable value (for acyclic-bounded words: we compare only
/// values the reference can see within its path bound; every one of
/// them must be in the NFA result).
#[test]
fn nfa_agrees_with_reference() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let regex = arb_regex(&mut rng, 3);
        let g = arb_graph(&mut rng);
        let nfa = Nfa::compile(&regex, &g);
        let start = strudel_graph::Oid::from_index(0);
        let nfa_result = nfa.eval_from(&g, &Value::Node(start));
        let reference = reference_reachable(&g, &regex, start);
        // Reference ⊆ NFA (the NFA has no length bound).
        for v in &reference {
            assert!(
                nfa_result.contains(v),
                "seed {seed}: reference found {v:?} but the NFA missed it"
            );
        }
    }
}

/// Printer/parser round trip over generated path regexes.
#[test]
fn regex_pretty_parse_round_trip() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let program = skeleton(arb_regex(&mut rng, 3));
        let text = pretty(&program);
        let reparsed = strudel_struql::parse(&text).unwrap();
        assert_eq!(pretty(&reparsed), text, "seed {seed}");
    }
}

/// Standalone path-regex parsing round-trips through the printer too.
#[test]
fn standalone_regex_round_trip() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(200 + seed);
        // Render via a throwaway program, extract the regex text between
        // the arrows, and reparse it with parse_path_regex.
        let text = pretty(&skeleton(arb_regex(&mut rng, 3)));
        let start = text.find("-> ").unwrap() + 3;
        let end = text.rfind(" -> y").unwrap();
        let regex_text = &text[start..end];
        let reparsed = parse_path_regex(regex_text).unwrap();
        // Compare by re-printing inside the same skeleton.
        assert_eq!(pretty(&skeleton(reparsed)), text, "seed {seed}");
    }
}

/// Full-program round trip: builder-shaped random programs survive
/// pretty → parse → pretty.
#[test]
fn program_round_trip() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(300 + seed);
        let n_blocks = rng.gen_range(1..4usize);
        let links_per_block = rng.gen_range(1..4usize);
        let mut blocks = Vec::new();
        for b in 0..n_blocks {
            let var = format!("x{b}");
            let sym = format!("Page{b}");
            let links = (0..links_per_block)
                .map(|i| LinkExpr {
                    src: Term::Skolem {
                        symbol: sym.clone(),
                        args: vec![Term::Var(var.clone())],
                    },
                    label: strudel_struql::LabelTerm::Const(format!("l{i}")),
                    dst: Term::Var(var.clone()),
                    span: Span::default(),
                })
                .collect();
            blocks.push(Block {
                where_: vec![Condition::Collection {
                    name: format!("C{b}"),
                    arg: Term::Var(var.clone()),
                    span: Span::default(),
                }],
                create: vec![Term::Skolem {
                    symbol: sym.clone(),
                    args: vec![Term::Var(var.clone())],
                }],
                link: links,
                collect: vec![CollectExpr {
                    collection: format!("Out{b}"),
                    arg: Term::Skolem {
                        symbol: sym,
                        args: vec![Term::Var(var)],
                    },
                    span: Span::default(),
                }],
                nested: vec![],
                span: Span::default(),
            });
        }
        let program = Program { blocks };
        let text = pretty(&program);
        let reparsed = strudel_struql::parse(&text).unwrap();
        assert_eq!(pretty(&reparsed), text, "seed {seed}");
        assert_eq!(
            reparsed.link_clause_count(),
            program.link_clause_count(),
            "seed {seed}"
        );
    }
}

/// The parser never panics on arbitrary input — it returns a
/// positioned error or a program.
#[test]
fn parser_total_on_arbitrary_text() {
    let mut alphabet: Vec<char> = (' '..='~').collect();
    alphabet.extend(['\n', '\t', 'é', 'λ', '→', '\u{1F600}', '"', '\\']);
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(400 + seed);
        let len = rng.gen_range(0..200usize);
        let s: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        let _ = strudel_struql::parse(&s);
    }
}

/// Nor on inputs assembled from the language's own token vocabulary
/// (much likelier to reach deep parser states than raw noise).
#[test]
fn parser_total_on_token_soup() {
    const TOKENS: [&str; 31] = [
        "where", "create", "link", "collect", "not", "true", "false", "->", "(", ")", "{", "}",
        ",", "*", "+", "?", "|", ".", "=", "!=", "<", "<=", ">", ">=", "x", "y", "P", "Coll",
        "\"label\"", "42", "3.5",
    ];
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(700 + seed);
        let n = rng.gen_range(0..40usize);
        let s = (0..n)
            .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = strudel_struql::parse(&s);
    }
}
