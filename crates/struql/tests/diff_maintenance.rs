//! Seeded randomized testing of differential plan maintenance.
//!
//! The property: for a random where-clause over a random corpus, holding
//! the clause's bindings relation as count-annotated rows and applying
//! the signed diff produced by `diff_where` for a random mixed
//! insert/retract delta must yield exactly the relation a from-scratch
//! evaluation computes on the post-delta database — same rows, same
//! multiplicities. Clauses include Kleene closures (so retractions must
//! cancel paths exactly), negation (so the diff must handle
//! non-monotonicity), arc variables, and comparisons; deltas mix edge
//! inserts, edge retractions, membership changes, and brand-new nodes.
//! Everything reproduces from its seed.

use std::collections::{HashMap, HashSet};

use strudel_graph::{Graph, GraphDelta, Oid, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::{Database, IndexLevel};
use strudel_struql::{apply_diff, diff_where, Condition, DeltaTouch, Evaluator, SignedRow};

/// A random corpus: `n` nodes in collection `Items`, each with a `cat`
/// string, a `val` int, and 0–2 `link` edges to earlier nodes (so Kleene
/// cones are acyclic and bounded); a `next` chain threads every node.
fn corpus(rng: &mut SmallRng, n: usize) -> Graph {
    let mut g = Graph::new();
    let cats = ["catA", "catB", "catC", "catD"];
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = g.add_named_node(&format!("item{i}"));
        g.collect_str("Items", node);
        g.add_edge_str(
            node,
            "cat",
            Value::string(cats[rng.gen_range(0..cats.len())]),
        );
        g.add_edge_str(node, "val", Value::Int(rng.gen_range(0..100i64)));
        if i > 0 {
            g.add_edge_str(nodes[i - 1], "next", Value::Node(node));
            for _ in 0..rng.gen_range(0..=2usize) {
                let back = rng.gen_range(0..i);
                g.add_edge_str(node, "link", Value::Node(nodes[back]));
            }
        }
        nodes.push(node);
    }
    g
}

/// One random where-clause as STRUQL text (see `differential.rs`); at
/// most one general-regex expansion keeps relation sizes testable.
fn random_clause(rng: &mut SmallRng) -> String {
    let mut conds = vec!["Items(x0)".to_string()];
    let mut node_vars = 1usize;
    let mut fresh = 1usize;
    let mut regexes = 0usize;
    let extra = rng.gen_range(2..=4usize);
    for _ in 0..extra {
        let xi = rng.gen_range(0..node_vars);
        match rng.gen_range(0..8u32) {
            0 => {
                conds.push(format!("x{xi} -> \"link\" -> x{node_vars}"));
                node_vars += 1;
            }
            1 => {
                conds.push(format!("x{xi} -> \"next\" -> x{node_vars}"));
                node_vars += 1;
            }
            2 => {
                conds.push(format!("x{xi} -> l{fresh} -> y{fresh}"));
                fresh += 1;
            }
            3 if regexes == 0 => {
                conds.push(format!("x{xi} -> \"link\"* -> x{node_vars}"));
                node_vars += 1;
                regexes += 1;
            }
            4 if regexes == 0 => {
                conds.push(format!("x{xi} -> \"next\" . \"link\"? -> x{node_vars}"));
                node_vars += 1;
                regexes += 1;
            }
            5 => {
                let k = rng.gen_range(20..80i64);
                conds.push(format!("x{xi} -> \"val\" -> v{fresh}, v{fresh} >= {k}"));
                fresh += 1;
            }
            6 => {
                let cats = ["catA", "catB", "catC", "catD"];
                let c = cats[rng.gen_range(0..cats.len())];
                conds.push(format!("x{xi} -> \"cat\" -> \"{c}\""));
            }
            _ => {
                let inner = if rng.gen_bool(0.5) {
                    format!("x{xi} -> \"link\"* -> x{xi}")
                } else {
                    format!("x{xi} -> \"link\" -> z{fresh}")
                };
                fresh += 1;
                conds.push(format!("not({inner})"));
            }
        }
    }
    format!("where {} create P(x0)", conds.join(", "))
}

/// A random, always-applicable mixed delta over the current graph:
/// new nodes with edges and membership, new `link`/`cat`/`val` edges on
/// existing nodes, retractions of existing edges (including `link` edges
/// feeding Kleene closures), and membership removals.
fn random_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let mut next_oid = g.node_count();
    let mut removed: HashSet<(Oid, String, String)> = HashSet::new();
    let mut uncollected: HashSet<String> = HashSet::new();
    for _ in 0..rng.gen_range(1..=4usize) {
        match rng.gen_range(0..5u32) {
            0 => {
                // A brand-new item linked into the graph.
                let oid = Oid::from_index(next_oid);
                next_oid += 1;
                delta.add_node(None);
                delta.add_edge(oid, "cat", Value::string("catA"));
                delta.add_edge(oid, "val", Value::Int(rng.gen_range(0..100i64)));
                let back = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(oid, "link", Value::Node(back));
                delta.collect("Items", Value::Node(oid));
            }
            1 => {
                // A new link edge between existing nodes.
                let from = Oid::from_index(rng.gen_range(0..g.node_count()));
                let to = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(from, "link", Value::Node(to));
            }
            2 => {
                // A new attribute value on an existing node.
                let oid = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(oid, "val", Value::Int(rng.gen_range(0..100i64)));
            }
            3 => {
                // Retract one existing edge (each at most once per delta).
                let mut candidates = Vec::new();
                for idx in 0..g.node_count() {
                    let oid = Oid::from_index(idx);
                    for e in g.edges(oid) {
                        candidates.push((oid, g.label_name(e.label).to_string(), e.to.clone()));
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (oid, label, to) = strudel_prng::choose(rng, &candidates).clone();
                if removed.insert((oid, label.clone(), format!("{to:?}"))) {
                    delta.remove_edge(oid, &label, to);
                }
            }
            _ => {
                // Drop one item from the collection.
                let members = g.members_str("Items");
                if members.is_empty() {
                    continue;
                }
                let member = strudel_prng::choose(rng, members).clone();
                if uncollected.insert(format!("{member:?}")) {
                    delta.uncollect("Items", member);
                }
            }
        }
    }
    delta
}

/// Coalesces plain rows into count-annotated form.
fn count_rows(rows: &[Vec<Option<Value>>]) -> Vec<SignedRow> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut out: Vec<SignedRow> = Vec::new();
    for row in rows {
        let key = format!("{row:?}");
        match index.get(&key) {
            Some(&i) => out[i].1 += 1,
            None => {
                index.insert(key, out.len());
                out.push((row.clone(), 1));
            }
        }
    }
    out
}

/// A multiset fingerprint: sorted `row → count` lines.
fn fingerprint(rows: &[SignedRow]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|(r, n)| format!("{r:?} x{n}")).collect();
    keys.sort_unstable();
    keys
}

fn full_eval(
    db: &Database,
    conds: &[Condition],
    seed: &[(String, Value)],
) -> Vec<Vec<Option<Value>>> {
    let (_, rows) = Evaluator::new(db).eval_where_bindings(conds, seed).unwrap();
    rows
}

/// Drives one (clause, seed, rounds) maintenance chain: stored rows are
/// carried across every round, diffed, and compared to a from-scratch
/// evaluation on the post-delta database.
fn run_chain(seed: u64, seeded: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut graph = corpus(&mut rng, 60);

    for case in 0..4 {
        let text = random_clause(&mut rng);
        let program =
            strudel_struql::parse(&text).unwrap_or_else(|e| panic!("case {case}: {text}\n{e}"));
        let conds = &program.blocks[0].where_;
        let eval_seed: Vec<(String, Value)> = if seeded {
            // Bind x0 to one item, click-time style.
            let item = rng.gen_range(0..graph.node_count().min(60));
            let node = graph.node_by_name(&format!("item{item}")).unwrap();
            vec![("x0".to_string(), Value::Node(node))]
        } else {
            Vec::new()
        };

        let mut g = graph.clone();
        let mut old_db = Database::from_graph(g.clone(), IndexLevel::Full);
        let mut stored = count_rows(&full_eval(&old_db, conds, &eval_seed));

        for round in 0..6 {
            let delta = random_delta(&mut rng, &g);
            delta.apply(&mut g).expect("generated deltas always apply");
            let new_db = Database::from_graph(g.clone(), IndexLevel::Full);

            let touch = DeltaTouch::of(&delta);
            let old_ev = Evaluator::new(&old_db);
            let new_ev = Evaluator::new(&new_db);
            let out = diff_where(&old_ev, &new_ev, conds, &eval_seed, &touch)
                .unwrap_or_else(|e| panic!("seed {seed} case {case} round {round}: {e}"));
            assert!(
                apply_diff(&mut stored, &out.rows),
                "seed {seed} case {case} round {round}: count underflow\n\
                 clause: {text}\ndelta: {:?}",
                delta.ops()
            );

            let fresh = count_rows(&full_eval(&new_db, conds, &eval_seed));
            assert_eq!(
                fingerprint(&stored),
                fingerprint(&fresh),
                "seed {seed} case {case} round {round}: maintained relation \
                 diverged from scratch\nclause: {text}\ndelta: {:?}",
                delta.ops()
            );
            old_db = new_db;
        }
        // Next case starts from the graph as originally generated.
        graph = corpus(&mut rng, 60);
    }
}

#[test]
fn maintained_relations_match_from_scratch_unseeded() {
    for seed in 0..4u64 {
        run_chain(0x_d1ff_0000 + seed, false);
    }
}

#[test]
fn maintained_relations_match_from_scratch_seeded() {
    for seed in 0..4u64 {
        run_chain(0x_5eed_0000 + seed, true);
    }
}
