//! Seeded differential testing of the where-clause engine.
//!
//! Randomly generated where-clauses over randomly generated corpora must
//! produce the same bindings relation whatever the engine configuration:
//!
//! * **byte-identical** across worker counts and across batched vs
//!   per-row evaluation (`EvalOptions::batch` gates the old per-row path,
//!   which serves as the oracle) — the determinism contract of
//!   `strudel_struql::par` extended to the batched engine;
//! * **set-identical** across optimizer on/off and across index levels,
//!   which may legitimately reorder rows but never add or drop one.
//!
//! Every value in the corpus is chosen to avoid dynamic-coercion
//! collisions (no numeric-looking strings), so disagreements point at
//! engine bugs rather than coercion ambiguity.

use strudel_graph::{Graph, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::{Database, IndexLevel};
use strudel_struql::{Condition, EvalOptions, Evaluator, Parallelism};

/// A random corpus: `n` nodes in collection `Items`, each with a `cat`
/// string, a `val` int, and 0–2 `link` edges to earlier nodes (so Kleene
/// cones are acyclic and bounded); a `next` chain threads every node.
fn corpus(rng: &mut SmallRng, n: usize) -> Graph {
    let mut g = Graph::new();
    let cats = ["catA", "catB", "catC", "catD"];
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = g.add_named_node(&format!("item{i}"));
        g.collect_str("Items", node);
        g.add_edge_str(
            node,
            "cat",
            Value::string(cats[rng.gen_range(0..cats.len())]),
        );
        g.add_edge_str(node, "val", Value::Int(rng.gen_range(0..100i64)));
        if i > 0 {
            g.add_edge_str(nodes[i - 1], "next", Value::Node(node));
            for _ in 0..rng.gen_range(0..=2usize) {
                let back = rng.gen_range(0..i);
                g.add_edge_str(node, "link", Value::Node(nodes[back]));
            }
        }
        nodes.push(node);
    }
    g
}

/// One random where-clause as STRUQL text. `x0` ranges over `Items`; at
/// most one general-regex expansion keeps relation sizes testable.
fn random_clause(rng: &mut SmallRng) -> String {
    let mut conds = vec!["Items(x0)".to_string()];
    let mut node_vars = 1usize; // x0..x{node_vars-1} bound node variables
    let mut fresh = 1usize; // counter for all other fresh variable names
    let mut regexes = 0usize;
    let mut rev_probes = 0usize;
    let extra = rng.gen_range(2..=4usize);
    for _ in 0..extra {
        let xi = rng.gen_range(0..node_vars);
        match rng.gen_range(0..9u32) {
            // Forward single steps.
            0 => {
                conds.push(format!("x{xi} -> \"link\" -> x{node_vars}"));
                node_vars += 1;
            }
            1 => {
                conds.push(format!("x{xi} -> \"next\" -> x{node_vars}"));
                node_vars += 1;
            }
            // Arc variable.
            2 => {
                conds.push(format!("x{xi} -> l{fresh} -> y{fresh}"));
                fresh += 1;
            }
            // General regexes (forward, bound source).
            3 if regexes == 0 => {
                conds.push(format!("x{xi} -> \"link\"* -> x{node_vars}"));
                node_vars += 1;
                regexes += 1;
            }
            4 if regexes == 0 => {
                conds.push(format!(
                    "x{xi} -> \"next\" . \"link\"? -> x{node_vars}"
                ));
                node_vars += 1;
                regexes += 1;
            }
            // Unbound source, bound destination: the reverse probe.
            5 if rev_probes == 0 && regexes == 0 => {
                conds.push(format!("x{node_vars} -> \"link\"+ -> x{xi}"));
                node_vars += 1;
                rev_probes += 1;
                regexes += 1;
            }
            // Attribute + filter.
            6 => {
                let k = rng.gen_range(20..80i64);
                conds.push(format!("x{xi} -> \"val\" -> v{fresh}, v{fresh} >= {k}"));
                fresh += 1;
            }
            7 => {
                let cats = ["catA", "catB", "catC", "catD"];
                let c = cats[rng.gen_range(0..cats.len())];
                conds.push(format!("x{xi} -> \"cat\" -> \"{c}\""));
            }
            // Negation over a bound variable.
            _ => {
                let inner = if rng.gen_bool(0.5) {
                    format!("x{xi} -> \"link\"* -> x{xi}")
                } else {
                    format!("x{xi} -> \"link\" -> z{fresh}")
                };
                fresh += 1;
                conds.push(format!("not({inner})"));
            }
        }
    }
    format!("where {} create P(x0)", conds.join(", "))
}

fn eval(
    db: &Database,
    conds: &[Condition],
    optimize: bool,
    workers: usize,
    batch: bool,
) -> Vec<Vec<Option<Value>>> {
    let ev = Evaluator::with_options(
        db,
        EvalOptions {
            optimize,
            parallelism: Parallelism::Threads(workers),
            batch,
        },
    );
    let (_, rows) = ev.eval_where_bindings(conds, &[]).unwrap();
    rows
}

fn sorted_debug(rows: &[Vec<Option<Value>>]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    keys.sort_unstable();
    keys
}

#[test]
fn random_clauses_agree_across_engine_configurations() {
    let mut rng = SmallRng::seed_from_u64(0xd1ff);
    // 150 items: collection scans exceed the 2×64-row partitioning floor,
    // so workers=4 really does split the relation.
    let graph = corpus(&mut rng, 150);

    for case in 0..10 {
        let text = random_clause(&mut rng);
        let program = strudel_struql::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: {text}\n{e}"));
        let conds = &program.blocks[0].where_;

        let mut cross_config: Vec<(String, Vec<String>)> = Vec::new();
        for level in [IndexLevel::Full, IndexLevel::None] {
            let db = Database::from_graph(graph.clone(), level);
            for optimize in [true, false] {
                // The per-row sequential engine is the oracle.
                let oracle = eval(&db, conds, optimize, 1, false);
                for workers in [1usize, 4] {
                    for batch in [false, true] {
                        let got = eval(&db, conds, optimize, workers, batch);
                        assert_eq!(
                            got, oracle,
                            "case {case} diverged byte-for-byte \
                             (level={level:?} optimize={optimize} \
                             workers={workers} batch={batch}): {text}"
                        );
                    }
                }
                cross_config.push((
                    format!("level={level:?} optimize={optimize}"),
                    sorted_debug(&oracle),
                ));
            }
        }
        // Optimizer and index level may reorder rows, never change the set.
        let (first_cfg, first) = &cross_config[0];
        for (cfg, rows) in &cross_config[1..] {
            assert_eq!(
                rows, first,
                "case {case}: {cfg} disagrees with {first_cfg}: {text}"
            );
        }
    }
}

#[test]
fn seeded_evaluation_agrees_across_batching() {
    // Seeded (click-time style) evaluation: bind the destination variable
    // up front so reverse probes run under a seed, exactly as the dynamic
    // engine drives them.
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let graph = corpus(&mut rng, 150);
    let db = Database::from_graph(graph, IndexLevel::Full);
    let program = strudel_struql::parse(
        r#"where q -> "link"* -> p, q -> "cat" -> "catA" create P(q)"#,
    )
    .unwrap();
    let conds = &program.blocks[0].where_;
    let target = Value::Node(db.graph().node_by_name("item3").unwrap());
    let seed = vec![("p".to_string(), target)];

    let mut views = Vec::new();
    for batch in [false, true] {
        for workers in [1usize, 4] {
            let ev = Evaluator::with_options(
                &db,
                EvalOptions {
                    optimize: true,
                    parallelism: Parallelism::Threads(workers),
                    batch,
                },
            );
            let (vars, rows) = ev.eval_where_bindings(conds, &seed).unwrap();
            assert_eq!(vars[0], "p");
            views.push(rows);
        }
    }
    assert!(!views[0].is_empty(), "item3 has inbound link cones");
    for v in &views[1..] {
        assert_eq!(*v, views[0]);
    }
}
