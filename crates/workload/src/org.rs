//! A synthetic AT&T-Labs-shaped organization, as **five sources** in three
//! formats (the AT&T Research site "integrated five data sources", §6.1):
//!
//! 1. `people.csv` — relational: id, name, dept, room, phone, homepage
//!    (phone/room/homepage irregularly missing);
//! 2. `departments.csv` — relational: id, name, director (a people id);
//! 3. `projects.rec` — structured records: members, synopsis (sometimes
//!    omitted — the paper's exact example), sponsor (not all projects are
//!    sponsored — also the paper's example);
//! 4. `demos.rec` — structured records: demos linked to projects;
//! 5. legacy HTML pages — one hand-written-style page per department.
//!
//! A fraction of people are `internal-only` (proprietary visibility), the
//! hook for the internal/external site versions of §5.1.

use crate::text;
use strudel_prng::rngs::SmallRng;
use strudel_prng::{Rng, SeedableRng};
use std::fmt::Write;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct OrgConfig {
    /// Number of organization members (the paper's internal site served
    /// "approximately 400 users").
    pub people: usize,
    /// Number of departments.
    pub departments: usize,
    /// Number of projects.
    pub projects: usize,
    /// Number of demos.
    pub demos: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrgConfig {
    fn default() -> Self {
        OrgConfig {
            people: 400,
            departments: 8,
            projects: 40,
            demos: 20,
            seed: 42,
        }
    }
}

/// The five generated sources.
#[derive(Clone, Debug)]
pub struct OrgData {
    /// Source 1: people table (CSV).
    pub people_csv: String,
    /// Source 2: departments table (CSV).
    pub departments_csv: String,
    /// Source 3: project record file.
    pub projects_rec: String,
    /// Source 4: demo record file.
    pub demos_rec: String,
    /// Source 5: legacy department HTML pages as `(file name, html)`.
    pub legacy_html: Vec<(String, String)>,
    /// All people ids, in order.
    pub people_ids: Vec<String>,
    /// All department ids.
    pub department_ids: Vec<String>,
    /// All project ids.
    pub project_ids: Vec<String>,
}

/// Generates the organization.
pub fn generate(cfg: &OrgConfig) -> OrgData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let departments = cfg.departments.max(1);

    let department_ids: Vec<String> = (0..departments).map(|i| format!("dept{i}")).collect();

    // People.
    let mut people_csv =
        String::from("id,name,dept,room:string,phone,homepage:url,visibility\n");
    let mut people_ids = Vec::with_capacity(cfg.people);
    let mut people_names = Vec::with_capacity(cfg.people);
    for i in 0..cfg.people {
        let name = text::person_name(&mut rng);
        let id = text::login(&name, i);
        let dept = &department_ids[rng.gen_range(0..departments)];
        let room = if rng.gen_bool(0.9) {
            format!("B-{}", rng.gen_range(100..400))
        } else {
            String::new()
        };
        let phone = if rng.gen_bool(0.8) {
            format!("{}", rng.gen_range(5_550_000..5_559_999))
        } else {
            String::new()
        };
        let homepage = if rng.gen_bool(0.6) {
            format!("http://www.research.example.com/~{id}")
        } else {
            String::new()
        };
        let visibility = if rng.gen_bool(0.15) { "internal" } else { "public" };
        writeln!(
            people_csv,
            "{id},{name},{dept},{room},{phone},{homepage},{visibility}"
        )
        .unwrap();
        people_ids.push(id);
        people_names.push(name);
    }

    // Departments.
    let mut departments_csv = String::from("id,name,director\n");
    for d in &department_ids {
        let director = &people_ids[rng.gen_range(0..people_ids.len())];
        writeln!(
            departments_csv,
            "{d},{} Research,{director}",
            text::title(&mut rng, 1)
        )
        .unwrap();
    }

    // Projects.
    let mut projects_rec = String::from("# synthetic projects\n");
    let mut project_ids = Vec::with_capacity(cfg.projects);
    for i in 0..cfg.projects {
        let id = format!("proj{i}");
        writeln!(projects_rec, "id: {id}").unwrap();
        writeln!(projects_rec, "name: {}", text::title(&mut rng, 2)).unwrap();
        writeln!(
            projects_rec,
            "dept: {}",
            department_ids[rng.gen_range(0..departments)]
        )
        .unwrap();
        for _ in 0..rng.gen_range(1..6usize) {
            writeln!(
                projects_rec,
                "member: {}",
                people_ids[rng.gen_range(0..people_ids.len())]
            )
            .unwrap();
        }
        if rng.gen_bool(0.75) {
            // "some projects omitted the synopsis attribute" (§6.3)
            writeln!(projects_rec, "synopsis: {}", text::sentence(&mut rng, 12)).unwrap();
        }
        if rng.gen_bool(0.4) {
            // "not all projects in AT&T are sponsored" (§6.3)
            writeln!(projects_rec, "sponsor: {} Fund", text::title(&mut rng, 1)).unwrap();
        }
        projects_rec.push('\n');
        project_ids.push(id);
    }

    // Demos.
    let mut demos_rec = String::from("# synthetic demos\n");
    for i in 0..cfg.demos {
        writeln!(demos_rec, "id: demo{i}").unwrap();
        writeln!(demos_rec, "name: {} Demo", text::title(&mut rng, 2)).unwrap();
        if !project_ids.is_empty() {
            writeln!(
                demos_rec,
                "project: {}",
                project_ids[rng.gen_range(0..project_ids.len())]
            )
            .unwrap();
        }
        writeln!(demos_rec, "url: http://demos.example.com/demo{i}").unwrap();
        demos_rec.push('\n');
    }

    // Legacy HTML, one page per department.
    let legacy_html: Vec<(String, String)> = department_ids
        .iter()
        .map(|d| {
            let mut html = String::new();
            writeln!(html, "<html><head><title>About {d}</title>").unwrap();
            writeln!(html, "<meta name=\"dept\" content=\"{d}\"></head><body>").unwrap();
            writeln!(html, "<h1>About {d}</h1>").unwrap();
            for _ in 0..3 {
                writeln!(html, "<p>{}</p>", text::sentence(&mut rng, 18)).unwrap();
            }
            writeln!(html, "</body></html>").unwrap();
            (format!("about_{d}.html"), html)
        })
        .collect();

    OrgData {
        people_csv,
        departments_csv,
        projects_rec,
        demos_rec,
        legacy_html,
        people_ids,
        department_ids,
        project_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_default() {
        let d = generate(&OrgConfig::default());
        assert_eq!(d.people_ids.len(), 400);
        assert_eq!(d.department_ids.len(), 8);
        assert_eq!(d.legacy_html.len(), 8);
        // Header + 400 rows.
        assert_eq!(d.people_csv.lines().count(), 401);
    }

    #[test]
    fn deterministic() {
        let cfg = OrgConfig {
            people: 30,
            seed: 9,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.people_csv, b.people_csv);
        assert_eq!(a.projects_rec, b.projects_rec);
    }

    #[test]
    fn irregular_fields_occur() {
        let d = generate(&OrgConfig::default());
        // Some rows have an empty phone cell (two adjacent commas).
        assert!(d.people_csv.lines().skip(1).any(|l| l.contains(",,")));
        // Some projects have no synopsis.
        let blocks: Vec<&str> = d.projects_rec.split("\n\n").collect();
        assert!(blocks.iter().any(|b| !b.contains("synopsis:") && b.contains("id:")));
        assert!(blocks.iter().any(|b| b.contains("sponsor:")));
        assert!(blocks.iter().any(|b| !b.contains("sponsor:") && b.contains("id:")));
    }

    #[test]
    fn internal_visibility_fraction() {
        let d = generate(&OrgConfig::default());
        let internal = d
            .people_csv
            .lines()
            .filter(|l| l.ends_with(",internal"))
            .count();
        assert!(internal > 20 && internal < 120, "internal = {internal}");
    }
}
