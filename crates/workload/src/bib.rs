//! Synthetic BibTeX bibliographies.
//!
//! Shaped like the Fig. 2 data: irregular entries where `month`,
//! `abstract`, `postscript`, and `url` may be missing, `booktitle` and
//! `journal` are mutually exclusive per entry kind, and authors come in
//! ordered lists of 1–4.

use crate::text;
use strudel_prng::rngs::SmallRng;
use strudel_prng::{Rng, SeedableRng};
use std::fmt::Write;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct BibConfig {
    /// Number of entries.
    pub entries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Distinct publication categories.
    pub categories: usize,
    /// Year range (inclusive).
    pub years: (i64, i64),
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            entries: 40,
            seed: 1998,
            categories: 5,
            years: (1993, 1998),
        }
    }
}

const MONTHS: &[&str] = &[
    "January", "February", "March", "April", "May", "June", "July", "August", "September",
    "October", "November", "December",
];

/// Generates a BibTeX document.
pub fn generate(cfg: &BibConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(cfg.entries * 320);
    out.push_str("% synthetic bibliography (strudel-workload)\n");
    out.push_str("@string{sigmod = \"SIGMOD Conference\"}\n");
    out.push_str("@string{vldb = \"VLDB Conference\"}\n\n");

    let categories: Vec<String> = (0..cfg.categories.max(1))
        .map(|_| text::word(&mut rng).to_owned())
        .collect();

    for i in 0..cfg.entries {
        let key = format!("pub{i}");
        let kind = match rng.gen_range(0..10) {
            0..=5 => "inproceedings",
            6..=8 => "article",
            _ => "techreport",
        };
        writeln!(out, "@{kind}{{{key},").unwrap();
        let title_len = rng.gen_range(3..9);
        writeln!(out, "  title = {{{}}},", text::title(&mut rng, title_len)).unwrap();
        let author_count = rng.gen_range(1..=4usize);
        let authors: Vec<String> = (0..author_count)
            .map(|_| text::person_name(&mut rng))
            .collect();
        writeln!(out, "  author = {{{}}},", authors.join(" and ")).unwrap();
        let year = rng.gen_range(cfg.years.0..=cfg.years.1);
        writeln!(out, "  year = {year},").unwrap();
        match kind {
            "inproceedings" => {
                let venue = if rng.gen_bool(0.5) { "sigmod" } else { "vldb" };
                writeln!(out, "  booktitle = {venue},").unwrap();
            }
            "article" => {
                writeln!(out, "  journal = {{{} Journal}},", text::title(&mut rng, 2)).unwrap();
            }
            _ => {
                writeln!(out, "  institution = {{AT\\&T Labs}},").unwrap();
            }
        }
        if rng.gen_bool(0.5) {
            writeln!(out, "  month = {{{}}},", MONTHS[rng.gen_range(0..12usize)]).unwrap();
        }
        if rng.gen_bool(0.7) {
            writeln!(out, "  abstract = {{abstracts/{key}.txt}},").unwrap();
        }
        if rng.gen_bool(0.5) {
            writeln!(out, "  postscript = {{papers/{key}.ps}},").unwrap();
        }
        if rng.gen_bool(0.3) {
            writeln!(out, "  url = {{http://www.research.att.com/papers/{key}}},").unwrap();
        }
        writeln!(
            out,
            "  category = {{{}}}",
            categories[rng.gen_range(0..categories.len())]
        )
        .unwrap();
        out.push_str("}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_entry_count() {
        let cfg = BibConfig {
            entries: 25,
            ..Default::default()
        };
        let src = generate(&cfg);
        assert_eq!(src.matches("@inproceedings").count()
            + src.matches("@article").count()
            + src.matches("@techreport").count(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BibConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = BibConfig {
            seed: 7,
            ..Default::default()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn exhibits_irregularity() {
        let cfg = BibConfig {
            entries: 60,
            ..Default::default()
        };
        let src = generate(&cfg);
        // Some entries carry month, some do not; both venue styles occur.
        let months = src.matches("  month").count();
        assert!(months > 5 && months < 55, "months = {months}");
        assert!(src.contains("booktitle"));
        assert!(src.contains("journal"));
    }
}
