//! Deterministic filler-text generation.

use strudel_prng::rngs::SmallRng;
use strudel_prng::Rng;

const WORDS: &[&str] = &[
    "data", "graph", "query", "site", "web", "page", "link", "view", "node", "edge", "schema",
    "label", "value", "model", "index", "semi", "structured", "declarative", "management",
    "system", "language", "template", "object", "collection", "attribute", "path", "expression",
    "integration", "mediator", "wrapper", "repository", "evaluation", "optimizer", "constraint",
    "incremental", "dynamic", "static", "browse", "article", "report", "research", "project",
    "network", "protocol", "storage", "engine", "analysis", "update", "version",
];

const FIRST_NAMES: &[&str] = &[
    "Mary", "Daniela", "Jaewoo", "Alon", "Dan", "Ada", "Grace", "Alan", "Edsger", "Barbara",
    "Donald", "Leslie", "Tony", "John", "Edgar", "Jim", "Michael", "Hector", "Jennifer", "David",
    "Serge", "Victor", "Moshe", "Ron", "Rakesh", "Jeff", "Pat", "Raghu", "Joe", "Christos",
];

const LAST_NAMES: &[&str] = &[
    "Fernandez", "Florescu", "Kang", "Levy", "Suciu", "Lovelace", "Hopper", "Turing", "Liskov",
    "Knuth", "Lamport", "Hoare", "Codd", "Gray", "Stonebraker", "Garcia-Molina", "Widom",
    "DeWitt", "Abiteboul", "Vianu", "Vardi", "Fagin", "Agrawal", "Ullman", "Selinger",
    "Ramakrishnan", "Hellerstein", "Papadimitriou", "Bernstein", "Naughton",
];

/// A random dictionary word.
pub fn word(rng: &mut SmallRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// `n` space-separated words.
pub fn words(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(word(rng));
    }
    out
}

/// A title-cased phrase of `n` words.
pub fn title(rng: &mut SmallRng, n: usize) -> String {
    let mut out = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let w = word(rng);
        let mut chars = w.chars();
        if let Some(c) = chars.next() {
            out.extend(c.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

/// A sentence of `n` words with a capital and a period.
pub fn sentence(rng: &mut SmallRng, n: usize) -> String {
    let mut s = title(rng, 1);
    if n > 1 {
        s.push(' ');
        s.push_str(&words(rng, n - 1));
    }
    s.push('.');
    s
}

/// A person name, `First Last`.
pub fn person_name(rng: &mut SmallRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

/// A short lowercase identifier like `mff` derived from a name plus an
/// index for uniqueness.
pub fn login(name: &str, index: usize) -> String {
    let initials: String = name
        .split_whitespace()
        .filter_map(|w| w.chars().next())
        .flat_map(|c| c.to_lowercase())
        .collect();
    format!("{initials}{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_prng::SeedableRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(words(&mut a, 10), words(&mut b, 10));
        assert_eq!(person_name(&mut a), person_name(&mut b));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(words(&mut a, 20), words(&mut b, 20));
    }

    #[test]
    fn shapes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(words(&mut rng, 5).split(' ').count(), 5);
        let t = title(&mut rng, 3);
        assert!(t.chars().next().unwrap().is_uppercase());
        let s = sentence(&mut rng, 6);
        assert!(s.ends_with('.'));
        assert_eq!(login("Mary Fernandez", 3), "mf3");
    }
}
