//! # strudel-workload
//!
//! Deterministic synthetic corpora standing in for the paper's proprietary
//! data sources (see DESIGN.md, "Substitutions"):
//!
//! * [`bib`] — BibTeX bibliographies (the authors' publication lists
//!   behind the homepage sites of §2.3/§5.1);
//! * [`org`] — an AT&T-Labs-shaped organization: ~400 people, departments,
//!   projects, and demos across **five** sources in three formats
//!   (relational CSV, structured record files, legacy HTML), matching
//!   "the AT&T Research site integrated five data sources" (§6.1);
//! * [`news`] — a CNN-shaped corpus of HTML article pages with categories,
//!   related-story links, and images (§5.1 wrapped ~300 articles).
//!
//! Everything is generated from a seed (`SmallRng::seed_from_u64`), so
//! experiments are reproducible run to run; irregularity rates (missing
//! attributes, extra attributes, mixed types) follow §6.3's taxonomy of
//! real-world irregularity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bib;
pub mod news;
pub mod org;
pub mod text;
