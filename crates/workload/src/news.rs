//! A synthetic CNN-shaped news corpus: HTML article pages.
//!
//! The paper's CNN demonstration mapped "about 300 articles" from existing
//! HTML pages into a data graph; each article "appears in various formats
//! on multiple pages" and is "linked to many other pages" — complex but
//! *uniform* disposition, the sweet spot of Fig. 8. The generator emits
//! article pages with category/date metadata, body paragraphs, an optional
//! image, and related-story links inside and across categories.

use crate::text;
use strudel_prng::rngs::SmallRng;
use strudel_prng::{Rng, SeedableRng};
use std::fmt::Write;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct NewsConfig {
    /// Number of articles (the paper's corpus was ~300).
    pub articles: usize,
    /// Number of categories (news, sports, weather, …).
    pub categories: usize,
    /// Body paragraphs per article.
    pub paragraphs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig {
            articles: 300,
            categories: 8,
            paragraphs: 4,
            seed: 217,
        }
    }
}

/// Canonical category names, cycled when more are requested.
pub const CATEGORY_NAMES: &[&str] = &[
    "world", "us", "sports", "weather", "sci-tech", "showbiz", "travel", "health", "style",
    "local",
];

/// The generated corpus.
#[derive(Clone, Debug)]
pub struct NewsData {
    /// `(file name, html)` article pages.
    pub pages: Vec<(String, String)>,
    /// Category names used.
    pub categories: Vec<String>,
}

/// Generates the corpus.
pub fn generate(cfg: &NewsConfig) -> NewsData {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let categories: Vec<String> = (0..cfg.categories.max(1))
        .map(|i| {
            let base = CATEGORY_NAMES[i % CATEGORY_NAMES.len()];
            if i < CATEGORY_NAMES.len() {
                base.to_owned()
            } else {
                format!("{base}{}", i / CATEGORY_NAMES.len())
            }
        })
        .collect();

    let names: Vec<String> = (0..cfg.articles)
        .map(|i| format!("article{i}.html"))
        .collect();
    let mut pages = Vec::with_capacity(cfg.articles);
    for (i, name) in names.iter().enumerate() {
        let category = &categories[rng.gen_range(0..categories.len())];
        let headline_len = rng.gen_range(4..9);
        let headline = text::title(&mut rng, headline_len);
        let day = rng.gen_range(1..29);
        let month = rng.gen_range(1..13);
        let mut html = String::with_capacity(1024);
        writeln!(html, "<html><head><title>{headline}</title>").unwrap();
        writeln!(html, "<meta name=\"category\" content=\"{category}\">").unwrap();
        writeln!(
            html,
            "<meta name=\"date\" content=\"1998-{month:02}-{day:02}\">"
        )
        .unwrap();
        writeln!(html, "<meta name=\"byline\" content=\"{}\">", text::person_name(&mut rng))
            .unwrap();
        writeln!(html, "</head><body>").unwrap();
        writeln!(html, "<h1>{headline}</h1>").unwrap();
        if rng.gen_bool(0.6) {
            writeln!(html, "<img src=\"images/article{i}.jpg\" alt=\"photo\">").unwrap();
        }
        for _ in 0..cfg.paragraphs {
            let plen = rng.gen_range(14..30);
            writeln!(html, "<p>{}</p>", text::sentence(&mut rng, plen)).unwrap();
        }
        // Related stories: mostly earlier articles so links resolve within
        // the corpus; one external link.
        let related = rng.gen_range(1..4usize);
        for _ in 0..related {
            if i > 0 {
                let j = rng.gen_range(0..i);
                writeln!(
                    html,
                    "<p>Related: <a href=\"{}\">{}</a></p>",
                    names[j],
                    text::title(&mut rng, 4)
                )
                .unwrap();
            }
        }
        writeln!(
            html,
            "<p><a href=\"http://www.example.com/{category}\">More {category} news</a></p>"
        )
        .unwrap();
        writeln!(html, "</body></html>").unwrap();
        pages.push((name.clone(), html));
    }
    NewsData { pages, categories }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_default() {
        let d = generate(&NewsConfig::default());
        assert_eq!(d.pages.len(), 300);
        assert_eq!(d.categories.len(), 8);
    }

    #[test]
    fn deterministic() {
        let cfg = NewsConfig {
            articles: 20,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).pages, generate(&cfg).pages);
    }

    #[test]
    fn pages_carry_article_structure() {
        let d = generate(&NewsConfig {
            articles: 30,
            ..Default::default()
        });
        let (_, html) = &d.pages[10];
        assert!(html.contains("<title>"));
        assert!(html.contains("meta name=\"category\""));
        assert!(html.contains("<h1>"));
        assert!(html.contains("<p>"));
        // Internal related links resolve within the corpus.
        assert!(d
            .pages
            .iter()
            .skip(1)
            .any(|(_, h)| h.contains("<a href=\"article")));
    }

    #[test]
    fn extra_categories_get_suffixed_names() {
        let d = generate(&NewsConfig {
            articles: 1,
            categories: 12,
            ..Default::default()
        });
        assert_eq!(d.categories.len(), 12);
        assert!(d.categories.contains(&"world1".to_string()));
    }
}
