//! Procedural news-site generator (baseline).
//!
//! Hand-written page-emitting code of the kind the paper's comparison
//! sites used: one function per page type, each mixing content selection,
//! structure, and presentation — the exact entanglement Strudel
//! separates. The maintained specification is the code between the
//! `BEGIN-SPEC`/`END-SPEC` markers; [`spec_lines`] measures it, and
//! [`sports_variant_changed_lines`] measures what a "sports-only" second
//! site costs here versus the two extra predicates it costs in STRUQL.

use strudel_wrappers::html::{extract, Extracted};

/// An article as the procedural generator consumes it.
#[derive(Clone, Debug)]
pub struct Article {
    /// Source file name.
    pub name: String,
    /// Extracted content.
    pub content: Extracted,
}

/// Parses raw pages into articles (shared plumbing, not spec).
pub fn parse_articles(pages: &[(String, String)]) -> Vec<Article> {
    pages
        .iter()
        .map(|(name, html)| Article {
            name: name.clone(),
            content: extract(html),
        })
        .collect()
}

// BEGIN-SPEC (procedural news site — the maintained generator code)

/// Generates the whole site: front page, category pages, article pages.
pub fn generate(articles: &[Article]) -> Vec<(String, String)> {
    let mut pages = Vec::new();
    let mut categories: Vec<String> = Vec::new();
    for a in articles {
        if let Some(c) = category_of(a) {
            if !categories.contains(&c) {
                categories.push(c);
            }
        }
    }
    categories.sort();

    let mut front = String::from("<html><head><title>News</title></head><body>\n");
    front.push_str("<h1>Today's news</h1>\n<h2>Sections</h2>\n<ul>\n");
    for c in &categories {
        front.push_str(&format!("<li><a href=\"cat_{c}.html\">{c}</a></li>\n"));
    }
    front.push_str("</ul>\n<h2>Top stories</h2>\n<ul>\n");
    let mut titled: Vec<&Article> = articles.iter().filter(|a| a.content.title.is_some()).collect();
    titled.sort_by_key(|a| a.content.title.clone());
    for a in &titled {
        let t = a.content.title.as_deref().unwrap_or("untitled");
        front.push_str(&format!("<li><a href=\"{}\">{t}</a></li>\n", a.name));
    }
    front.push_str("</ul>\n</body></html>\n");
    pages.push(("index.html".to_string(), front));

    for c in &categories {
        let mut page = format!("<html><head><title>{c}</title></head><body>\n<h1>{c}</h1>\n<ul>\n");
        let mut stories: Vec<&Article> = articles
            .iter()
            .filter(|a| category_of(a).as_deref() == Some(c))
            .collect();
        stories.sort_by_key(|a| date_of(a));
        stories.reverse();
        for a in stories {
            let t = a.content.title.as_deref().unwrap_or("untitled");
            page.push_str(&format!("<li><a href=\"{}\">{t}</a></li>\n", a.name));
        }
        page.push_str("</ul>\n</body></html>\n");
        pages.push((format!("cat_{c}.html"), page));
    }

    for a in articles {
        pages.push((a.name.clone(), article_page(a, articles)));
    }
    pages
}

fn article_page(a: &Article, all: &[Article]) -> String {
    let mut page = String::from("<html><head><title>");
    page.push_str(a.content.title.as_deref().unwrap_or("untitled"));
    page.push_str("</title></head><body>\n");
    if let Some(h) = &a.content.headline {
        page.push_str(&format!("<h1>{h}</h1>\n"));
    }
    if let Some(b) = meta_of(a, "byline") {
        page.push_str(&format!("<p>By {b}</p>\n"));
    }
    if let Some(d) = date_of(a) {
        page.push_str(&format!("<p>{d}</p>\n"));
    }
    for img in &a.content.images {
        page.push_str(&format!("<img src=\"{img}\" alt=\"{img}\">\n"));
    }
    for p in &a.content.paragraphs {
        page.push_str(&format!("<p>{p}</p>\n"));
    }
    let related: Vec<&Article> = a
        .content
        .links
        .iter()
        .filter_map(|href| all.iter().find(|b| &b.name == href))
        .collect();
    if !related.is_empty() {
        page.push_str("<h3>Related stories</h3>\n<ul>\n");
        for r in related {
            let t = r.content.title.as_deref().unwrap_or("untitled");
            page.push_str(&format!("<li><a href=\"{}\">{t}</a></li>\n", r.name));
        }
        page.push_str("</ul>\n");
    }
    if let Some(c) = category_of(a) {
        page.push_str(&format!("<p><a href=\"cat_{c}.html\">{c}</a></p>\n"));
    }
    page.push_str("</body></html>\n");
    page
}

/// The sports-only second site. Procedurally this means a *copy* of the
/// driver with filters threaded through every loop — compare with the two
/// extra predicates STRUQL needs.
pub fn generate_sports_only(articles: &[Article]) -> Vec<(String, String)> {
    let sports: Vec<Article> = articles
        .iter()
        .filter(|a| category_of(a).as_deref() == Some("sports"))
        .cloned()
        .collect();
    let mut pages = Vec::new();
    let mut front = String::from("<html><head><title>Sports</title></head><body>\n");
    front.push_str("<h1>Sports news</h1>\n<ul>\n");
    let mut titled: Vec<&Article> = sports.iter().filter(|a| a.content.title.is_some()).collect();
    titled.sort_by_key(|a| a.content.title.clone());
    for a in &titled {
        let t = a.content.title.as_deref().unwrap_or("untitled");
        front.push_str(&format!("<li><a href=\"{}\">{t}</a></li>\n", a.name));
    }
    front.push_str("</ul>\n</body></html>\n");
    pages.push(("index.html".to_string(), front));
    for a in &sports {
        pages.push((a.name.clone(), article_page(a, &sports)));
    }
    pages
}

fn category_of(a: &Article) -> Option<String> {
    meta_of(a, "category")
}

fn date_of(a: &Article) -> Option<String> {
    meta_of(a, "date")
}

fn meta_of(a: &Article, key: &str) -> Option<String> {
    a.content
        .meta
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
}

// END-SPEC

/// Lines of maintained generator code (between the spec markers).
pub fn spec_lines() -> usize {
    crate::marked_spec_lines(include_str!("news.rs"))
}

/// Lines the sports-only variant adds or duplicates procedurally: the
/// whole `generate_sports_only` function body.
pub fn sports_variant_changed_lines() -> usize {
    let src = include_str!("news.rs");
    let start = src.find("pub fn generate_sports_only").expect("marker");
    let rest = &src[start..];
    let end = rest.find("\n}\n").map(|i| i + 2).unwrap_or(rest.len());
    rest[..end]
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<(String, String)> {
        vec![
            (
                "a0.html".into(),
                "<title>Big game</title><meta name=\"category\" content=\"sports\">\
                 <meta name=\"date\" content=\"1998-02-01\"><h1>Big game</h1>\
                 <p>text</p><a href=\"a1.html\">rel</a>"
                    .into(),
            ),
            (
                "a1.html".into(),
                "<title>Storm</title><meta name=\"category\" content=\"weather\">\
                 <meta name=\"date\" content=\"1998-02-02\"><h1>Storm</h1><p>wet</p>"
                    .into(),
            ),
        ]
    }

    #[test]
    fn generates_front_categories_and_articles() {
        let articles = parse_articles(&pages());
        let out = generate(&articles);
        // index + 2 categories + 2 articles.
        assert_eq!(out.len(), 5);
        let front = &out.iter().find(|(n, _)| n == "index.html").unwrap().1;
        assert!(front.contains("cat_sports.html"));
        assert!(front.contains("cat_weather.html"));
        let a0 = &out.iter().find(|(n, _)| n == "a0.html").unwrap().1;
        assert!(a0.contains("Related stories"));
        assert!(a0.contains("Storm"));
    }

    #[test]
    fn sports_variant_filters() {
        let articles = parse_articles(&pages());
        let out = generate_sports_only(&articles);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, h)| !h.contains("Storm")));
    }

    #[test]
    fn spec_measures_are_plausible() {
        assert!(spec_lines() > 60, "spec_lines = {}", spec_lines());
        let changed = sports_variant_changed_lines();
        assert!(changed > 15, "changed = {changed}");
        // The headline claim of the paper: a second version costs a copy
        // of the generator procedurally, but ~2 predicates declaratively.
        assert!(changed > 2 * 5);
    }
}
