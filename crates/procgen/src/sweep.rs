//! The parametric site family behind the Fig. 8 suitability study.
//!
//! A *sweep site* publishes `n` entities indexed by `k` **facets**
//! (year-like, category-like, department-like groupings). `k` is the
//! structural-complexity axis of Fig. 8 — each facet adds link clauses to
//! the STRUQL formulation and a page-generating script to the procedural
//! one; `n` is the data axis.
//!
//! Both formulations are *generated* and *executed*:
//!
//! * [`strudel_query`]/[`strudel_templates`] produce a real STRUQL query
//!   (with `3 + 3k` link clauses) and templates over [`sweep_ddl`] data;
//! * [`generate_procedural`] emits the same pages imperatively, and
//!   [`procedural_script`] renders the per-facet CGI-style script text a
//!   maintainer would own (the paper's complexity proxy is "the number of
//!   CGI-BIN scripts").
//!
//! The experiment compares specification sizes ([`strudel_spec_lines`] vs
//! [`procedural_spec_lines`]), the cost of one structural change
//! ([`strudel_change_lines`] vs [`procedural_change_lines`]), and
//! generation wall time.

use std::fmt::Write;

/// One entity of the sweep workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepEntity {
    /// Identifier (`e0`, `e1`, …).
    pub id: String,
    /// Display title.
    pub title: String,
    /// One value per facet.
    pub facet_values: Vec<String>,
}

/// Deterministic entity corpus: `n` entities × `k` facets, with facet `j`
/// drawing from a domain of `4 + (j % 3)` values.
pub fn sweep_entities(n: usize, k: usize) -> Vec<SweepEntity> {
    (0..n)
        .map(|i| SweepEntity {
            id: format!("e{i}"),
            title: format!("Entity {i}"),
            facet_values: (0..k)
                .map(|j| format!("f{j}v{}", (i * 31 + j * 7) % (4 + j % 3)))
                .collect(),
        })
        .collect()
}

/// Renders the corpus as Strudel DDL (an `Entities` collection).
pub fn sweep_ddl(entities: &[SweepEntity]) -> String {
    let mut out = String::with_capacity(entities.len() * 96);
    for e in entities {
        writeln!(out, "object {} in Entities {{", e.id).unwrap();
        writeln!(out, "  title : \"{}\";", e.title).unwrap();
        for (j, v) in e.facet_values.iter().enumerate() {
            writeln!(out, "  facet{j} : \"{v}\";").unwrap();
        }
        out.push_str("}\n");
    }
    out
}

/// The STRUQL site-definition query for `k` facets.
pub fn strudel_query(k: usize) -> String {
    let mut q = String::from(
        "create Home()\nlink Home() -> \"title\" -> \"Sweep site\"\ncollect Roots(Home())\n\n\
         where Entities(x)\ncreate EntityPage(x)\n\
         link Home() -> \"entity\" -> EntityPage(x)\n\
         collect EntityPages(EntityPage(x))\n\
         { where x -> \"title\" -> t\n  link EntityPage(x) -> \"title\" -> t }\n",
    );
    for j in 0..k {
        writeln!(
            q,
            "{{ where x -> \"facet{j}\" -> v{j}\n  create Facet{j}Page(v{j})\n  \
             link Facet{j}Page(v{j}) -> \"value\" -> v{j},\n       \
             Facet{j}Page(v{j}) -> \"entity\" -> EntityPage(x),\n       \
             Home() -> \"facet{j}\" -> Facet{j}Page(v{j})\n  \
             collect Facet{j}Pages(Facet{j}Page(v{j})) }}"
        )
        .unwrap();
    }
    q
}

/// Template set sources for the sweep site: `(name, source, assignment)`
/// where the assignment is a collection name (or `Home` for the root).
pub fn strudel_templates(k: usize) -> Vec<(String, String, String)> {
    let mut facet_links = String::new();
    for j in 0..k {
        writeln!(facet_links, "<h2>By facet{j}</h2>\n<SFMT facet{j} UL ORDER=ascend KEY=value>")
            .unwrap();
    }
    let mut out = vec![
        (
            "home".to_string(),
            format!(
                "<html><head><title><SFMT title></title></head><body>\n<h1><SFMT title></h1>\n\
                 {facet_links}<h2>All entities</h2>\n<SFMT entity UL ORDER=ascend KEY=title>\n\
                 </body></html>"
            ),
            "Home".to_string(),
        ),
        (
            "entity".to_string(),
            "<html><body><h1><SFMT title></h1></body></html>".to_string(),
            "EntityPages".to_string(),
        ),
    ];
    for j in 0..k {
        out.push((
            format!("facet{j}"),
            "<html><body><h1><SFMT value></h1><SFMT entity UL ORDER=ascend KEY=title></body></html>"
                .to_string(),
            format!("Facet{j}Pages"),
        ));
    }
    out
}

/// Strudel spec size: query lines plus template lines.
pub fn strudel_spec_lines(k: usize) -> usize {
    let q = strudel_query(k);
    let t: usize = strudel_templates(k)
        .iter()
        .map(|(_, src, _)| src.lines().filter(|l| !l.trim().is_empty()).count())
        .sum();
    q.lines().filter(|l| !l.trim().is_empty()).count() + t
}

/// Lines changed in the Strudel spec when facet `k` is added (k → k+1).
pub fn strudel_change_lines(k: usize) -> usize {
    diff_lines(&full_strudel_spec(k), &full_strudel_spec(k + 1))
}

fn full_strudel_spec(k: usize) -> String {
    let mut s = strudel_query(k);
    for (_, src, _) in strudel_templates(k) {
        s.push_str(&src);
        s.push('\n');
    }
    s
}

/// The CGI-style script text a maintainer of the procedural site owns:
/// a driver plus one script per facet. This is the text whose size and
/// diffs the experiment reports; [`generate_procedural`] is its runnable
/// equivalent.
pub fn procedural_script(k: usize) -> String {
    let mut s = String::from(
        "#!/bin/sh\n# driver: regenerate the whole site\n\
         ./gen_home.cgi > site/index.html\n\
         for e in $(cut -d, -f1 entities.csv); do\n\
         \t./gen_entity.cgi $e > site/$e.html\ndone\n",
    );
    for j in 0..k {
        writeln!(s, "./gen_facet{j}.cgi || exit 1").unwrap();
        writeln!(
            s,
            "# --- gen_facet{j}.cgi ---------------------------------------\n\
             # enumerate distinct facet{j} values\n\
             VALUES=$(cut -d, -f{col} entities.csv | sort -u)\n\
             for v in $VALUES; do\n\
             \techo '<html><body><h1>'$v'</h1><ul>' > site/facet{j}_$v.html\n\
             \tawk -F, -v v=$v '${col}==v {{print \"<li><a href=\"$1\".html>\"$2\"</a></li>\"}}' \\\n\
             \t    entities.csv >> site/facet{j}_$v.html\n\
             \techo '</ul></body></html>' >> site/facet{j}_$v.html\n\
             \tln_home=\"<a href=facet{j}_$v.html>facet{j} $v</a>\"\n\
             \techo $ln_home >> site/index.html\ndone",
            col = j + 3
        )
        .unwrap();
    }
    s
}

/// Procedural spec size: lines of the generated script text.
pub fn procedural_spec_lines(k: usize) -> usize {
    procedural_script(k)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Lines changed in the procedural spec when facet `k` is added.
pub fn procedural_change_lines(k: usize) -> usize {
    diff_lines(&procedural_script(k), &procedural_script(k + 1))
}

/// Runs the procedural generator: the executable equivalent of the
/// scripts, producing the same page inventory as the Strudel site.
pub fn generate_procedural(entities: &[SweepEntity], k: usize) -> Vec<(String, String)> {
    let mut pages = Vec::new();
    let mut home = String::from("<html><head><title>Sweep site</title></head><body>\n");
    home.push_str("<h1>Sweep site</h1>\n");
    for j in 0..k {
        let mut values: Vec<&str> = entities
            .iter()
            .filter_map(|e| e.facet_values.get(j).map(String::as_str))
            .collect();
        values.sort_unstable();
        values.dedup();
        home.push_str(&format!("<h2>By facet{j}</h2>\n<ul>\n"));
        for v in &values {
            home.push_str(&format!("<li><a href=\"facet{j}_{v}.html\">{v}</a></li>\n"));
            let mut page = format!("<html><body><h1>{v}</h1>\n<ul>\n");
            for e in entities {
                if e.facet_values.get(j).map(String::as_str) == Some(*v) {
                    page.push_str(&format!(
                        "<li><a href=\"{}.html\">{}</a></li>\n",
                        e.id, e.title
                    ));
                }
            }
            page.push_str("</ul></body></html>\n");
            pages.push((format!("facet{j}_{v}.html"), page));
        }
        home.push_str("</ul>\n");
    }
    home.push_str("<h2>All entities</h2>\n<ul>\n");
    for e in entities {
        home.push_str(&format!("<li><a href=\"{}.html\">{}</a></li>\n", e.id, e.title));
        pages.push((
            format!("{}.html", e.id),
            format!("<html><body><h1>{}</h1></body></html>\n", e.title),
        ));
    }
    home.push_str("</ul>\n</body></html>\n");
    pages.insert(0, ("index.html".to_string(), home));
    pages
}

/// Line-set diff size (added + removed), order-insensitive — a simple,
/// symmetric measure of edit cost.
fn diff_lines(a: &str, b: &str) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for l in a.lines().filter(|l| !l.trim().is_empty()) {
        *counts.entry(l).or_insert(0) += 1;
    }
    for l in b.lines().filter(|l| !l.trim().is_empty()) {
        *counts.entry(l).or_insert(0) -= 1;
    }
    counts.values().map(|c| c.unsigned_abs() as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entities_are_deterministic() {
        assert_eq!(sweep_entities(10, 3), sweep_entities(10, 3));
        let e = sweep_entities(5, 2);
        assert_eq!(e.len(), 5);
        assert_eq!(e[0].facet_values.len(), 2);
    }

    #[test]
    fn ddl_parses_and_strudel_query_runs() {
        let entities = sweep_entities(20, 3);
        let g = strudel_graph::ddl::parse(&sweep_ddl(&entities)).unwrap();
        assert_eq!(g.members_str("Entities").len(), 20);
        let db = strudel_repo::Database::from_graph(g, strudel_repo::IndexLevel::Full);
        let program = strudel_struql::parse(&strudel_query(3)).unwrap();
        let result = strudel_struql::Evaluator::new(&db).eval(&program).unwrap();
        // Home + 20 entity pages + facet pages.
        assert!(result.new_nodes.len() > 21);
        assert_eq!(program.link_clause_count(), 3 + 3 * 3);
    }

    #[test]
    fn procedural_and_strudel_agree_on_page_inventory() {
        let k = 2;
        let entities = sweep_entities(15, k);
        let proc_pages = generate_procedural(&entities, k);

        let g = strudel_graph::ddl::parse(&sweep_ddl(&entities)).unwrap();
        let db = strudel_repo::Database::from_graph(g, strudel_repo::IndexLevel::Full);
        let program = strudel_struql::parse(&strudel_query(k)).unwrap();
        let result = strudel_struql::Evaluator::new(&db).eval(&program).unwrap();
        // Pages: Home + entities + distinct facet values per facet.
        assert_eq!(proc_pages.len(), result.new_nodes.len());
    }

    #[test]
    fn spec_sizes_scale_differently() {
        // Strudel adds ~9 lines per facet (6 query + 3 template); the
        // procedural spec adds a whole script.
        let s_delta = strudel_spec_lines(6) - strudel_spec_lines(5);
        let p_delta = procedural_spec_lines(6) - procedural_spec_lines(5);
        assert!(s_delta < p_delta, "strudel {s_delta} vs procedural {p_delta}");
    }

    #[test]
    fn change_costs_favor_strudel() {
        for k in [1, 4, 8] {
            assert!(
                strudel_change_lines(k) < procedural_change_lines(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn templates_parse() {
        for (_, src, _) in strudel_templates(4) {
            strudel_template::parse_template(&src).unwrap();
        }
    }
}
