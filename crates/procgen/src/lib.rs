//! # strudel-procgen
//!
//! The **baseline** for the Fig. 8 suitability study: procedural,
//! "CGI-script-style" site generators, the way sites were built before
//! Strudel ("In current practice, an analogous measure of site complexity
//! is the number of CGI-BIN scripts required to generate a site", §6.1).
//!
//! Two baselines:
//!
//! * [`news`] — an imperative generator for the CNN-shaped site,
//!   comparable to `strudel::sites::news_site`; its maintained
//!   specification is the Rust between the `BEGIN-SPEC`/`END-SPEC`
//!   markers, counted by [`news::spec_lines`].
//! * [`sweep`] — a parametric family of sites over (data size ×
//!   structural complexity), where structural complexity is the number of
//!   *facets* the site indexes its entities by (≈ link clauses in the
//!   STRUQL formulation, ≈ CGI scripts in the procedural one). Both the
//!   procedural scripts and the equivalent STRUQL queries are generated
//!   and *executed*, and their sizes and single-change diffs measured —
//!   the inputs to the F8 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod news;
pub mod sweep;

/// Counts the lines between `// BEGIN-SPEC` and `// END-SPEC` markers in a
/// source file — the "maintained specification" size of a procedural
/// generator.
pub fn marked_spec_lines(source: &str) -> usize {
    let mut counting = false;
    let mut lines = 0usize;
    for line in source.lines() {
        let t = line.trim();
        if t.starts_with("// BEGIN-SPEC") {
            counting = true;
            continue;
        }
        if t.starts_with("// END-SPEC") {
            counting = false;
            continue;
        }
        if counting && !t.is_empty() && !t.starts_with("//") {
            lines += 1;
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    #[test]
    fn marker_counting() {
        let src = "x\n// BEGIN-SPEC\na\n\n// comment\nb\n// END-SPEC\ny\n";
        assert_eq!(super::marked_spec_lines(src), 2);
    }
}
