//! Deterministic Skolem-function object creation.
//!
//! STRUQL's `create` clause names new objects with Skolem terms like
//! `AbstractPage(x)`. *By definition, a Skolem function applied to the same
//! inputs produces the same node oid* (§2.2) — this is what makes the
//! construction stage declarative: the same `create` executed for two
//! where-clause rows with equal arguments yields one object, and separate
//! `link` clauses can address the same object from different parts of a
//! query. [`SkolemTable`] is that function: a memo table from
//! `(symbol, argument values)` to the oid it minted.

use crate::{Graph, Oid, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The key of one Skolem application: the function symbol plus its fully
/// evaluated arguments.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SkolemKey {
    /// The function symbol, e.g. `AbstractPage`.
    pub symbol: Arc<str>,
    /// The argument tuple. Zero-ary symbols (e.g. `RootPage()`) have an
    /// empty tuple.
    pub args: Box<[Value]>,
}

impl fmt::Debug for SkolemKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.symbol)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// A memo table realizing Skolem functions over a [`Graph`].
///
/// One table is scoped to one query evaluation (or to one composed pipeline
/// of queries when later queries must address objects created by earlier
/// ones, as in the suciu navigation-bar example of §5.1).
#[derive(Default, Debug, Clone)]
pub struct SkolemTable {
    map: HashMap<SkolemKey, Oid>,
}

impl SkolemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the Skolem function `symbol` to `args`, minting a node in
    /// `graph` on first application and returning the memoized oid on every
    /// later one. The second component reports whether the node is new.
    ///
    /// Freshly minted nodes receive a symbolic name of the form
    /// `Symbol(arg,…)` when that name is still free in the graph — a
    /// debugging and HTML-naming aid, not part of the semantics.
    pub fn apply(&mut self, graph: &mut Graph, symbol: &str, args: &[Value]) -> (Oid, bool) {
        let key = SkolemKey {
            symbol: symbol.into(),
            args: args.into(),
        };
        if let Some(&oid) = self.map.get(&key) {
            return (oid, false);
        }
        let oid = graph.add_node();
        graph.name_node(oid, &display_name(graph, &key));
        self.map.insert(key, oid);
        (oid, true)
    }

    /// The oid previously minted for `symbol(args)`, if any.
    pub fn lookup(&self, symbol: &str, args: &[Value]) -> Option<Oid> {
        // Avoid allocating a key for the common miss path only if cheap; a
        // HashMap lookup needs an owned key here, and lookups are rare
        // relative to `apply`.
        let key = SkolemKey {
            symbol: symbol.into(),
            args: args.into(),
        };
        self.map.get(&key).copied()
    }

    /// Number of distinct applications so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no applications have happened.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(key, oid)` applications in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&SkolemKey, Oid)> + '_ {
        self.map.iter().map(|(k, &o)| (k, o))
    }
}

/// A human-readable name for a Skolem node: `Symbol(arg,…)`, with
/// node-valued arguments rendered by their own symbolic names when present.
fn display_name(graph: &Graph, key: &SkolemKey) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(key.symbol.len() + 8 * key.args.len());
    s.push_str(&key.symbol);
    if !key.args.is_empty() {
        s.push('(');
        for (i, a) in key.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match a {
                Value::Node(o) => match graph.node_name(*o) {
                    Some(n) => s.push_str(n),
                    None => {
                        let _ = write!(s, "{o}");
                    }
                },
                other => s.push_str(&other.display_text()),
            }
        }
        s.push(')');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_oid() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let x = g.add_named_node("pub1");
        let (a, new_a) = t.apply(&mut g, "AbstractPage", &[Value::Node(x)]);
        let (b, new_b) = t.apply(&mut g, "AbstractPage", &[Value::Node(x)]);
        assert_eq!(a, b);
        assert!(new_a);
        assert!(!new_b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_args_different_oids() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let (a, _) = t.apply(&mut g, "YearPage", &[Value::Int(1997)]);
        let (b, _) = t.apply(&mut g, "YearPage", &[Value::Int(1998)]);
        assert_ne!(a, b);
    }

    #[test]
    fn different_symbols_different_oids() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let (a, _) = t.apply(&mut g, "RootPage", &[]);
        let (b, _) = t.apply(&mut g, "AbstractsPage", &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        assert_eq!(t.lookup("RootPage", &[]), None);
        assert_eq!(g.node_count(), 0);
        let (a, _) = t.apply(&mut g, "RootPage", &[]);
        assert_eq!(t.lookup("RootPage", &[]), Some(a));
    }

    #[test]
    fn minted_nodes_get_readable_names() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let x = g.add_named_node("pub1");
        let (page, _) = t.apply(&mut g, "AbstractPage", &[Value::Node(x)]);
        assert_eq!(g.node_name(page), Some("AbstractPage(pub1)"));
        let (yp, _) = t.apply(&mut g, "YearPage", &[Value::Int(1998)]);
        assert_eq!(g.node_name(yp), Some("YearPage(1998)"));
        let (root, _) = t.apply(&mut g, "RootPage", &[]);
        assert_eq!(g.node_name(root), Some("RootPage"));
    }

    #[test]
    fn name_clash_leaves_node_anonymous_but_distinct() {
        let mut g = Graph::new();
        g.add_named_node("RootPage"); // squat on the name
        let mut t = SkolemTable::new();
        let (root, new) = t.apply(&mut g, "RootPage", &[]);
        assert!(new);
        assert_eq!(g.node_name(root), None);
        assert_ne!(g.node_by_name("RootPage"), Some(root));
    }

    #[test]
    fn iter_reports_all_applications() {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        t.apply(&mut g, "A", &[Value::Int(1)]);
        t.apply(&mut g, "A", &[Value::Int(2)]);
        t.apply(&mut g, "B", &[]);
        assert_eq!(t.iter().count(), 3);
        assert!(!t.is_empty());
    }
}
