//! Atomic values and edge targets.

use crate::Oid;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The kind of an external file value.
///
/// Strudel models page content that lives outside the graph — paper
/// abstracts, PostScript files, photos, legacy HTML fragments — as typed
/// file references so that the template language and built-in predicates
/// (`isImageFile`, `isPostScript`, …) can dispatch on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    /// Plain text (e.g. a paper abstract).
    Text,
    /// A PostScript document.
    PostScript,
    /// A raster or vector image.
    Image,
    /// An HTML fragment or page.
    Html,
}

impl FileKind {
    /// The DDL keyword naming this kind (`text`, `postscript`, `image`,
    /// `html`).
    pub fn keyword(self) -> &'static str {
        match self {
            FileKind::Text => "text",
            FileKind::PostScript => "postscript",
            FileKind::Image => "image",
            FileKind::Html => "html",
        }
    }

    /// Parses a DDL keyword into a kind.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "text" => FileKind::Text,
            "postscript" => FileKind::PostScript,
            "image" => FileKind::Image,
            "html" => FileKind::Html,
            _ => return None,
        })
    }
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A typed reference to an external file.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileRef {
    /// What kind of content the file holds.
    pub kind: FileKind,
    /// Source-relative path of the file.
    pub path: Arc<str>,
}

/// An object in the Strudel data model: an internal node or an atomic value.
///
/// Edges in a [`Graph`](crate::Graph) point at `Value`s, so "the target of
/// an edge" and "an atomic value" share this one representation, exactly as
/// in OEM. Atomic types are handled uniformly and coerced dynamically when
/// compared at run time — see [`coerce`](crate::coerce).
///
/// `Value` implements `Eq`/`Ord`/`Hash` *structurally* (an `Int(5)` is not
/// equal to a `Str("5")`); the coercing comparison used by query predicates
/// lives in [`coerce`](crate::coerce). Floats order by `total_cmp` and hash
/// by bit pattern so that values can serve as join and index keys.
#[derive(Clone, Debug)]
pub enum Value {
    /// An internal node of the graph.
    Node(Oid),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string. Reference-counted: values are copied freely between the
    /// bindings relations of query evaluation.
    Str(Arc<str>),
    /// A URL.
    Url(Arc<str>),
    /// A typed external file.
    File(FileRef),
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for a URL value.
    pub fn url(s: impl Into<Arc<str>>) -> Self {
        Value::Url(s.into())
    }

    /// Convenience constructor for a file value.
    pub fn file(kind: FileKind, path: impl Into<Arc<str>>) -> Self {
        Value::File(FileRef {
            kind,
            path: path.into(),
        })
    }

    /// Returns the node oid if this value is an internal node.
    pub fn as_node(&self) -> Option<Oid> {
        match self {
            Value::Node(o) => Some(*o),
            _ => None,
        }
    }

    /// Returns the string contents if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether this value is an atomic value (not an internal node).
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Value::Node(_))
    }

    /// Whether this value is a file of the given kind.
    pub fn is_file_kind(&self, kind: FileKind) -> bool {
        matches!(self, Value::File(f) if f.kind == kind)
    }

    /// A short name for the value's type, used in error messages and the
    /// schema index of the repository.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Node(_) => "node",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Url(_) => "url",
            Value::File(f) => f.kind.keyword(),
        }
    }

    /// Renders the value as display text, the form the template language
    /// emits for atomic values. Nodes render as their oid; callers that can
    /// resolve node names should prefer those.
    pub fn display_text(&self) -> Cow<'_, str> {
        match self {
            Value::Node(o) => Cow::Owned(o.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(x) => Cow::Owned(format_float(*x)),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Url(u) => Cow::Borrowed(u),
            Value::File(f) => Cow::Borrowed(&f.path),
        }
    }

    /// Discriminant rank used to order values of different types; gives
    /// `Value` a total order for index keys.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Node(_) => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Url(_) => 5,
            Value::File(_) => 6,
        }
    }
}

/// Formats a float the way the DDL printer and templates render it:
/// shortest form that round-trips, always with a decimal point.
pub(crate) fn format_float(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Node(a), Node(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Url(a), Url(b)) => a.cmp(b),
            (File(a), File(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Node(o) => o.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Url(u) => u.hash(state),
            Value::File(f) => f.hash(state),
        }
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Node(o)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::string(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::string(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Node(o) => write!(f, "{o}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => f.write_str(&format_float(*x)),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Url(u) => write!(f, "url({u:?})"),
            Value::File(fr) => write!(f, "{}({:?})", fr.kind, fr.path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn structural_equality_distinguishes_types() {
        assert_ne!(Value::Int(5), Value::string("5"));
        assert_ne!(Value::string("x"), Value::url("x"));
        assert_eq!(Value::Int(5), Value::Int(5));
    }

    #[test]
    fn eq_values_hash_alike() {
        let a = Value::string("hello");
        let b = Value::string("hello");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        assert!(Value::Float(1.0) < Value::Float(2.0));
    }

    #[test]
    fn cross_type_order_is_total_and_antisymmetric() {
        let vals = [
            Value::Node(Oid(0)),
            Value::Bool(true),
            Value::Int(3),
            Value::Float(2.5),
            Value::string("s"),
            Value::url("u"),
            Value::file(FileKind::Text, "a.txt"),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn display_text_renders_atomic_values() {
        assert_eq!(Value::Int(42).display_text(), "42");
        assert_eq!(Value::string("hi").display_text(), "hi");
        assert_eq!(Value::url("http://x").display_text(), "http://x");
        assert_eq!(Value::Bool(false).display_text(), "false");
        assert_eq!(Value::Float(2.0).display_text(), "2.0");
        assert_eq!(Value::file(FileKind::Image, "p.gif").display_text(), "p.gif");
    }

    #[test]
    fn file_kind_keywords_round_trip() {
        for k in [
            FileKind::Text,
            FileKind::PostScript,
            FileKind::Image,
            FileKind::Html,
        ] {
            assert_eq!(FileKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(FileKind::from_keyword("video"), None);
    }

    #[test]
    fn is_file_kind_dispatches() {
        let v = Value::file(FileKind::Image, "x.png");
        assert!(v.is_file_kind(FileKind::Image));
        assert!(!v.is_file_kind(FileKind::Text));
        assert!(!Value::Int(1).is_file_kind(FileKind::Image));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::file(FileKind::Html, "f").type_name(), "html");
        assert_eq!(Value::Node(Oid(0)).type_name(), "node");
    }
}
