//! Dynamic type coercion for run-time comparisons.
//!
//! The paper (§2.1): *"The atomic types are handled in a uniform fashion,
//! and values are coerced dynamically when they are compared at run time."*
//! Query predicates therefore do not use [`Value`]'s structural `Eq`/`Ord`
//! (which are for index keys) but the coercing relations in this module:
//!
//! * numbers compare numerically across `Int`/`Float`;
//! * a string comparing against a number is parsed as a number when
//!   possible;
//! * `Str` and `Url` compare by their text;
//! * booleans compare against the strings `"true"`/`"false"`;
//! * files compare by path against files of the same kind only — a
//!   PostScript file is never equal to an image with the same path;
//! * nodes only compare against nodes.
//!
//! Comparisons between values that cannot be coerced into a common domain
//! (for example an oid vs. an integer) return `None`, and predicates over
//! them evaluate to false — the usual semantics for irregular,
//! semistructured data where an attribute may hold differently typed values
//! on different objects.

use crate::{Value,};
use std::cmp::Ordering;

/// Coercing equality between two run-time values.
pub fn eq(a: &Value, b: &Value) -> bool {
    compare(a, b) == Some(Ordering::Equal)
}

/// Coercing three-way comparison.
///
/// Returns `None` when the values cannot be coerced into a common domain;
/// such a pair satisfies neither `<`, `=`, nor `>`.
pub fn compare(a: &Value, b: &Value) -> Option<Ordering> {
    use Value::*;
    match (a, b) {
        (Node(x), Node(y)) => Some(x.cmp(y)),
        (Node(_), _) | (_, Node(_)) => None,

        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Float(x), Float(y)) => partial(x, y),
        (Int(x), Float(y)) => partial(&(*x as f64), y),
        (Float(x), Int(y)) => partial(x, &(*y as f64)),

        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Bool(x), Str(s)) | (Str(s), Bool(x)) => {
            let parsed = match s.as_ref() {
                "true" => true,
                "false" => false,
                _ => return None,
            };
            // Orientation matters: put the bool operand back on its side.
            if matches!(a, Bool(_)) {
                Some(x.cmp(&parsed))
            } else {
                Some(parsed.cmp(x))
            }
        }

        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Url(x), Url(y)) => Some(x.cmp(y)),
        (Str(x), Url(y)) | (Url(x), Str(y)) => Some(x.cmp(y)),

        (Int(_) | Float(_), Str(s) | Url(s)) => {
            let n = parse_number(s)?;
            compare(a, &n)
        }
        (Str(s) | Url(s), Int(_) | Float(_)) => {
            let n = parse_number(s)?;
            compare(&n, b)
        }

        (File(x), File(y)) if x.kind == y.kind => Some(x.path.cmp(&y.path)),
        (File(x), Str(s)) | (Str(s), File(x)) => {
            let ord = x.path.as_ref().cmp(s.as_ref());
            if matches!(a, File(_)) {
                Some(ord)
            } else {
                Some(ord.reverse())
            }
        }

        _ => None,
    }
}

/// Coercing less-than.
pub fn lt(a: &Value, b: &Value) -> bool {
    compare(a, b) == Some(Ordering::Less)
}

/// Coercing less-than-or-equal.
pub fn le(a: &Value, b: &Value) -> bool {
    matches!(compare(a, b), Some(Ordering::Less | Ordering::Equal))
}

fn partial(x: &f64, y: &f64) -> Option<Ordering> {
    x.partial_cmp(y)
}

fn parse_number(s: &str) -> Option<Value> {
    let t = s.trim();
    if let Ok(i) = t.parse::<i64>() {
        Some(Value::Int(i))
    } else if let Ok(f) = t.parse::<f64>() {
        Some(Value::Float(f))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, Oid};

    #[test]
    fn int_coerces_against_numeric_string() {
        assert!(eq(&Value::Int(1998), &Value::string("1998")));
        assert!(eq(&Value::string("1998"), &Value::Int(1998)));
        assert!(lt(&Value::string("1997"), &Value::Int(1998)));
        assert!(lt(&Value::Int(1997), &Value::string("1998")));
    }

    #[test]
    fn non_numeric_string_vs_int_is_incomparable() {
        assert_eq!(compare(&Value::Int(5), &Value::string("five")), None);
        assert!(!eq(&Value::Int(5), &Value::string("five")));
        assert!(!lt(&Value::Int(5), &Value::string("five")));
    }

    #[test]
    fn int_and_float_compare_numerically() {
        assert!(eq(&Value::Int(2), &Value::Float(2.0)));
        assert!(lt(&Value::Int(2), &Value::Float(2.5)));
        assert!(lt(&Value::Float(1.5), &Value::Int(2)));
    }

    #[test]
    fn url_and_string_compare_by_text() {
        assert!(eq(&Value::url("http://a"), &Value::string("http://a")));
        assert!(lt(&Value::string("http://a"), &Value::url("http://b")));
    }

    #[test]
    fn bool_coerces_against_keyword_strings() {
        assert!(eq(&Value::Bool(true), &Value::string("true")));
        assert!(eq(&Value::string("false"), &Value::Bool(false)));
        assert_eq!(compare(&Value::Bool(true), &Value::string("yes")), None);
    }

    #[test]
    fn files_of_different_kinds_never_equal() {
        let ps = Value::file(FileKind::PostScript, "p");
        let img = Value::file(FileKind::Image, "p");
        assert_eq!(compare(&ps, &img), None);
        assert!(eq(&ps, &Value::file(FileKind::PostScript, "p")));
    }

    #[test]
    fn file_compares_with_string_by_path() {
        let f = Value::file(FileKind::Text, "abs/p1.txt");
        assert!(eq(&f, &Value::string("abs/p1.txt")));
        assert!(lt(&Value::string("abs/p0.txt"), &f));
        assert!(lt(&f, &Value::string("abs/p2.txt")));
    }

    #[test]
    fn nodes_only_compare_with_nodes() {
        let n = Value::Node(Oid::from_index(3));
        assert!(eq(&n, &Value::Node(Oid::from_index(3))));
        assert_eq!(compare(&n, &Value::Int(3)), None);
        assert_eq!(compare(&Value::string("&3"), &n), None);
    }

    #[test]
    fn coercing_comparison_is_antisymmetric() {
        let vals = [
            Value::Int(3),
            Value::Float(3.5),
            Value::string("3"),
            Value::string("zebra"),
            Value::url("http://x"),
            Value::Bool(true),
            Value::file(FileKind::Text, "t"),
            Value::Node(Oid::from_index(0)),
        ];
        for a in &vals {
            for b in &vals {
                let ab = compare(a, b);
                let ba = compare(b, a);
                assert_eq!(ab.map(Ordering::reverse), ba, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn nan_float_is_incomparable() {
        assert_eq!(compare(&Value::Float(f64::NAN), &Value::Float(1.0)), None);
    }
}
