//! The labeled directed multigraph with named collections.

use crate::{Label, LabelInterner, Oid, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A directed, labeled edge out of a node.
///
/// The target is a [`Value`]: either another internal node or an atomic
/// value, exactly as in the OEM model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The interned attribute name labeling the edge.
    pub label: Label,
    /// The edge target.
    pub to: Value,
}

/// A directed, labeled edge into a node, as recorded by the reverse
/// adjacency index.
///
/// Only edges whose target is an internal node appear in the index: atomic
/// values are not objects and have no incoming-edge list. The source is
/// always an [`Oid`] because only nodes carry out-edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InEdge {
    /// The node the edge leaves.
    pub from: Oid,
    /// The interned attribute name labeling the edge.
    pub label: Label,
}

/// An interned collection name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CollectionId(pub(crate) u32);

impl CollectionId {
    /// Returns the dense index backing this collection id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a collection id from a dense index previously obtained
    /// from [`CollectionId::index`] against the same graph.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "collection index overflow");
        CollectionId(index as u32)
    }
}

#[derive(Clone, Debug, Default)]
struct NodeData {
    /// Optional symbolic name, for DDL round-trips and debugging.
    name: Option<Arc<str>>,
    edges: Vec<Edge>,
    /// Reverse adjacency: edges targeting this node, in insertion order.
    rev: Vec<InEdge>,
}

#[derive(Clone, Debug)]
struct CollectionData {
    name: Arc<str>,
    /// Members in first-insertion order, deduplicated.
    members: Vec<Value>,
    member_set: HashSet<Value>,
}

/// A labeled directed multigraph over semistructured objects.
///
/// This is the single data structure behind every Strudel artifact: source
/// snapshots produced by wrappers, the integrated data graph, and the site
/// graph produced by a site-definition query. The graph owns its
/// [`LabelInterner`], so labels and collection ids are only meaningful
/// relative to the graph that issued them.
///
/// Nodes are append-only (a node, once created, exists forever); edges and
/// collection memberships can be added and removed, which is the granularity
/// at which [`GraphDelta`](crate::GraphDelta) records mutations.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    labels: LabelInterner,
    nodes: Vec<NodeData>,
    node_names: HashMap<Arc<str>, Oid>,
    collections: Vec<CollectionData>,
    collection_ids: HashMap<Arc<str>, CollectionId>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- labels -------------------------------------------------------

    /// Interns an attribute name.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.labels.intern(name)
    }

    /// Looks up an attribute name without interning it.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.labels.get(name)
    }

    /// Resolves a label to its attribute name.
    pub fn label_name(&self, label: Label) -> &str {
        self.labels.resolve(label)
    }

    /// The graph's label interner.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    // ----- nodes --------------------------------------------------------

    /// Creates a fresh anonymous node.
    pub fn add_node(&mut self) -> Oid {
        let oid = Oid::from_index(self.nodes.len());
        self.nodes.push(NodeData::default());
        oid
    }

    /// Creates (or returns the existing) node with the symbolic name
    /// `name`. Names are how DDL files and wrappers refer to objects across
    /// statements and files.
    pub fn add_named_node(&mut self, name: &str) -> Oid {
        if let Some(&oid) = self.node_names.get(name) {
            return oid;
        }
        let arc: Arc<str> = name.into();
        let oid = Oid::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            name: Some(arc.clone()),
            edges: Vec::new(),
            rev: Vec::new(),
        });
        self.node_names.insert(arc, oid);
        oid
    }

    /// Looks up a node by symbolic name.
    pub fn node_by_name(&self, name: &str) -> Option<Oid> {
        self.node_names.get(name).copied()
    }

    /// The symbolic name of a node, if it has one.
    pub fn node_name(&self, oid: Oid) -> Option<&str> {
        self.nodes[oid.index()].name.as_deref()
    }

    /// Assigns a symbolic name to an existing anonymous node. Returns
    /// `false` (and leaves the graph unchanged) if the name is taken by a
    /// different node or the node already has a name.
    pub fn name_node(&mut self, oid: Oid, name: &str) -> bool {
        if let Some(&existing) = self.node_names.get(name) {
            return existing == oid;
        }
        if self.nodes[oid.index()].name.is_some() {
            return false;
        }
        let arc: Arc<str> = name.into();
        self.nodes[oid.index()].name = Some(arc.clone());
        self.node_names.insert(arc, oid);
        true
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `oid` was issued by this graph.
    pub fn contains_node(&self, oid: Oid) -> bool {
        oid.index() < self.nodes.len()
    }

    /// Iterates over all node oids in creation order.
    pub fn node_oids(&self) -> impl Iterator<Item = Oid> + '_ {
        (0..self.nodes.len()).map(Oid::from_index)
    }

    // ----- edges --------------------------------------------------------

    /// Adds a labeled edge `from --label--> to`.
    ///
    /// The graph is a multigraph: adding the same edge twice stores it
    /// twice. Use [`Graph::has_edge`] first when set semantics are wanted.
    pub fn add_edge(&mut self, from: Oid, label: Label, to: Value) {
        debug_assert!(label.index() < self.labels.len(), "foreign label");
        if let Value::Node(target) = &to {
            let target = *target;
            self.nodes[target.index()].rev.push(InEdge { from, label });
        }
        self.nodes[from.index()].edges.push(Edge { label, to });
        self.edge_count += 1;
    }

    /// Adds an edge, interning the label name.
    pub fn add_edge_str(&mut self, from: Oid, label: &str, to: Value) {
        let l = self.intern_label(label);
        self.add_edge(from, l, to);
    }

    /// Removes one occurrence of the edge `from --label--> to`. Returns
    /// whether an edge was removed.
    pub fn remove_edge(&mut self, from: Oid, label: Label, to: &Value) -> bool {
        let edges = &mut self.nodes[from.index()].edges;
        if let Some(pos) = edges.iter().position(|e| e.label == label && &e.to == to) {
            edges.remove(pos);
            self.edge_count -= 1;
            if let Value::Node(target) = to {
                let rev = &mut self.nodes[target.index()].rev;
                // Parallel in-edges are indistinguishable in the reverse
                // index, so removing the first match keeps it exactly in
                // step with the forward edge list.
                if let Some(rpos) = rev
                    .iter()
                    .position(|ie| ie.from == from && ie.label == label)
                {
                    rev.remove(rpos);
                }
            }
            true
        } else {
            false
        }
    }

    /// Whether the edge `from --label--> to` exists.
    pub fn has_edge(&self, from: Oid, label: Label, to: &Value) -> bool {
        self.nodes[from.index()]
            .edges
            .iter()
            .any(|e| e.label == label && &e.to == to)
    }

    /// All out-edges of a node, in insertion order.
    pub fn edges(&self, oid: Oid) -> &[Edge] {
        &self.nodes[oid.index()].edges
    }

    /// All edges whose target is node `oid`, in insertion order.
    ///
    /// This is the reverse-adjacency mirror of [`Graph::edges`], maintained
    /// incrementally by [`Graph::add_edge`] and [`Graph::remove_edge`] (and
    /// therefore consistent through delta application and WAL replay, which
    /// route through those methods). Edges targeting atomic values are not
    /// indexed; answer those through the value index or an edge scan.
    pub fn edges_in(&self, oid: Oid) -> &[InEdge] {
        &self.nodes[oid.index()].rev
    }

    /// The values of attribute `label` on node `oid`, in insertion order.
    pub fn attr(&self, oid: Oid, label: Label) -> impl Iterator<Item = &Value> + '_ {
        self.nodes[oid.index()]
            .edges
            .iter()
            .filter(move |e| e.label == label)
            .map(|e| &e.to)
    }

    /// The values of attribute `label` (by name) on node `oid`. Yields
    /// nothing when the label has never been interned.
    pub fn attr_str<'g>(&'g self, oid: Oid, label: &str) -> impl Iterator<Item = &'g Value> + 'g {
        let l = self.label(label);
        self.nodes[oid.index()]
            .edges
            .iter()
            .filter(move |e| Some(e.label) == l)
            .map(|e| &e.to)
    }

    /// The first value of attribute `label` on `oid`, if any.
    pub fn first_attr(&self, oid: Oid, label: Label) -> Option<&Value> {
        self.attr(oid, label).next()
    }

    /// The first value of attribute `label` (by name) on `oid`, if any.
    pub fn first_attr_str(&self, oid: Oid, label: &str) -> Option<&Value> {
        self.attr_str(oid, label).next()
    }

    /// Total number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    // ----- collections ---------------------------------------------------

    /// Interns a collection name, creating the (empty) collection if new.
    pub fn intern_collection(&mut self, name: &str) -> CollectionId {
        if let Some(&cid) = self.collection_ids.get(name) {
            return cid;
        }
        let arc: Arc<str> = name.into();
        let cid = CollectionId::from_index(self.collections.len());
        self.collections.push(CollectionData {
            name: arc.clone(),
            members: Vec::new(),
            member_set: HashSet::new(),
        });
        self.collection_ids.insert(arc, cid);
        cid
    }

    /// Looks up a collection by name without creating it.
    pub fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.collection_ids.get(name).copied()
    }

    /// The name of a collection.
    pub fn collection_name(&self, cid: CollectionId) -> &str {
        &self.collections[cid.index()].name
    }

    /// Adds `member` to the collection (set semantics: duplicates are
    /// ignored). Returns whether the member was newly added.
    pub fn collect(&mut self, cid: CollectionId, member: Value) -> bool {
        let c = &mut self.collections[cid.index()];
        if c.member_set.insert(member.clone()) {
            c.members.push(member);
            true
        } else {
            false
        }
    }

    /// Adds `member` to the named collection, creating it if necessary.
    pub fn collect_str(&mut self, name: &str, member: impl Into<Value>) -> bool {
        let cid = self.intern_collection(name);
        self.collect(cid, member.into())
    }

    /// Removes `member` from the collection. Returns whether it was present.
    pub fn uncollect(&mut self, cid: CollectionId, member: &Value) -> bool {
        let c = &mut self.collections[cid.index()];
        if c.member_set.remove(member) {
            let pos = c
                .members
                .iter()
                .position(|m| m == member)
                .expect("member list and set out of sync");
            c.members.remove(pos);
            true
        } else {
            false
        }
    }

    /// The members of a collection in first-insertion order.
    pub fn members(&self, cid: CollectionId) -> &[Value] {
        &self.collections[cid.index()].members
    }

    /// The members of a named collection; empty when the collection does
    /// not exist.
    pub fn members_str(&self, name: &str) -> &[Value] {
        match self.collection_id(name) {
            Some(cid) => self.members(cid),
            None => &[],
        }
    }

    /// Whether `member` belongs to the collection.
    pub fn in_collection(&self, cid: CollectionId, member: &Value) -> bool {
        self.collections[cid.index()].member_set.contains(member)
    }

    /// Number of collections.
    pub fn collection_count(&self) -> usize {
        self.collections.len()
    }

    /// Iterates over all collections as `(id, name)` pairs.
    pub fn collections(&self) -> impl Iterator<Item = (CollectionId, &str)> + '_ {
        self.collections
            .iter()
            .enumerate()
            .map(|(i, c)| (CollectionId::from_index(i), c.name.as_ref()))
    }

    /// Merges collection `from` into collection `into`, emptying `from`.
    /// This is the §6.3 schema-evolution move: "the information about lab
    /// and department directors initially was modeled by two different
    /// collections; over time, we discovered that objects in these
    /// collections shared many common attributes, so we merged the two
    /// collections." Returns how many members were newly added to `into`.
    pub fn merge_collection(&mut self, from: CollectionId, into: CollectionId) -> usize {
        if from == into {
            return 0;
        }
        let members: Vec<Value> = self.collections[from.index()].members.clone();
        let mut moved = 0;
        for m in members {
            self.uncollect(from, &m);
            if self.collect(into, m) {
                moved += 1;
            }
        }
        moved
    }

    // ----- whole-graph operations ----------------------------------------

    /// Imports every node, edge, and collection of `other` into `self`,
    /// returning the oid remapping. Symbolic node names are kept when
    /// unclaimed in `self`; a clash falls back to an anonymous node, since
    /// names are a debugging aid rather than identity (identity is the oid).
    ///
    /// This is the mediator's warehousing primitive: each wrapped source
    /// graph is imported into the repository's single data graph.
    pub fn import_graph(&mut self, other: &Graph) -> HashMap<Oid, Oid> {
        let mut oid_map: HashMap<Oid, Oid> = HashMap::with_capacity(other.node_count());
        for (i, node) in other.nodes.iter().enumerate() {
            let old = Oid::from_index(i);
            let new = match &node.name {
                Some(name) if !self.node_names.contains_key(name.as_ref()) => {
                    self.add_named_node(name)
                }
                _ => self.add_node(),
            };
            oid_map.insert(old, new);
        }
        let remap = |v: &Value, map: &HashMap<Oid, Oid>| -> Value {
            match v {
                Value::Node(o) => Value::Node(map[o]),
                other => other.clone(),
            }
        };
        for (i, node) in other.nodes.iter().enumerate() {
            let from = oid_map[&Oid::from_index(i)];
            for e in &node.edges {
                let label = self.intern_label(other.label_name(e.label));
                let to = remap(&e.to, &oid_map);
                self.add_edge(from, label, to);
            }
        }
        for c in &other.collections {
            let cid = self.intern_collection(&c.name);
            for m in &c.members {
                self.collect(cid, remap(m, &oid_map));
            }
        }
        oid_map
    }

    /// A read-only cursor over one node. Convenience for template
    /// evaluation and tests.
    pub fn node(&self, oid: Oid) -> NodeRef<'_> {
        NodeRef { graph: self, oid }
    }
}

/// A borrowed view of one node of a [`Graph`].
#[derive(Clone, Copy)]
pub struct NodeRef<'g> {
    graph: &'g Graph,
    oid: Oid,
}

impl<'g> NodeRef<'g> {
    /// The node's oid.
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// The node's symbolic name, if any.
    pub fn name(&self) -> Option<&'g str> {
        self.graph.node_name(self.oid)
    }

    /// The values of the named attribute.
    pub fn attr(&self, label: &str) -> impl Iterator<Item = &'g Value> + 'g {
        self.graph.attr_str(self.oid, label)
    }

    /// The first value of the named attribute.
    pub fn first(&self, label: &str) -> Option<&'g Value> {
        self.graph.first_attr_str(self.oid, label)
    }

    /// All out-edges.
    pub fn edges(&self) -> &'g [Edge] {
        self.graph.edges(self.oid)
    }
}

impl fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => write!(f, "NodeRef({} {:?})", self.oid, n),
            None => write!(f, "NodeRef({})", self.oid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let p1 = g.add_named_node("pub1");
        let p2 = g.add_named_node("pub2");
        g.add_edge_str(p1, "title", Value::string("Strudel"));
        g.add_edge_str(p1, "year", Value::Int(1998));
        g.add_edge_str(p1, "author", Value::string("mff"));
        g.add_edge_str(p1, "author", Value::string("suciu"));
        g.add_edge_str(p2, "title", Value::string("WebOQL"));
        g.add_edge_str(p2, "cites", Value::Node(p1));
        g.collect_str("Publications", p1);
        g.collect_str("Publications", p2);
        g
    }

    #[test]
    fn named_nodes_are_idempotent() {
        let mut g = Graph::new();
        let a = g.add_named_node("x");
        let b = g.add_named_node("x");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.node_by_name("x"), Some(a));
        assert_eq!(g.node_name(a), Some("x"));
    }

    #[test]
    fn multi_valued_attributes_preserve_order() {
        let g = sample();
        let p1 = g.node_by_name("pub1").unwrap();
        let authors: Vec<&str> = g.attr_str(p1, "author").filter_map(Value::as_str).collect();
        assert_eq!(authors, ["mff", "suciu"]);
    }

    #[test]
    fn missing_attribute_yields_nothing() {
        let g = sample();
        let p2 = g.node_by_name("pub2").unwrap();
        assert_eq!(g.attr_str(p2, "year").count(), 0);
        assert!(g.first_attr_str(p2, "no-such-label").is_none());
    }

    #[test]
    fn edge_add_remove_round_trip() {
        let mut g = sample();
        let p1 = g.node_by_name("pub1").unwrap();
        let year = g.label("year").unwrap();
        let before = g.edge_count();
        assert!(g.has_edge(p1, year, &Value::Int(1998)));
        assert!(g.remove_edge(p1, year, &Value::Int(1998)));
        assert!(!g.has_edge(p1, year, &Value::Int(1998)));
        assert!(!g.remove_edge(p1, year, &Value::Int(1998)));
        assert_eq!(g.edge_count(), before - 1);
    }

    #[test]
    fn multigraph_stores_duplicate_edges() {
        let mut g = Graph::new();
        let n = g.add_node();
        g.add_edge_str(n, "tag", Value::string("x"));
        g.add_edge_str(n, "tag", Value::string("x"));
        assert_eq!(g.attr_str(n, "tag").count(), 2);
        let tag = g.label("tag").unwrap();
        assert!(g.remove_edge(n, tag, &Value::string("x")));
        assert_eq!(g.attr_str(n, "tag").count(), 1);
    }

    #[test]
    fn collections_have_set_semantics_and_order() {
        let mut g = sample();
        let p1 = g.node_by_name("pub1").unwrap();
        assert!(!g.collect_str("Publications", p1), "duplicate insert");
        let cid = g.collection_id("Publications").unwrap();
        assert_eq!(g.members(cid).len(), 2);
        assert!(g.in_collection(cid, &Value::Node(p1)));
        assert!(g.uncollect(cid, &Value::Node(p1)));
        assert!(!g.in_collection(cid, &Value::Node(p1)));
        assert_eq!(g.members(cid).len(), 1);
    }

    #[test]
    fn collections_may_hold_atomic_values() {
        let mut g = Graph::new();
        g.collect_str("Years", Value::Int(1997));
        g.collect_str("Years", Value::Int(1998));
        assert_eq!(g.members_str("Years").len(), 2);
        assert_eq!(g.members_str("NoSuch").len(), 0);
    }

    #[test]
    fn objects_may_belong_to_multiple_collections() {
        let mut g = sample();
        let p1 = g.node_by_name("pub1").unwrap();
        g.collect_str("Recent", p1);
        let pubs = g.collection_id("Publications").unwrap();
        let recent = g.collection_id("Recent").unwrap();
        assert!(g.in_collection(pubs, &Value::Node(p1)));
        assert!(g.in_collection(recent, &Value::Node(p1)));
    }

    #[test]
    fn merge_collection_moves_members() {
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_named_node("b");
        let c = g.add_named_node("c");
        let lab = g.intern_collection("LabDirectors");
        let dept = g.intern_collection("DeptDirectors");
        g.collect(lab, Value::Node(a));
        g.collect(lab, Value::Node(b));
        g.collect(dept, Value::Node(b)); // overlap
        g.collect(dept, Value::Node(c));
        let moved = g.merge_collection(lab, dept);
        assert_eq!(moved, 1, "only a was new to DeptDirectors");
        assert_eq!(g.members(lab).len(), 0);
        assert_eq!(g.members(dept).len(), 3);
        assert_eq!(g.merge_collection(dept, dept), 0, "self-merge is a no-op");
        assert_eq!(g.members(dept).len(), 3);
    }

    #[test]
    fn name_node_respects_existing_claims() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_named_node("b");
        assert!(g.name_node(a, "a"));
        assert!(!g.name_node(a, "c"), "already named");
        assert!(g.name_node(b, "b"), "same node, same name is ok");
        let c = g.add_node();
        assert!(!g.name_node(c, "a"), "name taken by another node");
    }

    #[test]
    fn import_remaps_oids_edges_and_collections() {
        let src = sample();
        let mut dst = Graph::new();
        // Pre-populate so remapped oids differ from source oids.
        dst.add_named_node("occupant");
        let map = dst.import_graph(&src);
        assert_eq!(dst.node_count(), 1 + src.node_count());

        let p1_src = src.node_by_name("pub1").unwrap();
        let p2_src = src.node_by_name("pub2").unwrap();
        let p1 = map[&p1_src];
        let p2 = map[&p2_src];
        assert_ne!(p1, p1_src, "oid must be remapped");
        assert_eq!(dst.node_by_name("pub1"), Some(p1));
        assert_eq!(
            dst.first_attr_str(p2, "cites"),
            Some(&Value::Node(p1)),
            "node-valued edges are remapped"
        );
        let cid = dst.collection_id("Publications").unwrap();
        assert_eq!(dst.members(cid).len(), 2);
        assert_eq!(dst.edge_count(), src.edge_count());
    }

    #[test]
    fn import_with_name_clash_falls_back_to_anonymous() {
        let mut a = Graph::new();
        let ax = a.add_named_node("x");
        a.add_edge_str(ax, "v", Value::Int(1));
        let mut b = Graph::new();
        let bx = b.add_named_node("x");
        b.add_edge_str(bx, "v", Value::Int(2));
        let map = a.import_graph(&b);
        let imported = map[&bx];
        assert_ne!(imported, ax);
        assert_eq!(a.node_name(imported), None);
        assert_eq!(a.first_attr_str(imported, "v"), Some(&Value::Int(2)));
        assert_eq!(a.first_attr_str(ax, "v"), Some(&Value::Int(1)));
    }

    #[test]
    fn node_ref_view() {
        let g = sample();
        let p1 = g.node_by_name("pub1").unwrap();
        let n = g.node(p1);
        assert_eq!(n.oid(), p1);
        assert_eq!(n.name(), Some("pub1"));
        assert_eq!(n.first("year"), Some(&Value::Int(1998)));
        assert_eq!(n.attr("author").count(), 2);
        assert_eq!(n.edges().len(), 4);
    }

    #[test]
    fn file_values_live_on_edges() {
        let mut g = Graph::new();
        let p = g.add_node();
        g.add_edge_str(p, "abstract", Value::file(FileKind::Text, "abs/p.txt"));
        let v = g.first_attr_str(p, "abstract").unwrap();
        assert!(v.is_file_kind(FileKind::Text));
    }

    #[test]
    fn edges_in_mirrors_forward_edges() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let l = g.intern_label("link");
        let m = g.intern_label("ref");
        g.add_edge(a, l, Value::Node(c));
        g.add_edge(b, m, Value::Node(c));
        g.add_edge(a, l, Value::Int(7)); // atomic target: not indexed
        assert_eq!(
            g.edges_in(c),
            &[InEdge { from: a, label: l }, InEdge { from: b, label: m }]
        );
        assert!(g.edges_in(a).is_empty());
        assert!(g.edges_in(b).is_empty());
    }

    #[test]
    fn edges_in_tracks_removal_and_multi_edges() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let l = g.intern_label("link");
        g.add_edge(a, l, Value::Node(b));
        g.add_edge(a, l, Value::Node(b)); // multigraph: stored twice
        assert_eq!(g.edges_in(b).len(), 2);
        assert!(g.remove_edge(a, l, &Value::Node(b)));
        assert_eq!(g.edges_in(b), &[InEdge { from: a, label: l }]);
        assert!(g.remove_edge(a, l, &Value::Node(b)));
        assert!(g.edges_in(b).is_empty());
        assert!(!g.remove_edge(a, l, &Value::Node(b)));
    }

    #[test]
    fn edges_in_consistent_after_import() {
        let g = sample();
        // Rebuild the reverse index by brute force and compare.
        for target in g.node_oids() {
            let mut expect = Vec::new();
            for from in g.node_oids() {
                for e in g.edges(from) {
                    if e.to == Value::Node(target) {
                        expect.push(InEdge {
                            from,
                            label: e.label,
                        });
                    }
                }
            }
            // The index stores global insertion order; compare as sorted
            // multisets since the forward scan can't reconstruct that.
            let mut got = g.edges_in(target).to_vec();
            got.sort_by_key(|ie| (ie.from.index(), ie.label.index()));
            expect.sort_by_key(|ie| (ie.from.index(), ie.label.index()));
            assert_eq!(got, expect);
        }
    }
}
