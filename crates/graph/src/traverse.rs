//! Graph traversal utilities.
//!
//! Reachability over node-valued edges is what site-level integrity
//! constraints talk about ("all pages are reachable from the site's root",
//! §6.2), what the TextOnly copy query of §2.2 computes, and what the
//! dynamic-evaluation engine walks at click time. These helpers share one
//! efficient implementation: a BFS over a dense `Vec<bool>` visited set
//! keyed by oid index.

use crate::{Graph, Label, Oid, Value};

/// A dense set of nodes keyed by oid index, produced by traversals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    bits: Vec<bool>,
    len: usize,
}

impl NodeSet {
    /// An empty set sized for `graph`.
    pub fn new(graph: &Graph) -> Self {
        NodeSet {
            bits: vec![false; graph.node_count()],
            len: 0,
        }
    }

    /// Inserts a node; returns whether it was newly inserted.
    pub fn insert(&mut self, oid: Oid) -> bool {
        let slot = &mut self.bits[oid.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.len += 1;
            true
        }
    }

    /// Whether the set contains `oid`. Oids beyond the set's capacity (from
    /// nodes created after the set) are reported absent.
    pub fn contains(&self, oid: Oid) -> bool {
        self.bits.get(oid.index()).copied().unwrap_or(false)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates members in oid order.
    pub fn iter(&self) -> impl Iterator<Item = Oid> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| Oid::from_index(i))
    }
}

/// The set of nodes reachable from `roots` by following node-valued edges
/// (any label), including the roots themselves.
pub fn reachable(graph: &Graph, roots: &[Oid]) -> NodeSet {
    reachable_by(graph, roots, |_| true)
}

/// Reachability restricted to edges whose label satisfies `follow`.
pub fn reachable_by(graph: &Graph, roots: &[Oid], follow: impl Fn(Label) -> bool) -> NodeSet {
    let mut seen = NodeSet::new(graph);
    let mut queue: Vec<Oid> = Vec::with_capacity(roots.len());
    for &r in roots {
        if seen.insert(r) {
            queue.push(r);
        }
    }
    while let Some(n) = queue.pop() {
        for e in graph.edges(n) {
            if let Value::Node(m) = e.to {
                if follow(e.label) && seen.insert(m) {
                    queue.push(m);
                }
            }
        }
    }
    seen
}

/// Nodes of the graph *not* reachable from `roots`.
pub fn unreachable_nodes(graph: &Graph, roots: &[Oid]) -> Vec<Oid> {
    let seen = reachable(graph, roots);
    graph.node_oids().filter(|o| !seen.contains(*o)).collect()
}

/// Edges whose target node has no out-edges and no atomic content — the
/// "dangling page" check used by site verification. Returns
/// `(from, label, to)` triples.
pub fn dangling_edges(graph: &Graph) -> Vec<(Oid, Label, Oid)> {
    let mut out = Vec::new();
    for from in graph.node_oids() {
        for e in graph.edges(from) {
            if let Value::Node(to) = e.to {
                if graph.edges(to).is_empty() {
                    out.push((from, e.label, to));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (Graph, Vec<Oid>) {
        // a -> b -> c, d isolated
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_named_node("b");
        let c = g.add_named_node("c");
        let d = g.add_named_node("d");
        g.add_edge_str(a, "next", Value::Node(b));
        g.add_edge_str(b, "next", Value::Node(c));
        g.add_edge_str(c, "label", Value::string("leaf"));
        (g, vec![a, b, c, d])
    }

    #[test]
    fn reachable_includes_roots_and_descendants() {
        let (g, ns) = chain();
        let r = reachable(&g, &[ns[0]]);
        assert!(r.contains(ns[0]));
        assert!(r.contains(ns[1]));
        assert!(r.contains(ns[2]));
        assert!(!r.contains(ns[3]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn unreachable_detects_isolated_nodes() {
        let (g, ns) = chain();
        assert_eq!(unreachable_nodes(&g, &[ns[0]]), vec![ns[3]]);
        assert!(unreachable_nodes(&g, &[ns[0], ns[3]]).is_empty());
    }

    #[test]
    fn reachable_handles_cycles() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge_str(a, "x", Value::Node(b));
        g.add_edge_str(b, "x", Value::Node(a));
        let r = reachable(&g, &[a]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn reachable_by_filters_labels() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let public = g.intern_label("public");
        let private = g.intern_label("private");
        g.add_edge(a, public, Value::Node(b));
        g.add_edge(a, private, Value::Node(c));
        let r = reachable_by(&g, &[a], |l| l == public);
        assert!(r.contains(b));
        assert!(!r.contains(c));
    }

    #[test]
    fn multiple_roots_union() {
        let (g, ns) = chain();
        let r = reachable(&g, &[ns[2], ns[3]]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dangling_edges_finds_contentless_targets() {
        let mut g = Graph::new();
        let a = g.add_node();
        let empty = g.add_node();
        let full = g.add_node();
        g.add_edge_str(full, "t", Value::Int(1));
        g.add_edge_str(a, "to-empty", Value::Node(empty));
        g.add_edge_str(a, "to-full", Value::Node(full));
        let d = dangling_edges(&g);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].2, empty);
    }

    #[test]
    fn node_set_iter_in_oid_order() {
        let (g, ns) = chain();
        let r = reachable(&g, &[ns[0]]);
        let got: Vec<Oid> = r.iter().collect();
        assert_eq!(got, vec![ns[0], ns[1], ns[2]]);
    }

    #[test]
    fn node_set_tolerates_later_nodes() {
        let (mut g, ns) = chain();
        let r = reachable(&g, &[ns[0]]);
        let late = g.add_node();
        assert!(!r.contains(late));
    }
}
