//! Interned edge labels (attribute names).
//!
//! Attribute names recur massively in a semistructured graph — a data graph
//! with 400 people has 400 `name` edges — so labels are interned once into a
//! [`LabelInterner`] and carried as `u32` handles. Equality and hashing on
//! the hot paths of query evaluation are then integer operations, per the
//! performance guidance for database-style Rust.

use std::collections::HashMap;
use std::fmt;

/// An interned edge label (attribute name).
///
/// Only meaningful relative to the [`LabelInterner`] that issued it; graphs
/// own their interner and resolve labels back to strings on demand.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Returns the dense index backing this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a label from a dense index previously obtained from
    /// [`Label::index`] against the same interner.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "label index overflow");
        Label(index as u32)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

/// A string interner for edge labels and collection names.
///
/// Interning is idempotent: the same string always maps to the same
/// [`Label`]. Lookups that must not allocate use [`LabelInterner::get`].
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<Box<str>>,
    by_name: HashMap<Box<str>, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable [`Label`].
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let label = Label::from_index(self.names.len());
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, label);
        label
    }

    /// Returns the label for `name` if it has been interned, without
    /// interning it.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// Resolves a label back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `label` was not issued by this interner.
    pub fn resolve(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned labels in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label::from_index(i), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("title");
        let b = i.intern("title");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_labels() {
        let mut i = LabelInterner::new();
        let a = i.intern("title");
        let b = i.intern("year");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "title");
        assert_eq!(i.resolve(b), "year");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = LabelInterner::new();
        assert_eq!(i.get("author"), None);
        let l = i.intern("author");
        assert_eq!(i.get("author"), Some(l));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_creation_order() {
        let mut i = LabelInterner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let i = LabelInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
