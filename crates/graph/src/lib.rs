//! # strudel-graph
//!
//! The semistructured data model underlying the Strudel web-site management
//! system (Fernández et al., SIGMOD 1998).
//!
//! Every level of Strudel — external source snapshots, the integrated *data
//! graph*, and the generated *site graph* — is a **labeled directed graph**
//! in the style of OEM: objects connected by directed edges labeled with
//! string-valued attribute names. Objects are either *nodes* (identified by
//! a unique [`Oid`]) or *atomic values* ([`Value`]) such as integers,
//! strings, URLs, and typed files. Objects are grouped into named
//! *collections*; an object may belong to several collections, and members
//! of one collection need not share a representation (the defining property
//! of semistructured data).
//!
//! The crate provides:
//!
//! * [`Graph`] — the labeled directed multigraph with named collections;
//! * [`Value`] / [`FileKind`] — atomic types that commonly appear in Web
//!   pages, with the dynamic coercion rules of [`coerce`];
//! * [`Label`] / [`LabelInterner`] — interned attribute names so that the
//!   hot comparison paths of query evaluation are integer operations;
//! * [`SkolemTable`] — deterministic Skolem-function object creation used by
//!   STRUQL's `create` clause (same inputs ⇒ same oid);
//! * [`GraphDelta`] — a replayable batch of mutations, the unit of
//!   incremental maintenance and write-ahead logging;
//! * [`traverse`] — reachability and walk utilities used by verification;
//! * [`ddl`] — reader and printer for Strudel's textual data-definition
//!   language, the exchange format between wrappers and the repository.
//!
//! ## Example
//!
//! ```
//! use strudel_graph::{Graph, Value};
//!
//! let mut g = Graph::new();
//! let pub1 = g.add_named_node("pub1");
//! g.add_edge_str(pub1, "title", Value::string("Catching the Boat with Strudel"));
//! g.add_edge_str(pub1, "year", Value::Int(1998));
//! g.collect_str("Publications", pub1);
//!
//! let title = g.attr_str(pub1, "title").next().unwrap();
//! assert_eq!(title.as_str(), Some("Catching the Boat with Strudel"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coerce;
pub mod ddl;
mod delta;
mod graph;
mod label;
mod oid;
mod skolem;
pub mod traverse;
mod value;

pub use delta::{DeltaError, DeltaOp, GraphDelta};
pub use graph::{CollectionId, Edge, Graph, InEdge, NodeRef};
pub use label::{Label, LabelInterner};
pub use oid::Oid;
pub use skolem::{SkolemKey, SkolemTable};
pub use value::{FileKind, FileRef, Value};
