//! Replayable graph mutations.
//!
//! A [`GraphDelta`] is an ordered batch of mutations against a [`Graph`].
//! It is the unit of:
//!
//! * **write-ahead logging** in the repository — every mutating operation
//!   is recorded as a delta op before being applied;
//! * **incremental maintenance** — the schema crate propagates a data-graph
//!   delta through a site-definition query into a site-graph delta instead
//!   of re-evaluating the query from scratch;
//! * **source refresh** in the mediator — re-wrapping a changed source
//!   yields the delta between old and new snapshots.
//!
//! Labels and collections are recorded *by name* so a delta can be shipped
//! between graphs (and serialized in the WAL); node identity is by oid, so
//! `AddNode` ops must replay in order against a graph with the same node
//! count as when the delta was recorded.

use crate::{Graph, Oid, Value};
use std::fmt;
use std::sync::Arc;

/// One mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Create the next node (its oid is the graph's node count at apply
    /// time), optionally with a symbolic name.
    AddNode {
        /// Symbolic name to attach, if any.
        name: Option<Arc<str>>,
    },
    /// Add `from --label--> to`.
    AddEdge {
        /// Source node.
        from: Oid,
        /// Attribute name.
        label: Arc<str>,
        /// Edge target.
        to: Value,
    },
    /// Remove one occurrence of `from --label--> to`.
    RemoveEdge {
        /// Source node.
        from: Oid,
        /// Attribute name.
        label: Arc<str>,
        /// Edge target.
        to: Value,
    },
    /// Add `member` to the named collection.
    Collect {
        /// Collection name.
        collection: Arc<str>,
        /// The member to add.
        member: Value,
    },
    /// Remove `member` from the named collection.
    Uncollect {
        /// Collection name.
        collection: Arc<str>,
        /// The member to remove.
        member: Value,
    },
}

/// An error applying a delta to a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An op referenced an oid the graph has not issued.
    UnknownNode(Oid),
    /// A `RemoveEdge` did not find its edge.
    MissingEdge {
        /// Source node of the missing edge.
        from: Oid,
        /// Attribute name of the missing edge.
        label: Arc<str>,
    },
    /// An `Uncollect` did not find its member.
    MissingMember {
        /// Collection name.
        collection: Arc<str>,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNode(o) => write!(f, "delta references unknown node {o}"),
            DeltaError::MissingEdge { from, label } => {
                write!(f, "delta removes missing edge {from} -{label}->")
            }
            DeltaError::MissingMember { collection } => {
                write!(f, "delta removes missing member of collection {collection}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered, replayable batch of graph mutations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an arbitrary op.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Records a node creation.
    pub fn add_node(&mut self, name: Option<&str>) {
        self.ops.push(DeltaOp::AddNode {
            name: name.map(Into::into),
        });
    }

    /// Records an edge addition.
    pub fn add_edge(&mut self, from: Oid, label: &str, to: Value) {
        self.ops.push(DeltaOp::AddEdge {
            from,
            label: label.into(),
            to,
        });
    }

    /// Records an edge removal.
    pub fn remove_edge(&mut self, from: Oid, label: &str, to: Value) {
        self.ops.push(DeltaOp::RemoveEdge {
            from,
            label: label.into(),
            to,
        });
    }

    /// Records a collection insertion.
    pub fn collect(&mut self, collection: &str, member: Value) {
        self.ops.push(DeltaOp::Collect {
            collection: collection.into(),
            member,
        });
    }

    /// Records a collection removal.
    pub fn uncollect(&mut self, collection: &str, member: Value) {
        self.ops.push(DeltaOp::Uncollect {
            collection: collection.into(),
            member,
        });
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded ops in order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Appends all ops of `other`.
    pub fn extend(&mut self, other: GraphDelta) {
        self.ops.extend(other.ops);
    }

    /// The edge labels this delta adds or removes, in op order (with
    /// duplicates). Differential maintenance uses these to decide which
    /// query conditions a delta can possibly affect.
    pub fn edge_labels(&self) -> impl Iterator<Item = &str> {
        self.ops.iter().filter_map(|op| match op {
            DeltaOp::AddEdge { label, .. } | DeltaOp::RemoveEdge { label, .. } => {
                Some(label.as_ref())
            }
            _ => None,
        })
    }

    /// The collection names this delta collects into or uncollects from,
    /// in op order (with duplicates).
    pub fn collections(&self) -> impl Iterator<Item = &str> {
        self.ops.iter().filter_map(|op| match op {
            DeltaOp::Collect { collection, .. } | DeltaOp::Uncollect { collection, .. } => {
                Some(collection.as_ref())
            }
            _ => None,
        })
    }

    /// Applies the delta to `graph`, returning the oids of nodes it
    /// created. Application stops at the first failing op, leaving the
    /// prior ops applied (the caller owns atomicity, e.g. by applying to a
    /// clone or by replaying a WAL into a fresh graph).
    pub fn apply(&self, graph: &mut Graph) -> Result<Vec<Oid>, DeltaError> {
        let mut created = Vec::new();
        let check = |graph: &Graph, v: &Value| -> Result<(), DeltaError> {
            if let Value::Node(o) = v {
                if !graph.contains_node(*o) {
                    return Err(DeltaError::UnknownNode(*o));
                }
            }
            Ok(())
        };
        for op in &self.ops {
            match op {
                DeltaOp::AddNode { name } => {
                    let oid = match name {
                        Some(n) => graph.add_named_node(n),
                        None => graph.add_node(),
                    };
                    created.push(oid);
                }
                DeltaOp::AddEdge { from, label, to } => {
                    if !graph.contains_node(*from) {
                        return Err(DeltaError::UnknownNode(*from));
                    }
                    check(graph, to)?;
                    graph.add_edge_str(*from, label, to.clone());
                }
                DeltaOp::RemoveEdge { from, label, to } => {
                    if !graph.contains_node(*from) {
                        return Err(DeltaError::UnknownNode(*from));
                    }
                    let l = graph.label(label).ok_or_else(|| DeltaError::MissingEdge {
                        from: *from,
                        label: label.clone(),
                    })?;
                    if !graph.remove_edge(*from, l, to) {
                        return Err(DeltaError::MissingEdge {
                            from: *from,
                            label: label.clone(),
                        });
                    }
                }
                DeltaOp::Collect { collection, member } => {
                    check(graph, member)?;
                    graph.collect_str(collection, member.clone());
                }
                DeltaOp::Uncollect { collection, member } => {
                    let cid = graph.collection_id(collection).ok_or_else(|| {
                        DeltaError::MissingMember {
                            collection: collection.clone(),
                        }
                    })?;
                    if !graph.uncollect(cid, member) {
                        return Err(DeltaError::MissingMember {
                            collection: collection.clone(),
                        });
                    }
                }
            }
        }
        Ok(created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_builds_a_graph() {
        let mut d = GraphDelta::new();
        d.add_node(Some("pub1"));
        d.add_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d.collect("Publications", Value::Node(Oid::from_index(0)));

        let mut g = Graph::new();
        let created = d.apply(&mut g).unwrap();
        assert_eq!(created.len(), 1);
        let p = g.node_by_name("pub1").unwrap();
        assert_eq!(g.first_attr_str(p, "title").unwrap().as_str(), Some("Strudel"));
        assert_eq!(g.members_str("Publications").len(), 1);
    }

    #[test]
    fn replay_into_fresh_graph_reproduces_state() {
        let mut d = GraphDelta::new();
        d.add_node(None);
        d.add_node(Some("x"));
        d.add_edge(Oid::from_index(1), "points", Value::Node(Oid::from_index(0)));

        let mut g1 = Graph::new();
        d.apply(&mut g1).unwrap();
        let mut g2 = Graph::new();
        d.apply(&mut g2).unwrap();
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        assert_eq!(g1.node_by_name("x"), g2.node_by_name("x"));
    }

    #[test]
    fn remove_then_add_round_trip() {
        let mut g = Graph::new();
        let n = g.add_named_node("n");
        g.add_edge_str(n, "v", Value::Int(1));

        let mut d = GraphDelta::new();
        d.remove_edge(n, "v", Value::Int(1));
        d.add_edge(n, "v", Value::Int(2));
        d.apply(&mut g).unwrap();
        assert_eq!(g.first_attr_str(n, "v"), Some(&Value::Int(2)));
        assert_eq!(g.attr_str(n, "v").count(), 1);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut d = GraphDelta::new();
        d.add_edge(Oid::from_index(7), "x", Value::Int(1));
        let mut g = Graph::new();
        assert_eq!(
            d.apply(&mut g),
            Err(DeltaError::UnknownNode(Oid::from_index(7)))
        );
    }

    #[test]
    fn unknown_edge_target_is_rejected() {
        let mut g = Graph::new();
        let n = g.add_node();
        let mut d = GraphDelta::new();
        d.add_edge(n, "x", Value::Node(Oid::from_index(9)));
        assert!(matches!(
            d.apply(&mut g),
            Err(DeltaError::UnknownNode(_))
        ));
    }

    #[test]
    fn missing_removals_are_rejected() {
        let mut g = Graph::new();
        let n = g.add_node();
        let mut d = GraphDelta::new();
        d.remove_edge(n, "nope", Value::Int(1));
        assert!(matches!(d.apply(&mut g), Err(DeltaError::MissingEdge { .. })));

        let mut d2 = GraphDelta::new();
        d2.uncollect("NoColl", Value::Int(1));
        assert!(matches!(
            d2.apply(&mut g),
            Err(DeltaError::MissingMember { .. })
        ));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = GraphDelta::new();
        a.add_node(None);
        let mut b = GraphDelta::new();
        b.add_node(None);
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
