//! Recursive-descent parser for the DDL.

use super::lexer::{lex, Token, TokenKind};
use super::DdlError;
use crate::{FileKind, Graph, Oid, Value};
use std::collections::HashSet;

/// Parses a DDL document into a fresh graph.
pub fn parse(src: &str) -> Result<Graph, DdlError> {
    let mut g = Graph::new();
    parse_into(src, &mut g)?;
    Ok(g)
}

/// Parses a DDL document, merging its contents into `graph`.
///
/// Objects named in `graph` before the call count as defined, so a
/// multi-file site may reference objects across files in any order.
pub fn parse_into(src: &str, graph: &mut Graph) -> Result<(), DdlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        graph,
        defined: HashSet::new(),
        referenced: Vec::new(),
        defaults: Vec::new(),
    };
    p.document()
}

/// A `default attr : kind` directive, pending application.
struct Default {
    collection: String,
    attr: String,
    kind: DefaultKind,
}

enum DefaultKind {
    File(FileKind),
    Url,
}

struct Parser<'g> {
    tokens: Vec<Token>,
    pos: usize,
    graph: &'g mut Graph,
    defined: HashSet<String>,
    referenced: Vec<(String, u32, u32)>,
    defaults: Vec<Default>,
}

impl<'g> Parser<'g> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> DdlError {
        let t = self.peek();
        DdlError::new(t.line, t.col, msg)
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<Token, DdlError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, DdlError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                if let TokenKind::Ident(s) = self.advance().kind {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind))),
        }
    }

    fn document(&mut self) -> Result<(), DdlError> {
        // Pre-existing named nodes count as defined.
        let preexisting: Vec<String> = self
            .graph
            .node_oids()
            .filter_map(|o| self.graph.node_name(o).map(str::to_owned))
            .collect();
        self.defined.extend(preexisting);

        while self.peek().kind != TokenKind::Eof {
            let kw = self.expect_ident("'object', 'collection', or 'collect'")?;
            match kw.as_str() {
                "object" => self.object_stmt()?,
                "collection" => self.collection_stmt()?,
                "collect" => self.collect_stmt()?,
                other => {
                    return Err(self.err_here(format!(
                        "expected 'object', 'collection', or 'collect', found '{other}'"
                    )))
                }
            }
        }
        self.check_references()?;
        self.apply_defaults();
        Ok(())
    }

    fn object_stmt(&mut self) -> Result<(), DdlError> {
        let name = self.expect_ident("object name")?;
        let oid = self.graph.add_named_node(&name);
        self.defined.insert(name);
        if matches!(&self.peek().kind, TokenKind::Ident(k) if k == "in") {
            self.advance();
            loop {
                let coll = self.expect_ident("collection name")?;
                let cid = self.graph.intern_collection(&coll);
                self.graph.collect(cid, Value::Node(oid));
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect_kind(&TokenKind::LBrace, "'{'")?;
        self.attr_block(oid)?;
        Ok(())
    }

    /// Parses `attr : value ; …` up to and including the closing `}`.
    fn attr_block(&mut self, oid: Oid) -> Result<(), DdlError> {
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.advance();
                    return Ok(());
                }
                TokenKind::Ident(_) => {
                    let attr = self.expect_ident("attribute name")?;
                    self.expect_kind(&TokenKind::Colon, "':'")?;
                    let value = self.value()?;
                    self.graph.add_edge_str(oid, &attr, value);
                    self.expect_kind(&TokenKind::Semi, "';'")?;
                }
                _ => return Err(self.err_here("expected attribute name or '}'")),
            }
        }
    }

    fn value(&mut self) -> Result<Value, DdlError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Str(s) => {
                self.advance();
                Ok(Value::string(s))
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Value::Int(i))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Value::Float(x))
            }
            TokenKind::Ref(name) => {
                self.advance();
                self.referenced.push((name.clone(), tok.line, tok.col));
                Ok(Value::Node(self.graph.add_named_node(&name)))
            }
            TokenKind::LBrace => {
                self.advance();
                let anon = self.graph.add_node();
                self.attr_block(anon)?;
                Ok(Value::Node(anon))
            }
            TokenKind::Ident(word) => {
                self.advance();
                match word.as_str() {
                    "true" => return Ok(Value::Bool(true)),
                    "false" => return Ok(Value::Bool(false)),
                    _ => {}
                }
                // `kind("path")` or `url("…")`
                self.expect_kind(&TokenKind::LParen, "'(' after typed-value keyword")?;
                let lit = match self.advance().kind {
                    TokenKind::Str(s) => s,
                    other => {
                        return Err(DdlError::new(
                            tok.line,
                            tok.col,
                            format!("expected string inside {word}(…), found {other:?}"),
                        ))
                    }
                };
                self.expect_kind(&TokenKind::RParen, "')'")?;
                if word == "url" {
                    Ok(Value::url(lit))
                } else if let Some(kind) = FileKind::from_keyword(&word) {
                    Ok(Value::file(kind, lit))
                } else {
                    Err(DdlError::new(
                        tok.line,
                        tok.col,
                        format!("unknown value type '{word}' (expected url, text, image, postscript, or html)"),
                    ))
                }
            }
            other => Err(self.err_here(format!("expected a value, found {other:?}"))),
        }
    }

    fn collection_stmt(&mut self) -> Result<(), DdlError> {
        let name = self.expect_ident("collection name")?;
        self.graph.intern_collection(&name);
        self.expect_kind(&TokenKind::LBrace, "'{'")?;
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.advance();
                    return Ok(());
                }
                TokenKind::Ident(kw) if kw == "default" => {
                    self.advance();
                    let attr = self.expect_ident("attribute name")?;
                    self.expect_kind(&TokenKind::Colon, "':'")?;
                    let kw_tok = self.peek().clone();
                    let kind_word = self.expect_ident("value kind")?;
                    let kind = if kind_word == "url" {
                        DefaultKind::Url
                    } else if let Some(k) = FileKind::from_keyword(&kind_word) {
                        DefaultKind::File(k)
                    } else {
                        return Err(DdlError::new(
                            kw_tok.line,
                            kw_tok.col,
                            format!("unknown default kind '{kind_word}'"),
                        ));
                    };
                    self.expect_kind(&TokenKind::Semi, "';'")?;
                    self.defaults.push(Default {
                        collection: name.clone(),
                        attr,
                        kind,
                    });
                }
                _ => return Err(self.err_here("expected 'default' directive or '}'")),
            }
        }
    }

    fn collect_stmt(&mut self) -> Result<(), DdlError> {
        let name = self.expect_ident("collection name")?;
        let cid = self.graph.intern_collection(&name);
        self.expect_kind(&TokenKind::LParen, "'('")?;
        loop {
            let tok = self.peek().clone();
            let member = match tok.kind {
                TokenKind::Ident(obj) => {
                    self.advance();
                    self.referenced.push((obj.clone(), tok.line, tok.col));
                    Value::Node(self.graph.add_named_node(&obj))
                }
                TokenKind::Ref(obj) => {
                    self.advance();
                    self.referenced.push((obj.clone(), tok.line, tok.col));
                    Value::Node(self.graph.add_named_node(&obj))
                }
                TokenKind::Str(s) => {
                    self.advance();
                    Value::string(s)
                }
                TokenKind::Int(i) => {
                    self.advance();
                    Value::Int(i)
                }
                TokenKind::Float(x) => {
                    self.advance();
                    Value::Float(x)
                }
                other => {
                    return Err(self.err_here(format!(
                        "expected collection member, found {other:?}"
                    )))
                }
            };
            self.graph.collect(cid, member);
            match self.peek().kind {
                TokenKind::Comma => {
                    self.advance();
                }
                TokenKind::RParen => {
                    self.advance();
                    break;
                }
                _ => return Err(self.err_here("expected ',' or ')'")),
            }
        }
        self.expect_kind(&TokenKind::Semi, "';'")?;
        Ok(())
    }

    fn check_references(&self) -> Result<(), DdlError> {
        for (name, line, col) in &self.referenced {
            if !self.defined.contains(name) {
                return Err(DdlError::new(
                    *line,
                    *col,
                    format!("reference to undefined object '{name}'"),
                ));
            }
        }
        Ok(())
    }

    /// Retypes bare-string attribute values on collection members per the
    /// `default` directives. Explicit typed values are untouched — the
    /// directives "are not constraints and can be overridden".
    fn apply_defaults(&mut self) {
        for d in &self.defaults {
            let Some(cid) = self.graph.collection_id(&d.collection) else {
                continue;
            };
            let Some(label) = self.graph.label(&d.attr) else {
                continue;
            };
            let members: Vec<Oid> = self
                .graph
                .members(cid)
                .iter()
                .filter_map(Value::as_node)
                .collect();
            for oid in members {
                let retyped: Vec<(Value, Value)> = self
                    .graph
                    .attr(oid, label)
                    .filter_map(|v| match v {
                        Value::Str(s) => {
                            let new = match &d.kind {
                                DefaultKind::Url => Value::url(s.clone()),
                                DefaultKind::File(k) => Value::file(*k, s.clone()),
                            };
                            Some((v.clone(), new))
                        }
                        _ => None,
                    })
                    .collect();
                for (old, new) in retyped {
                    self.graph.remove_edge(oid, label, &old);
                    self.graph.add_edge(oid, label, new);
                }
            }
        }
    }
}
