//! DDL printer: renders a graph back to the textual format.

use crate::{Graph, Oid, Value};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders `graph` as a DDL document.
///
/// Anonymous nodes receive generated `_anonN` names so that references stay
/// expressible; `parse(print(g))` reconstructs a graph isomorphic to `g`
/// (same node/edge/membership counts, same attribute values). `default`
/// directives are not reconstructed — values are printed with their actual
/// types, which is equivalent and unambiguous.
pub fn print(graph: &Graph) -> String {
    let mut out = String::with_capacity(64 * graph.node_count());
    out.push_str("# Strudel data graph\n");

    // Stable printable names for every node.
    let mut names: HashMap<Oid, String> = HashMap::with_capacity(graph.node_count());
    let mut anon = 0usize;
    for oid in graph.node_oids() {
        let name = match graph.node_name(oid) {
            Some(n) => n.to_owned(),
            None => loop {
                let candidate = format!("_anon{anon}");
                anon += 1;
                if graph.node_by_name(&candidate).is_none() {
                    break candidate;
                }
            },
        };
        names.insert(oid, name);
    }

    // Node memberships, preserving collection declaration order.
    let mut memberships: HashMap<Oid, Vec<&str>> = HashMap::new();
    for (cid, cname) in graph.collections() {
        for m in graph.members(cid) {
            if let Value::Node(o) = m {
                memberships.entry(*o).or_default().push(cname);
            }
        }
    }

    for oid in graph.node_oids() {
        write!(out, "object {}", names[&oid]).unwrap();
        if let Some(colls) = memberships.get(&oid) {
            write!(out, " in {}", colls.join(", ")).unwrap();
        }
        out.push_str(" {\n");
        for e in graph.edges(oid) {
            write!(out, "  {} : ", graph.label_name(e.label)).unwrap();
            print_value(&mut out, &e.to, &names);
            out.push_str(";\n");
        }
        out.push_str("}\n");
    }

    // Atomic collection members are not expressible on object headers.
    for (cid, cname) in graph.collections() {
        let atomics: Vec<&Value> = graph
            .members(cid)
            .iter()
            .filter(|m| m.is_atomic())
            .collect();
        if atomics.is_empty() {
            continue;
        }
        write!(out, "collect {cname}(").unwrap();
        for (i, v) in atomics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            print_value(&mut out, v, &names);
        }
        out.push_str(");\n");
    }
    out
}

fn print_value(out: &mut String, v: &Value, names: &HashMap<Oid, String>) {
    match v {
        Value::Node(o) => {
            out.push('&');
            out.push_str(&names[o]);
        }
        Value::Int(i) => {
            write!(out, "{i}").unwrap();
        }
        Value::Float(x) => {
            write!(out, "{}", crate::value::format_float(*x)).unwrap();
        }
        Value::Bool(b) => {
            out.push_str(if *b { "true" } else { "false" });
        }
        Value::Str(s) => print_string(out, s),
        Value::Url(u) => {
            out.push_str("url(");
            print_string(out, u);
            out.push(')');
        }
        Value::File(f) => {
            out.push_str(f.kind.keyword());
            out.push('(');
            print_string(out, &f.path);
            out.push(')');
        }
    }
}

fn print_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse;
    use crate::FileKind;

    #[test]
    fn anonymous_nodes_get_fresh_names() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_named_node("_anon0"); // squat on the obvious candidate
        g.add_edge_str(a, "v", Value::Int(1));
        let text = print(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.node_count(), 2);
    }

    #[test]
    fn atomic_collection_members_round_trip() {
        let mut g = Graph::new();
        g.collect_str("Years", Value::Int(1997));
        g.collect_str("Years", Value::string("ninety-eight"));
        let g2 = parse(&print(&g)).unwrap();
        let members = g2.members_str("Years");
        assert_eq!(members.len(), 2);
        assert!(members.contains(&Value::Int(1997)));
    }

    #[test]
    fn all_value_types_round_trip() {
        let mut g = Graph::new();
        let n = g.add_named_node("n");
        let m = g.add_named_node("m");
        g.add_edge_str(n, "i", Value::Int(-5));
        g.add_edge_str(n, "f", Value::Float(2.5));
        g.add_edge_str(n, "b", Value::Bool(true));
        g.add_edge_str(n, "s", Value::string("hi"));
        g.add_edge_str(n, "u", Value::url("http://x"));
        g.add_edge_str(n, "p", Value::file(FileKind::PostScript, "a.ps"));
        g.add_edge_str(n, "r", Value::Node(m));
        let g2 = parse(&print(&g)).unwrap();
        let n2 = g2.node_by_name("n").unwrap();
        let m2 = g2.node_by_name("m").unwrap();
        assert_eq!(g2.first_attr_str(n2, "i"), Some(&Value::Int(-5)));
        assert_eq!(g2.first_attr_str(n2, "f"), Some(&Value::Float(2.5)));
        assert_eq!(g2.first_attr_str(n2, "b"), Some(&Value::Bool(true)));
        assert_eq!(g2.first_attr_str(n2, "s"), Some(&Value::string("hi")));
        assert_eq!(g2.first_attr_str(n2, "u"), Some(&Value::url("http://x")));
        assert_eq!(
            g2.first_attr_str(n2, "p"),
            Some(&Value::file(FileKind::PostScript, "a.ps"))
        );
        assert_eq!(g2.first_attr_str(n2, "r"), Some(&Value::Node(m2)));
    }
}
