//! Tokenizer for the DDL.

use super::DdlError;

/// What a token is.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`object`, `collection`, attribute names…).
    Ident(String),
    /// A double-quoted string literal, unescaped.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `&name` — a reference to a named object.
    Ref(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes a DDL document. The final token is always `Eof`.
pub fn lex(src: &str) -> Result<Vec<Token>, DdlError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'{' => {
                tokens.push(Token { kind: TokenKind::LBrace, line: tl, col: tc });
                bump!();
            }
            b'}' => {
                tokens.push(Token { kind: TokenKind::RBrace, line: tl, col: tc });
                bump!();
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, line: tl, col: tc });
                bump!();
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, line: tl, col: tc });
                bump!();
            }
            b':' => {
                tokens.push(Token { kind: TokenKind::Colon, line: tl, col: tc });
                bump!();
            }
            b';' => {
                tokens.push(Token { kind: TokenKind::Semi, line: tl, col: tc });
                bump!();
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, line: tl, col: tc });
                bump!();
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() || bytes[i] == b'\n' {
                        return Err(DdlError::new(tl, tc, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            if i >= bytes.len() {
                                return Err(DdlError::new(tl, tc, "unterminated string literal"));
                            }
                            let esc = bytes[i];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(DdlError::new(
                                        line,
                                        col,
                                        format!("unknown escape '\\{}'", other as char),
                                    ))
                                }
                            });
                            bump!();
                        }
                        _ => {
                            // Consume one UTF-8 scalar, not one byte.
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("in-bounds char");
                            s.push(ch);
                            for _ in 0..ch.len_utf8() {
                                bump!();
                            }
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), line: tl, col: tc });
            }
            b'&' => {
                bump!();
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    bump!();
                }
                if start == i {
                    return Err(DdlError::new(tl, tc, "expected object name after '&'"));
                }
                tokens.push(Token {
                    kind: TokenKind::Ref(src[start..i].to_string()),
                    line: tl,
                    col: tc,
                });
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = i;
                bump!();
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => bump!(),
                        b'.' | b'e' | b'E' => {
                            is_float = true;
                            bump!();
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                bump!();
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        DdlError::new(tl, tc, format!("invalid float literal '{text}'"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        DdlError::new(tl, tc, format!("invalid integer literal '{text}'"))
                    })?)
                };
                tokens.push(Token { kind, line: tl, col: tc });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    bump!();
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(DdlError::new(
                    tl,
                    tc,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("object a { t : 1; }"),
            vec![
                Ident("object".into()),
                Ident("a".into()),
                LBrace,
                Ident("t".into()),
                Colon,
                Int(1),
                Semi,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# whole line\nx // trailing\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\\c\nd\te""#),
            vec![TokenKind::Str("a\"b\\c\nd\te".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 -3 4.5 -1.5e3"),
            vec![
                TokenKind::Int(12),
                TokenKind::Int(-3),
                TokenKind::Float(4.5),
                TokenKind::Float(-1500.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn refs() {
        assert_eq!(
            kinds("&pub1"),
            vec![TokenKind::Ref("pub1".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_escape_errors() {
        assert!(lex(r#""\q""#).is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("\"caf\u{e9} \u{1F980}\""),
            vec![TokenKind::Str("caf\u{e9} \u{1F980}".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unexpected_character_errors_with_position() {
        let err = lex("a @").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
    }
}
