//! The Strudel data-definition language.
//!
//! Wrappers and the repository exchange graphs in a textual format "in the
//! style of OEM's data definition language" (§2.1). Our concrete syntax:
//!
//! ```text
//! # Declare per-collection default value kinds (§2.3: "the collection
//! # directive specifies the default types of attribute values that would
//! # otherwise be interpreted as strings"). Not constraints — an explicit
//! # typed value in the input overrides them.
//! collection Publications {
//!   default abstract   : text;
//!   default postscript : postscript;
//!   default homepage   : url;
//! }
//!
//! object pub1 in Publications {
//!   title     : "Catching the Boat with Strudel";
//!   year      : 1998;
//!   author    : "Mary Fernandez";
//!   author    : "Dan Suciu";
//!   abstract  : "abstracts/pub1.txt";      # string, typed text by default
//!   slides    : image("slides/pub1.gif");  # explicitly typed
//!   cites     : &pub2;                     # reference to a named object
//!   address   : {                          # nested anonymous object
//!     city : "Florham Park";
//!     zip  : 07932;
//!   };
//! }
//!
//! collect Publications(pub2, pub3);        # membership without attributes
//! ```
//!
//! Values: double-quoted strings (with `\"`, `\\`, `\n`, `\t` escapes),
//! integers, floats, `true`/`false`, `url("…")`, `text|image|postscript|
//! html("…")` files, `&name` references (forward references allowed), and
//! `{ … }` nested anonymous objects. Comments run from `#` or `//` to end
//! of line.
//!
//! [`parse`] reads a DDL document into a fresh
//! [`Graph`](crate::Graph); [`parse_into`] merges a document into an
//! existing graph (multi-file sites). [`print()`](fn@print) renders a graph
//! back to DDL; `parse(print(g))` is graph-isomorphic to `g`.

mod lexer;
mod parser;
mod printer;

pub use lexer::{Token, TokenKind};
pub use parser::{parse, parse_into};
pub use printer::print;

use std::fmt;

/// A DDL syntax or semantic error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DdlError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl DdlError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        DdlError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for DdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ddl error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for DdlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, Value};

    const SAMPLE: &str = r#"
        # A fragment of the Fig. 2 data graph.
        collection Publications {
          default abstract   : text;
          default postscript : postscript;
        }

        object pub1 in Publications {
          title    : "Real-world data: the good, the bad";
          year     : 1997;
          month    : "June";
          author   : "Mary Fernandez";
          abstract : "abstracts/pub1.txt";
          cites    : &pub2;
        }

        object pub2 in Publications {
          title     : "Managing semistructured data";
          year      : 1998;
          booktitle : "SIGMOD";
          postscript: "papers/pub2.ps";
        }
    "#;

    #[test]
    fn parse_sample_builds_expected_graph() {
        let g = parse(SAMPLE).unwrap();
        assert_eq!(g.members_str("Publications").len(), 2);
        let p1 = g.node_by_name("pub1").unwrap();
        let p2 = g.node_by_name("pub2").unwrap();
        assert_eq!(g.first_attr_str(p1, "year"), Some(&Value::Int(1997)));
        assert_eq!(g.first_attr_str(p1, "cites"), Some(&Value::Node(p2)));
        // defaults typed the bare strings
        assert!(g
            .first_attr_str(p1, "abstract")
            .unwrap()
            .is_file_kind(FileKind::Text));
        assert!(g
            .first_attr_str(p2, "postscript")
            .unwrap()
            .is_file_kind(FileKind::PostScript));
        // irregular schema: month on pub1 only, booktitle on pub2 only
        assert_eq!(g.attr_str(p2, "month").count(), 0);
        assert_eq!(g.attr_str(p1, "booktitle").count(), 0);
    }

    #[test]
    fn explicit_types_override_defaults() {
        let src = r#"
            collection C { default a : text; }
            object x in C { a : image("pic.gif"); b : "plain"; }
        "#;
        let g = parse(src).unwrap();
        let x = g.node_by_name("x").unwrap();
        assert!(g.first_attr_str(x, "a").unwrap().is_file_kind(FileKind::Image));
        assert_eq!(g.first_attr_str(x, "b").unwrap().as_str(), Some("plain"));
    }

    #[test]
    fn nested_objects_become_anonymous_nodes() {
        let src = r#"
            object p {
              name    : "Mary";
              address : { city : "Florham Park"; zip : 07932; };
            }
        "#;
        let g = parse(src).unwrap();
        let p = g.node_by_name("p").unwrap();
        let addr = g.first_attr_str(p, "address").unwrap().as_node().unwrap();
        assert_eq!(
            g.first_attr_str(addr, "city").unwrap().as_str(),
            Some("Florham Park")
        );
        assert_eq!(g.first_attr_str(addr, "zip"), Some(&Value::Int(7932)));
    }

    #[test]
    fn forward_references_resolve() {
        let src = r#"
            object a { friend : &b; }
            object b { name : "B"; }
        "#;
        let g = parse(src).unwrap();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(g.first_attr_str(a, "friend"), Some(&Value::Node(b)));
    }

    #[test]
    fn collect_statement_adds_membership() {
        let src = r#"
            object a {}
            object b {}
            collect Things(a, b);
        "#;
        let g = parse(src).unwrap();
        assert_eq!(g.members_str("Things").len(), 2);
    }

    #[test]
    fn round_trip_print_parse() {
        let g = parse(SAMPLE).unwrap();
        let text = print(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.members_str("Publications").len(),
            g.members_str("Publications").len()
        );
        let p1 = g2.node_by_name("pub1").unwrap();
        assert!(g2
            .first_attr_str(p1, "abstract")
            .unwrap()
            .is_file_kind(FileKind::Text));
        assert_eq!(
            g2.first_attr_str(p1, "cites"),
            Some(&Value::Node(g2.node_by_name("pub2").unwrap()))
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("object {").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected"), "{}", err.message);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = parse("object a { t: \"oops }").unwrap_err();
        assert!(err.message.contains("unterminated"), "{}", err.message);
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let err = parse("object a { x : &ghost; }").unwrap_err();
        assert!(err.message.contains("ghost"), "{}", err.message);
    }

    #[test]
    fn parse_into_merges_documents() {
        let mut g = parse("object a { v : 1; }").unwrap();
        parse_into("object a { w : 2; } object b { v : 3; }", &mut g).unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(g.attr_str(a, "v").count(), 1);
        assert_eq!(g.attr_str(a, "w").count(), 1);
        assert!(g.node_by_name("b").is_some());
    }

    #[test]
    fn string_escapes_round_trip() {
        let src = "object a { s : \"line\\nbreak \\\"quoted\\\" back\\\\slash\"; }";
        let g = parse(src).unwrap();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(
            g.first_attr_str(a, "s").unwrap().as_str(),
            Some("line\nbreak \"quoted\" back\\slash")
        );
        let g2 = parse(&print(&g)).unwrap();
        let a2 = g2.node_by_name("a").unwrap();
        assert_eq!(
            g2.first_attr_str(a2, "s").unwrap().as_str(),
            Some("line\nbreak \"quoted\" back\\slash")
        );
    }

    #[test]
    fn url_default_coerces_strings() {
        let src = r#"
            collection People { default homepage : url; }
            object m in People { homepage : "http://example.org/m"; }
        "#;
        let g = parse(src).unwrap();
        let m = g.node_by_name("m").unwrap();
        assert!(matches!(
            g.first_attr_str(m, "homepage"),
            Some(Value::Url(u)) if u.as_ref() == "http://example.org/m"
        ));
    }
}
