//! Object identifiers.

use std::fmt;

/// A unique object identifier for an internal node of a [`Graph`].
///
/// Oids are dense `u32` indexes assigned by the graph in creation order,
/// which keeps per-node storage in flat vectors and makes oid sets cheap to
/// represent as bitsets during traversal. An oid is only meaningful relative
/// to the graph that issued it.
///
/// [`Graph`]: crate::Graph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub(crate) u32);

impl Oid {
    /// Returns the dense index backing this oid.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an oid from a dense index.
    ///
    /// The caller is responsible for only using indexes previously obtained
    /// from [`Oid::index`] on the same graph; a fabricated oid makes graph
    /// accessors panic or return empty results.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "oid index overflow");
        Oid(index as u32)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_round_trips_through_index() {
        let oid = Oid::from_index(42);
        assert_eq!(oid.index(), 42);
        assert_eq!(Oid::from_index(oid.index()), oid);
    }

    #[test]
    fn oid_display_uses_ampersand() {
        assert_eq!(Oid(7).to_string(), "&7");
        assert_eq!(format!("{:?}", Oid(7)), "&7");
    }

    #[test]
    fn oid_ordering_follows_index() {
        assert!(Oid(1) < Oid(2));
        assert_eq!(Oid(3), Oid(3));
    }
}
