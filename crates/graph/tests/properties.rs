//! Property-based tests for the core graph data structures, driven by a
//! deterministic seeded PRNG (every case is reproducible from its seed).

use strudel_graph::ddl;
use strudel_graph::{coerce, FileKind, Graph, GraphDelta, Oid, SkolemTable, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};

/// A random string drawn from an alphabet, length in `[lo, hi)`.
fn rand_string(rng: &mut SmallRng, alphabet: &[char], lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..hi.max(lo + 1));
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn ident_alphabet() -> Vec<char> {
    ('a'..='z').collect()
}

fn text_alphabet() -> Vec<char> {
    let mut a: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
    a.extend([' ', '_', '.', '/', ':', '-']);
    a
}

/// An arbitrary atomic (non-node) value.
fn atomic_value(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::Int(rng.next_u64() as i64),
        1 => Value::Bool(rng.gen_bool(0.5)),
        // Finite floats: NaN deliberately breaks coercing comparability.
        2 => Value::Float(rng.gen_range(-1e12f64..1e12)),
        3 => Value::string(rand_string(rng, &text_alphabet(), 0, 24)),
        4 => Value::url(rand_string(rng, &ident_alphabet(), 1, 24)),
        _ => {
            let kind = [
                FileKind::Text,
                FileKind::Image,
                FileKind::PostScript,
                FileKind::Html,
            ][rng.gen_range(0..4usize)];
            Value::file(kind, rand_string(rng, &ident_alphabet(), 1, 16))
        }
    }
}

/// A recipe for building a random graph: node count plus edge endpoints.
#[derive(Debug, Clone)]
struct GraphRecipe {
    nodes: usize,
    edges: Vec<(usize, String, EdgeTarget)>,
    collections: Vec<(String, usize)>,
}

#[derive(Debug, Clone)]
enum EdgeTarget {
    Node(usize),
    Atomic(Value),
}

fn graph_recipe(rng: &mut SmallRng) -> GraphRecipe {
    let nodes = rng.gen_range(1..20usize);
    let n_edges = rng.gen_range(0..40usize);
    let edges = (0..n_edges)
        .map(|_| {
            let from = rng.gen_range(0..nodes);
            let label = rand_string(rng, &ident_alphabet(), 1, 6);
            let target = if rng.gen_bool(0.5) {
                EdgeTarget::Node(rng.gen_range(0..nodes))
            } else {
                EdgeTarget::Atomic(atomic_value(rng))
            };
            (from, label, target)
        })
        .collect();
    let n_colls = rng.gen_range(0..10usize);
    let collections = (0..n_colls)
        .map(|_| {
            let mut name = rand_string(rng, &ident_alphabet(), 1, 6);
            name[..1].make_ascii_uppercase();
            (name, rng.gen_range(0..nodes))
        })
        .collect();
    GraphRecipe {
        nodes,
        edges,
        collections,
    }
}

fn build(recipe: &GraphRecipe) -> Graph {
    let mut g = Graph::new();
    let oids: Vec<Oid> = (0..recipe.nodes)
        .map(|i| g.add_named_node(&format!("n{i}")))
        .collect();
    for (from, label, target) in &recipe.edges {
        let to = match target {
            EdgeTarget::Node(i) => Value::Node(oids[*i]),
            EdgeTarget::Atomic(v) => v.clone(),
        };
        g.add_edge_str(oids[*from], label, to);
    }
    for (name, member) in &recipe.collections {
        g.collect_str(name.as_str(), oids[*member]);
    }
    g
}

const CASES: u64 = 64;

/// print ∘ parse is the identity up to graph isomorphism: node, edge,
/// and membership counts and per-node attribute multisets survive.
#[test]
fn ddl_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let recipe = graph_recipe(&mut rng);
        let g = build(&recipe);
        let text = ddl::print(&g);
        let g2 = ddl::parse(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count(), "seed {seed}");
        assert_eq!(g2.edge_count(), g.edge_count(), "seed {seed}");
        assert_eq!(g2.collection_count(), g.collection_count(), "seed {seed}");
        for oid in g.node_oids() {
            let name = g.node_name(oid).unwrap();
            let oid2 = g2.node_by_name(name).unwrap();
            assert_eq!(g.edges(oid).len(), g2.edges(oid2).len(), "seed {seed}");
            // Atomic attribute values survive exactly (node targets get
            // remapped oids, so compare only atomics).
            let mut atoms: Vec<(String, Value)> = g
                .edges(oid)
                .iter()
                .filter(|e| e.to.is_atomic())
                .map(|e| (g.label_name(e.label).to_owned(), e.to.clone()))
                .collect();
            let mut atoms2: Vec<(String, Value)> = g2
                .edges(oid2)
                .iter()
                .filter(|e| e.to.is_atomic())
                .map(|e| (g2.label_name(e.label).to_owned(), e.to.clone()))
                .collect();
            atoms.sort();
            atoms2.sort();
            assert_eq!(atoms, atoms2, "seed {seed}");
        }
    }
}

/// Importing a graph into an empty graph preserves structure.
#[test]
fn import_preserves_counts() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let recipe = graph_recipe(&mut rng);
        let g = build(&recipe);
        let mut dst = Graph::new();
        let map = dst.import_graph(&g);
        assert_eq!(dst.node_count(), g.node_count(), "seed {seed}");
        assert_eq!(dst.edge_count(), g.edge_count(), "seed {seed}");
        assert_eq!(map.len(), g.node_count(), "seed {seed}");
        for oid in g.node_oids() {
            assert_eq!(g.edges(oid).len(), dst.edges(map[&oid]).len(), "seed {seed}");
        }
    }
}

/// Coercing comparison is antisymmetric and eq is reflexive on
/// comparable values.
#[test]
fn coerce_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1_000 + seed);
        let a = atomic_value(&mut rng);
        let b = atomic_value(&mut rng);
        let ab = coerce::compare(&a, &b);
        let ba = coerce::compare(&b, &a);
        assert_eq!(
            ab.map(std::cmp::Ordering::reverse),
            ba,
            "seed {seed}: {a:?} vs {b:?}"
        );
        assert!(coerce::eq(&a, &a), "seed {seed}: {a:?}");
    }
}

/// Structural Ord on Value is a total order consistent with Eq/Hash.
#[test]
fn value_total_order() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2_000 + seed);
        let n = rng.gen_range(1..12usize);
        let mut vs: Vec<Value> = (0..n).map(|_| atomic_value(&mut rng)).collect();
        vs.sort();
        for w in vs.windows(2) {
            assert!(w[0] <= w[1], "seed {seed}");
        }
    }
}

/// Skolem functions are functions: equal argument vectors always map
/// to the oid minted first, distinct vectors to distinct oids.
#[test]
fn skolem_is_functional() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(3_000 + seed);
        let n = rng.gen_range(0..4usize);
        let args: Vec<Value> = (0..n).map(|_| atomic_value(&mut rng)).collect();
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let (a, first) = t.apply(&mut g, "F", &args);
        assert!(first, "seed {seed}");
        let (b, again) = t.apply(&mut g, "F", &args);
        assert_eq!(a, b, "seed {seed}");
        assert!(!again, "seed {seed}");
        let (c, _) = t.apply(&mut g, "G", &args);
        assert_ne!(a, c, "seed {seed}");
    }
}

/// A recorded delta replays into an empty graph deterministically.
#[test]
fn delta_replay_is_deterministic() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(4_000 + seed);
        let recipe = graph_recipe(&mut rng);
        let mut d = GraphDelta::new();
        for i in 0..recipe.nodes {
            d.add_node(Some(&format!("n{i}")));
        }
        for (from, label, target) in &recipe.edges {
            let to = match target {
                EdgeTarget::Node(i) => Value::Node(Oid::from_index(*i)),
                EdgeTarget::Atomic(v) => v.clone(),
            };
            d.add_edge(Oid::from_index(*from), label, to);
        }
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        d.apply(&mut g1).unwrap();
        d.apply(&mut g2).unwrap();
        assert_eq!(g1.node_count(), g2.node_count(), "seed {seed}");
        assert_eq!(g1.edge_count(), g2.edge_count(), "seed {seed}");
        for oid in g1.node_oids() {
            assert_eq!(g1.edges(oid), g2.edges(oid), "seed {seed}");
        }
    }
}

/// The DDL parser never panics on arbitrary input.
#[test]
fn ddl_parser_total() {
    // A hostile alphabet: printable ASCII plus syntax-adjacent unicode.
    let mut alphabet: Vec<char> = (' '..='~').collect();
    alphabet.extend(['\n', '\t', 'é', 'λ', '→', '\u{1F600}', '"', '\\']);
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(5_000 + seed);
        let s = rand_string(&mut rng, &alphabet, 0, 200);
        let _ = ddl::parse(&s);
    }
}
