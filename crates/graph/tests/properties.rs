//! Property-based tests for the core graph data structures.

use proptest::prelude::*;
use strudel_graph::ddl;
use strudel_graph::{coerce, FileKind, Graph, GraphDelta, Oid, SkolemTable, Value};

/// An arbitrary atomic (non-node) value.
fn atomic_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Finite floats: NaN deliberately breaks coercing comparability.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 _./:-]{0,24}".prop_map(Value::string),
        "[a-z0-9./:-]{1,24}".prop_map(Value::url),
        ("[a-z0-9./-]{1,16}", 0usize..4).prop_map(|(p, k)| {
            let kind = [
                FileKind::Text,
                FileKind::Image,
                FileKind::PostScript,
                FileKind::Html,
            ][k];
            Value::file(kind, p)
        }),
    ]
}

/// A recipe for building a random graph: node count plus edge endpoints.
#[derive(Debug, Clone)]
struct GraphRecipe {
    nodes: usize,
    edges: Vec<(usize, String, EdgeTarget)>,
    collections: Vec<(String, usize)>,
}

#[derive(Debug, Clone)]
enum EdgeTarget {
    Node(usize),
    Atomic(Value),
}

fn graph_recipe() -> impl Strategy<Value = GraphRecipe> {
    (1usize..20).prop_flat_map(|nodes| {
        let edge = (
            0..nodes,
            "[a-z]{1,6}",
            prop_oneof![
                (0..nodes).prop_map(EdgeTarget::Node),
                atomic_value().prop_map(EdgeTarget::Atomic),
            ],
        );
        let coll = ("[A-Z][a-z]{0,5}", 0..nodes);
        (
            Just(nodes),
            prop::collection::vec(edge, 0..40),
            prop::collection::vec(coll, 0..10),
        )
            .prop_map(|(nodes, edges, collections)| GraphRecipe {
                nodes,
                edges,
                collections,
            })
    })
}

fn build(recipe: &GraphRecipe) -> Graph {
    let mut g = Graph::new();
    let oids: Vec<Oid> = (0..recipe.nodes)
        .map(|i| g.add_named_node(&format!("n{i}")))
        .collect();
    for (from, label, target) in &recipe.edges {
        let to = match target {
            EdgeTarget::Node(i) => Value::Node(oids[*i]),
            EdgeTarget::Atomic(v) => v.clone(),
        };
        g.add_edge_str(oids[*from], label, to);
    }
    for (name, member) in &recipe.collections {
        g.collect_str(name.as_str(), oids[*member]);
    }
    g
}

proptest! {
    /// print ∘ parse is the identity up to graph isomorphism: node, edge,
    /// and membership counts and per-node attribute multisets survive.
    #[test]
    fn ddl_round_trip(recipe in graph_recipe()) {
        let g = build(&recipe);
        let text = ddl::print(&g);
        let g2 = ddl::parse(&text).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        prop_assert_eq!(g2.collection_count(), g.collection_count());
        for oid in g.node_oids() {
            let name = g.node_name(oid).unwrap();
            let oid2 = g2.node_by_name(name).unwrap();
            prop_assert_eq!(g.edges(oid).len(), g2.edges(oid2).len());
            // Atomic attribute values survive exactly (node targets get
            // remapped oids, so compare only atomics).
            let mut atoms: Vec<(String, Value)> = g
                .edges(oid)
                .iter()
                .filter(|e| e.to.is_atomic())
                .map(|e| (g.label_name(e.label).to_owned(), e.to.clone()))
                .collect();
            let mut atoms2: Vec<(String, Value)> = g2
                .edges(oid2)
                .iter()
                .filter(|e| e.to.is_atomic())
                .map(|e| (g2.label_name(e.label).to_owned(), e.to.clone()))
                .collect();
            atoms.sort();
            atoms2.sort();
            prop_assert_eq!(atoms, atoms2);
        }
    }

    /// Importing a graph into an empty graph preserves structure.
    #[test]
    fn import_preserves_counts(recipe in graph_recipe()) {
        let g = build(&recipe);
        let mut dst = Graph::new();
        let map = dst.import_graph(&g);
        prop_assert_eq!(dst.node_count(), g.node_count());
        prop_assert_eq!(dst.edge_count(), g.edge_count());
        prop_assert_eq!(map.len(), g.node_count());
        for oid in g.node_oids() {
            prop_assert_eq!(g.edges(oid).len(), dst.edges(map[&oid]).len());
        }
    }

    /// Coercing comparison is antisymmetric and eq is reflexive on
    /// comparable values.
    #[test]
    fn coerce_antisymmetric(a in atomic_value(), b in atomic_value()) {
        let ab = coerce::compare(&a, &b);
        let ba = coerce::compare(&b, &a);
        prop_assert_eq!(ab.map(std::cmp::Ordering::reverse), ba);
        prop_assert!(coerce::eq(&a, &a));
    }

    /// Structural Ord on Value is a total order consistent with Eq/Hash.
    #[test]
    fn value_total_order(mut vs in prop::collection::vec(atomic_value(), 1..12)) {
        vs.sort();
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Skolem functions are functions: equal argument vectors always map
    /// to the oid minted first, distinct vectors to distinct oids.
    #[test]
    fn skolem_is_functional(args in prop::collection::vec(atomic_value(), 0..4)) {
        let mut g = Graph::new();
        let mut t = SkolemTable::new();
        let (a, first) = t.apply(&mut g, "F", &args);
        prop_assert!(first);
        let (b, again) = t.apply(&mut g, "F", &args);
        prop_assert_eq!(a, b);
        prop_assert!(!again);
        let (c, _) = t.apply(&mut g, "G", &args);
        prop_assert_ne!(a, c);
    }

    /// A recorded delta replays into an empty graph deterministically.
    #[test]
    fn delta_replay_is_deterministic(recipe in graph_recipe()) {
        let mut d = GraphDelta::new();
        for i in 0..recipe.nodes {
            d.add_node(Some(&format!("n{i}")));
        }
        for (from, label, target) in &recipe.edges {
            let to = match target {
                EdgeTarget::Node(i) => Value::Node(Oid::from_index(*i)),
                EdgeTarget::Atomic(v) => v.clone(),
            };
            d.add_edge(Oid::from_index(*from), label, to);
        }
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        d.apply(&mut g1).unwrap();
        d.apply(&mut g2).unwrap();
        prop_assert_eq!(g1.node_count(), g2.node_count());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        for oid in g1.node_oids() {
            prop_assert_eq!(g1.edges(oid), g2.edges(oid));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DDL parser never panics on arbitrary input.
    #[test]
    fn ddl_parser_total(s in "\\PC{0,200}") {
        let _ = ddl::parse(&s);
    }
}
