//! E-struql-scale: STRUQL evaluation scaling, regular-path-expression
//! traversal, and the join-ordering ablation.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::repo::{Database, IndexLevel};
use strudel::struql::{parse, EvalOptions, Evaluator};
use strudel_workload::bib;

fn bib_db(entries: usize) -> Database {
    let src = bib::generate(&bib::BibConfig {
        entries,
        ..Default::default()
    });
    let g = strudel::wrappers::bibtex::wrap(&src).unwrap();
    Database::from_graph(g, IndexLevel::Full)
}

fn bench_homepage_query(c: &mut Criterion) {
    let program = parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
    let mut group = c.benchmark_group("struql/homepage-query");
    group.sample_size(20);
    for entries in [25usize, 100, 400] {
        let db = bib_db(entries);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &db, |b, db| {
            b.iter(|| Evaluator::new(db).eval(&program).unwrap());
        });
    }
    group.finish();
}

fn bench_join_ordering(c: &mut Criterion) {
    let query = r#"
        where Publications(x), Publications(y),
              x -> "year" -> yr, y -> "year" -> yr,
              x -> "author" -> a, y -> "author" -> a,
              x != y
        create CoAuthored(x, y)
        collect Pairs(CoAuthored(x, y))
    "#;
    let program = parse(query).unwrap();
    let db = bib_db(150);
    let mut group = c.benchmark_group("struql/join-ordering");
    group.sample_size(10);
    group.bench_function("optimized", |b| {
        b.iter(|| Evaluator::new(&db).eval(&program).unwrap());
    });
    group.bench_function("naive-order", |b| {
        b.iter(|| {
            Evaluator::with_options(&db, EvalOptions { optimize: false, ..Default::default() })
                .eval(&program)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_kleene_star(c: &mut Criterion) {
    let program = parse(
        r#"
        where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
        create New(p), New(q), New(r)
        link New(q) -> l -> New(r)
        collect TextOnlyRoot(New(p))
    "#,
    )
    .unwrap();
    let mut group = c.benchmark_group("struql/kleene-textonly");
    group.sample_size(10);
    for n in [50usize, 200] {
        let corpus = strudel_bench::paper_news_corpus(n);
        let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
        let mut g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
        let root = g.node_by_name(&format!("article{}.html", n - 1)).unwrap();
        g.collect_str("Root", root);
        let db = Database::from_graph(g, IndexLevel::Full);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| Evaluator::new(db).eval(&program).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_homepage_query, bench_join_ordering, bench_kleene_star
}
criterion_main!(benches);
