//! E-parallel: deterministic parallel where-stage evaluation at 1/2/4/8
//! workers, and cold-cache warmup (sequential vs parallel pre-render).
//! The parallel results are byte-identical to sequential — these benches
//! measure what that determinism costs (or buys) in wall-clock time.

use std::sync::Arc;
use std::time::Duration;
use strudel::repo::{Database, IndexLevel};
use strudel::struql::{parse, EvalOptions, Evaluator, Parallelism};
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel_schema::dynamic::Mode;
use strudel_serve::SiteService;
use strudel_workload::bib;
use strudel_workload::news::{generate, NewsConfig};

fn bib_db(entries: usize) -> Database {
    let src = bib::generate(&bib::BibConfig {
        entries,
        ..Default::default()
    });
    let g = strudel::wrappers::bibtex::wrap(&src).unwrap();
    Database::from_graph(g, IndexLevel::Full)
}

fn opts(workers: usize) -> EvalOptions {
    EvalOptions {
        parallelism: if workers <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(workers)
        },
        ..Default::default()
    }
}

/// The self-join co-author query: the where stage dominates, so this is
/// where partitioned evaluation should show its scaling.
fn bench_parallel_join(c: &mut Criterion) {
    let query = r#"
        where Publications(x), Publications(y),
              x -> "year" -> yr, y -> "year" -> yr,
              x -> "author" -> a, y -> "author" -> a,
              x != y
        create CoAuthored(x, y)
        collect Pairs(CoAuthored(x, y))
    "#;
    let program = parse(query).unwrap();
    let db = bib_db(400);
    let mut group = c.benchmark_group("parallel/coauthor-join");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Evaluator::with_options(&db, opts(w))
                    .eval(&program)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// The homepage site-definition query over a large bibliography — the
/// end-to-end build path the SiteBuilder `parallelism` knob feeds.
fn bench_parallel_homepage(c: &mut Criterion) {
    let program = parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
    let db = bib_db(800);
    let mut group = c.benchmark_group("parallel/homepage-query");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                Evaluator::with_options(&db, opts(w))
                    .eval(&program)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Cold-cache warmup of the news site: pre-rendering every reachable page
/// sequentially vs across workers.
fn bench_parallel_warmup(c: &mut Criterion) {
    let corpus = generate(&NewsConfig {
        articles: 60,
        ..Default::default()
    });
    let site = Arc::new(strudel::sites::news_site(&corpus.pages).build().unwrap());
    let mut group = c.benchmark_group("parallel/warmup");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                // A fresh service per iteration: warmup is a cold-cache op.
                let svc = SiteService::new(&site, Mode::Context);
                svc.warm(if w <= 1 {
                    Parallelism::Sequential
                } else {
                    Parallelism::Threads(w)
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_parallel_join, bench_parallel_homepage, bench_parallel_warmup
}
criterion_main!(benches);
