//! E-serve: click-time serving throughput — pages/sec vs worker count,
//! cold vs warm cache, and re-serve cost after a 1% data delta.
//!
//! Each configuration starts a real `strudel-serve` HTTP server on an
//! ephemeral port with a fresh (cold) page cache and hammers it with 8
//! concurrent client threads over the full crawl of the news site:
//!
//! * **cold** — first pass, every page rendered at click time;
//! * **warm** — three more passes served from the rendered-page cache;
//! * **after 1% delta** — edit 1% of the articles through a `GraphDelta`
//!   (evicting exactly the dirtied renditions) and re-fetch everything.
//!
//! Wall-clock timing with `std::time::Instant`; `harness = false`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use strudel::graph::{GraphDelta, Value};
use strudel::schema::dynamic::{DynTarget, Mode, PageKey};
use strudel_serve::{serve, ServerConfig, SiteService};

const ARTICLES: usize = 300;
const CLIENTS: usize = 8;
const WARM_PASSES: usize = 3;

fn get(addr: SocketAddr, path: &str) -> usize {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    assert!(out.starts_with(b"HTTP/1.1 200"), "{path}");
    out.len()
}

/// Every page URL in the site, by BFS over the page graph.
fn crawl_urls(service: &SiteService) -> Vec<String> {
    let engine = service.engine();
    let mut seen: Vec<PageKey> = engine.roots(service.root_collection()).unwrap();
    let mut queue = seen.clone();
    while let Some(key) = queue.pop() {
        for (_, target) in &engine.visit(&key).unwrap().edges {
            if let DynTarget::Page(child) = target {
                if !seen.contains(child) {
                    seen.push(child.clone());
                    queue.push(child.clone());
                }
            }
        }
    }
    seen.iter().map(|k| service.url_of(k)).collect()
}

/// Fetches `urls` `passes` times with `CLIENTS` threads sharing a single
/// work queue; returns pages per second.
fn hammer(addr: SocketAddr, urls: &Arc<Vec<String>>, passes: usize) -> f64 {
    let total = urls.len() * passes;
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let urls = Arc::clone(urls);
            let next = Arc::clone(&next);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                get(addr, &urls[i % urls.len()]);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    total as f64 / start.elapsed().as_secs_f64()
}

/// Retitles 1% of the articles in one delta; returns how many cached
/// renditions that evicted.
fn one_percent_delta(service: &SiteService) -> usize {
    let db = service.engine().database();
    let victims: Vec<_> = (0..ARTICLES)
        .step_by(100)
        .filter_map(|i| {
            let oid = db.graph().node_by_name(&format!("article{i}.html"))?;
            let old = db.graph().first_attr_str(oid, "title")?.clone();
            Some((oid, old))
        })
        .collect();
    drop(db);
    assert!(!victims.is_empty());
    let mut delta = GraphDelta::new();
    for (oid, old) in &victims {
        delta.remove_edge(*oid, "title", old.clone());
        delta.add_edge(*oid, "title", Value::string("retitled by the 1% delta"));
    }
    service.apply_delta(&delta).unwrap().html_evicted
}

fn main() {
    let site = strudel_bench::paper_news_site(ARTICLES);
    println!(
        "serve: {ARTICLES}-article news site, {CLIENTS} client threads, \
         {WARM_PASSES} warm passes\n"
    );
    println!("workers   pages  cold pg/s   warm pg/s   after-1%-delta pg/s   evicted");
    for workers in [1usize, 2, 4, 8] {
        let service = Arc::new(SiteService::new(&site, Mode::ContextLookahead));
        let urls = Arc::new(crawl_urls(&service));
        let server = serve(
            Arc::clone(&service),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.addr();

        let cold = hammer(addr, &urls, 1);
        let warm = hammer(addr, &urls, WARM_PASSES);
        let evicted = one_percent_delta(&service);
        let after_delta = hammer(addr, &urls, 1);

        let stats = service.stats();
        println!(
            "{workers:>7}   {:>5}  {cold:>9.0}   {warm:>9.0}   {after_delta:>19.0}   {evicted:>7}",
            urls.len()
        );
        assert!(stats.html_cache.hits > 0 && stats.html_cache.misses > 0);
        server.shutdown();
    }
    println!("\n(cold = every page rendered at click time; warm = rendered-page cache;");
    println!(" the 1% delta evicts only the dirtied renditions before the last pass)");
}
