//! E-multiversion: the marginal cost of a second site version — a new
//! template rendering of the same site graph, and a derived query over the
//! same data graph.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, Criterion};
use strudel::sites;

fn bench_org_versions(c: &mut Criterion) {
    let site = strudel_bench::paper_org_site(400);
    let external = sites::org_external_templates();
    let mut group = c.benchmark_group("multiversion/org");
    group.sample_size(10);
    group.bench_function("internal-render", |b| b.iter(|| site.render().unwrap()));
    group.bench_function("external-render", |b| {
        b.iter(|| site.render_with(&external).unwrap())
    });
    group.finish();
}

fn bench_news_versions(c: &mut Criterion) {
    let corpus = strudel_bench::paper_news_corpus(300);
    let mut group = c.benchmark_group("multiversion/news");
    group.sample_size(10);
    group.bench_function("general-build", |b| {
        b.iter(|| sites::news_site(&corpus).build().unwrap())
    });
    group.bench_function("sports-only-build", |b| {
        b.iter(|| sites::sports_only_site(&corpus).build().unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_org_versions, bench_news_versions
}
criterion_main!(benches);
