//! E-dynamic: click-time evaluation latency — naive vs context-seeded vs
//! look-ahead-cached, per click on a cold engine and across a browse
//! trail.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::schema::dynamic::{DynTarget, DynamicSite, Mode, PageKey};

fn browse(site: &DynamicSite, clicks: usize) {
    let roots = site.roots("FrontRoot").unwrap();
    let mut current: PageKey = roots[0].clone();
    let mut trail = vec![current.clone()];
    for _ in 0..clicks {
        let view = site.visit(&current).unwrap();
        let next = view.edges.iter().find_map(|(_, t)| match t {
            DynTarget::Page(k) if !trail.contains(k) => Some(k.clone()),
            _ => None,
        });
        current = match next {
            Some(k) => k,
            None => roots[0].clone(),
        };
        trail.push(current.clone());
    }
}

fn bench_browse_trail(c: &mut Criterion) {
    let site = strudel_bench::paper_news_site(300);
    let program = site.program.clone();
    let mut group = c.benchmark_group("dynamic/25-click-trail");
    group.sample_size(10);
    for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let dynsite = DynamicSite::new(site.database.clone(), &program, mode);
                    browse(&dynsite, 25);
                });
            },
        );
    }
    group.finish();
}

fn bench_single_click(c: &mut Criterion) {
    let site = strudel_bench::paper_news_site(300);
    let program = site.program.clone();
    // One article page key.
    let article = site
        .database
        .graph()
        .node_by_name("article42.html")
        .unwrap();
    let key = PageKey {
        symbol: "ArticlePage".into(),
        args: vec![strudel_graph::Value::Node(article)],
    };
    let mut group = c.benchmark_group("dynamic/cold-click");
    group.sample_size(20);
    for mode in [Mode::Naive, Mode::Context] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let dynsite = DynamicSite::new(site.database.clone(), &program, mode);
                    dynsite.visit(&key).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_browse_trail, bench_single_click
}
criterion_main!(benches);
