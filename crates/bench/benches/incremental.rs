//! E-incremental: incremental site-graph maintenance vs full
//! re-evaluation, across delta sizes.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::repo::{Database, IndexLevel};
use strudel::schema::incremental::incremental_update;
use strudel::struql::Evaluator;
use strudel_graph::{GraphDelta, Oid, Value};

fn person_delta(base: usize, count: usize) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for i in 0..count {
        delta.add_node(Some(&format!("newp{i}")));
        let oid = Oid::from_index(base + i);
        delta.add_edge(oid, "id", Value::string(format!("newp{i}")));
        delta.add_edge(oid, "name", Value::string(format!("New Person {i}")));
        delta.add_edge(oid, "dept", Value::string("dept0"));
        delta.collect("People", Value::Node(oid));
    }
    delta
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let site = strudel_bench::paper_org_site(400);
    let base = site.database.graph().node_count();
    let mut group = c.benchmark_group("incremental/org-400");
    group.sample_size(10);
    for delta_people in [1usize, 10, 50] {
        let delta = person_delta(base, delta_people);
        group.bench_with_input(
            BenchmarkId::new("incremental", delta_people),
            &delta,
            |b, delta| {
                b.iter(|| {
                    let old = Evaluator::new(&site.database).eval(&site.program).unwrap();
                    incremental_update(&site.program, &site.database, delta, old).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full-reeval", delta_people),
            &delta,
            |b, delta| {
                b.iter(|| {
                    let mut g = site.database.graph().clone();
                    delta.apply(&mut g).unwrap();
                    let db = Database::from_graph(g, IndexLevel::Full);
                    Evaluator::new(&db).eval(&site.program).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_incremental_vs_full
}
criterion_main!(benches);
