//! F8: generation time across the (data × structural complexity) sweep —
//! the timing axis of the suitability study (spec sizes and change costs
//! are printed by `experiments -- suitability`).

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::repo::{Database, IndexLevel};
use strudel::struql::Evaluator;
use strudel_procgen::sweep;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("suitability/generate");
    group.sample_size(10);
    for &k in &[2usize, 8] {
        for &n in &[100usize, 1000] {
            let entities = sweep::sweep_entities(n, k);
            let g = strudel_graph::ddl::parse(&sweep::sweep_ddl(&entities)).unwrap();
            let db = Database::from_graph(g, IndexLevel::Full);
            let program = strudel::struql::parse(&sweep::strudel_query(k)).unwrap();
            group.bench_with_input(
                BenchmarkId::new("strudel", format!("n{n}-k{k}")),
                &db,
                |b, db| {
                    b.iter(|| Evaluator::new(db).eval(&program).unwrap());
                },
            );
            group.bench_with_input(
                BenchmarkId::new("procedural", format!("n{n}-k{k}")),
                &entities,
                |b, entities| {
                    b.iter(|| sweep::generate_procedural(entities, k));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_sweep
}
criterion_main!(benches);
