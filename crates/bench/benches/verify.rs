//! E-verify: static constraint verification against the site schema vs
//! runtime checking on materialized graphs of growing size.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::schema::constraint::{parse_constraint, runtime, verify};

fn bench_static_vs_runtime(c: &mut Criterion) {
    let constraint = parse_constraint(
        "forall p in PaperPages : exists r in HomeRoot : r -> * -> p",
    )
    .unwrap();
    let mut group = c.benchmark_group("verify/reachability");
    group.sample_size(20);
    for entries in [50usize, 400] {
        let site = strudel_bench::paper_homepage_site(entries);
        group.bench_with_input(
            BenchmarkId::new("static", entries),
            &site,
            |b, site| {
                b.iter(|| verify::verify(&site.schema, &constraint));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("runtime", entries),
            &site,
            |b, site| {
                b.iter(|| runtime::check(&site.result.graph, &constraint));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_static_vs_runtime
}
criterion_main!(benches);
