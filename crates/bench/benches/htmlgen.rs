//! E-htmlgen: HTML generation throughput, including ORDER sorting and
//! EMBED recursion.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("htmlgen/news-render");
    group.sample_size(20);
    for n in [100usize, 300] {
        let site = strudel_bench::paper_news_site(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &site, |b, site| {
            b.iter(|| site.render().unwrap());
        });
    }
    group.finish();
}

fn bench_render_org(c: &mut Criterion) {
    let site = strudel_bench::paper_org_site(400);
    let mut group = c.benchmark_group("htmlgen/org-render");
    group.sample_size(10);
    group.bench_function("internal", |b| {
        b.iter(|| site.render().unwrap());
    });
    let external = strudel::sites::org_external_templates();
    group.bench_function("external-templates", |b| {
        b.iter(|| site.render_with(&external).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_render, bench_render_org
}
criterion_main!(benches);
