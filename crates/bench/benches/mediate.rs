//! E-mediate: GAV warehousing — initial integration of five sources and
//! refresh after one source changes (the snapshot cache at work).

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, Criterion};
use strudel_mediator::{Mediator, Source, SourceFormat};
use strudel_workload::org;

fn mediator_for(data: &org::OrgData) -> Mediator {
    let mut m = Mediator::new();
    m.add_source(Source::new(
        "people",
        SourceFormat::Relational(strudel::wrappers::relational::TableOptions::new("People")),
        &data.people_csv,
    ));
    m.add_source(Source::new(
        "departments",
        SourceFormat::Relational(strudel::wrappers::relational::TableOptions::new(
            "Departments",
        )),
        &data.departments_csv,
    ));
    m.add_source(Source::new(
        "projects",
        SourceFormat::Structured(strudel::wrappers::structured::RecordOptions::new("Projects")),
        &data.projects_rec,
    ));
    m.add_source(Source::new(
        "demos",
        SourceFormat::Structured(strudel::wrappers::structured::RecordOptions::new("Demos")),
        &data.demos_rec,
    ));
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&data .legacy_html);
    m.add_source(Source::html("legacy", "LegacyDocs", docs));
    m
}

fn bench_warehouse(c: &mut Criterion) {
    let data = org::generate(&org::OrgConfig::default());
    let mut group = c.benchmark_group("mediate/org-5-sources");
    group.sample_size(20);
    group.bench_function("initial-build", |b| {
        b.iter(|| mediator_for(&data).build().unwrap());
    });
    group.bench_function("cached-rebuild", |b| {
        let mut m = mediator_for(&data);
        m.build().unwrap();
        b.iter(|| m.build().unwrap());
    });
    group.bench_function("refresh-one-source", |b| {
        let mut m = mediator_for(&data);
        m.build().unwrap();
        let mut flip = false;
        b.iter(|| {
            // Alternate content so the fingerprint changes every time.
            flip = !flip;
            let extra = if flip { "id: dx\nname: X\n" } else { "id: dy\nname: Y\n" };
            let mut demos = data.demos_rec.clone();
            demos.push_str(extra);
            m.set_content("demos", &demos);
            m.build().unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_warehouse
}
criterion_main!(benches);
