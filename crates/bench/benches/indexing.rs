//! E-index: the repository indexing ablation — selective query latency at
//! each index level, and index build cost.

use std::time::Duration;
use strudel_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use strudel::repo::{Database, IndexLevel};
use strudel::struql::{parse, Evaluator};
use strudel_graph::Graph;

fn corpus_graph(articles: usize) -> Graph {
    let corpus = strudel_bench::paper_news_corpus(articles);
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
    strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap()
}

fn bench_selective_query(c: &mut Criterion) {
    let g = corpus_graph(1000);
    let program = parse(
        r#"
        where Articles(a), a -> l -> "sports"
        create P(a)
        link P(a) -> "hit" -> l
        collect Out(P(a))
    "#,
    )
    .unwrap();
    let mut group = c.benchmark_group("indexing/value-lookup");
    group.sample_size(20);
    for (name, level) in [
        ("none", IndexLevel::None),
        ("extension", IndexLevel::ExtensionOnly),
        ("full", IndexLevel::Full),
    ] {
        let db = Database::from_graph(g.clone(), level);
        let _ = db.stats();
        group.bench_with_input(BenchmarkId::from_parameter(name), &db, |b, db| {
            b.iter(|| Evaluator::new(db).eval(&program).unwrap());
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let g = corpus_graph(1000);
    let mut group = c.benchmark_group("indexing/build");
    group.sample_size(10);
    for (name, level) in [("none", IndexLevel::None), ("full", IndexLevel::Full)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| Database::from_graph(g.clone(), level));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded measurement so `cargo bench --workspace` finishes in
    // minutes; raise for publication-grade confidence intervals.
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_selective_query, bench_index_build
}
criterion_main!(benches);
