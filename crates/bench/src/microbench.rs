//! A small, dependency-free benchmark harness with a criterion-compatible
//! API surface.
//!
//! The workspace's benches were written against criterion; this module
//! keeps their source shape (groups, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) while measuring with plain
//! `std::time::Instant`. Reported numbers are mean/min/median per
//! iteration over a fixed number of samples, each sample an adaptively
//! sized batch — good enough to compare modes and spot regressions,
//! without confidence intervals or HTML reports.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness configuration, criterion-style builder.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = name.into();
        run_benchmark(&id, self.warm_up, self.measurement, self.sample_size, f);
    }

    /// Criterion prints a closing summary; we have nothing buffered.
    pub fn final_summary(&self) {}
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(
            &full,
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            f,
        );
        self
    }

    /// Runs one benchmark in this group against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Criterion flushes group reports here; nothing is buffered.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: either a plain parameter or `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A compound id `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts self into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Handed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times the closure: warm-up, then fixed samples of adaptive batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations so we can size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample batch so all samples fit in the measurement
        // budget, with at least one iteration per sample.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
        }
    }
}

fn run_benchmark(id: &str, warm_up: Duration, measurement: Duration, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warm_up,
        measurement,
        sample_size: samples,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        eprintln!("  {id:<44} (no measurement: closure never called iter)");
        return;
    }
    let mut s = b.samples_ns.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    eprintln!(
        "  {id:<44} min {:>10}  med {:>10}  mean {:>10}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Criterion-compatible group declaration. Both the struct form (with
/// `name =`, `config =`, `targets =`) and the simple list form expand to
/// a function that runs every target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Criterion-compatible entry point: runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("static", 400).0, "static/400");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
