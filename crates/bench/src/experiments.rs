//! The experiment suite: one function per table/figure of the paper.
//!
//! Every function prints a self-contained table to stdout. Shapes to look
//! for (absolute numbers depend on the machine; see EXPERIMENTS.md):
//!
//! * T1 — declarative specs stay small at paper scale; second versions
//!   cost ~0 query lines.
//! * F8 — the procedural/declarative spec-size and change-cost gap grows
//!   with structural complexity, not with data size.
//! * E-dynamic — context seeding beats naive re-evaluation per click, and
//!   look-ahead converts link follows into cache hits.
//! * E-incremental — small deltas are far cheaper than re-evaluation.
//! * E-index — the full-indexing win grows with data size.

use crate::json;
use std::time::{Duration, Instant};
use strudel::repo::{Database, IndexLevel};
use strudel::schema::constraint::{parse_constraint, runtime, verify};
use strudel::schema::dynamic::{DynTarget, DynamicSite, Mode, PageKey};
use strudel::schema::incremental::{graphs_equivalent, incremental_update};
use strudel::schema::SiteSchema;
use strudel::sites;
use strudel::struql::{EvalOptions, Evaluator};
use strudel::template::{HtmlGenerator, TemplateSet};
use strudel::SiteStats;
use strudel_graph::{GraphDelta, Oid, Value};
use strudel_mediator::{Mediator, Source, SourceFormat};
use strudel_procgen::{news as proc_news, sweep};
use strudel_serve::SiteService;
use strudel_workload::{bib, org};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

/// T1 — the §5.1 site-statistics table for every site of the paper,
/// rebuilt on synthetic corpora at paper scale.
pub fn exp_site_stats() {
    println!("== T1: site statistics (paper §5.1) ==");
    println!(
        "paper reference: AT&T internal 115-line query / 17 templates (380 lines) / ~400 home pages;"
    );
    println!(
        "  external +0 query lines, 5 changed templates; mff 48-line query / 13 templates (202 lines);"
    );
    println!("  CNN 44-line query / 9 templates / ~300 articles; sports-only +2 predicates.\n");
    println!("{}", SiteStats::header());

    let homepage = crate::paper_homepage_site(40);
    println!("{}", homepage.stats_with_render().unwrap().row());

    let org_site = crate::paper_org_site(400);
    let mut org_stats = org_site.stats_with_render().unwrap();
    println!("{}", org_stats.row());

    // External org site: same data, same query, external template set.
    let external = sites::org_external_templates();
    let ext_render = org_site.render_with(&external).unwrap();
    org_stats.name = "org-external".into();
    org_stats.query_lines = 0; // "no new queries were written for that site"
    org_stats.templates = 5; // changed templates only
    org_stats.template_lines = 0;
    org_stats.pages = ext_render.pages.len();
    println!("{}", org_stats.row());

    let corpus = crate::paper_news_corpus(300);
    let news_site = sites::news_site(&corpus).build().unwrap();
    println!("{}", news_site.stats_with_render().unwrap().row());

    let sports = sites::sports_only_site(&corpus).build().unwrap();
    let mut sports_stats = sports.stats_with_render().unwrap();
    sports_stats.name = "news-sports".into();
    println!("{}", sports_stats.row());

    let bilingual = sites::bilingual_site(BILINGUAL_ITEMS).build().unwrap();
    println!("{}", bilingual.stats_with_render().unwrap().row());
    println!();
}

const BILINGUAL_ITEMS: &str = r#"
object i1 in Items {
  title-en : "The Strudel project"; title-fr : "Le projet Strudel";
  body-en  : "Declarative web sites."; body-fr : "Sites web declaratifs.";
}
object i2 in Items {
  title-en : "Publications"; title-fr : "Publications";
  body-en  : "Papers and reports."; body-fr : "Articles et rapports.";
}
object i3 in Items {
  title-en : "People"; title-fr : "Equipe";
  body-en  : "Researchers and students.";
}
"#;

/// F8 — the tool-suitability study: spec size, change cost, and
/// generation time across (data size × structural complexity) for Strudel
/// vs the procedural baseline.
pub fn exp_suitability() {
    println!("== F8: suitability study (paper Fig. 8) ==");
    println!("spec = maintained lines; change = lines touched to add one facet\n");
    println!(
        "{:>8} {:>7} | {:>10} {:>10} {:>12} | {:>10} {:>10} {:>12} | winner(spec)",
        "entities", "facets", "strudel", "proc", "strudel-gen", "strudel-chg", "proc-chg", "proc-gen"
    );
    for &k in &[2usize, 8, 24] {
        for &n in &[20usize, 200, 2000] {
            let entities = sweep::sweep_entities(n, k);
            let ddl = sweep::sweep_ddl(&entities);
            let g = strudel_graph::ddl::parse(&ddl).unwrap();
            let db = Database::from_graph(g, IndexLevel::Full);
            let program = strudel::struql::parse(&sweep::strudel_query(k)).unwrap();
            let mut templates = TemplateSet::new();
            for (name, src, assign) in sweep::strudel_templates(k) {
                templates.add_template(&name, &src).unwrap();
                if assign == "Home" {
                    templates.assign_object("Home", &name);
                } else {
                    templates.assign_collection(&assign, &name);
                }
            }
            let (result, strudel_gen) = time(|| Evaluator::new(&db).eval(&program).unwrap());
            let roots: Vec<Oid> = result
                .graph
                .members_str("Roots")
                .iter()
                .filter_map(Value::as_node)
                .collect();
            let (_pages, strudel_render) =
                time(|| HtmlGenerator::new(&result.graph, &templates).generate(&roots).unwrap());

            let (_proc_pages, proc_gen) = time(|| sweep::generate_procedural(&entities, k));

            let s_spec = sweep::strudel_spec_lines(k);
            let p_spec = sweep::procedural_spec_lines(k);
            println!(
                "{:>8} {:>7} | {:>10} {:>10} {:>12} | {:>11} {:>10} {:>12} | {}",
                n,
                k,
                s_spec,
                p_spec,
                ms(strudel_gen + strudel_render),
                sweep::strudel_change_lines(k),
                sweep::procedural_change_lines(k),
                ms(proc_gen),
                if s_spec < p_spec { "strudel" } else { "procedural" }
            );
        }
    }
    println!("\nsecond-site cost (CNN sports-only): strudel = 2 extra predicates in one clause;");
    println!(
        "procedural = {} duplicated generator lines (measured from the baseline's source)\n",
        proc_news::sports_variant_changed_lines()
    );
}

/// E-multiversion — multiple versions from one data/site graph.
pub fn exp_multiversion() {
    println!("== E-multiversion: versions from one site graph (paper §1/§5.1/§6.1) ==");
    let org_site = crate::paper_org_site(400);
    let (internal, t_int) = time(|| org_site.render().unwrap());
    let external_templates = sites::org_external_templates();
    let (external, t_ext) = time(|| org_site.render_with(&external_templates).unwrap());
    println!(
        "org internal: {} pages in {}; external (same site graph, 5 changed templates): {} pages in {}",
        internal.pages.len(),
        ms(t_int),
        external.pages.len(),
        ms(t_ext)
    );

    let corpus = crate::paper_news_corpus(300);
    let (general, t_gen) = time(|| sites::news_site(&corpus).build().unwrap());
    let (sports, t_sports) = time(|| sites::sports_only_site(&corpus).build().unwrap());
    println!(
        "news general: {} site nodes in {}; sports-only (+2 predicates, same templates): {} site nodes in {}",
        general.stats.site_nodes,
        ms(t_gen),
        sports.stats.site_nodes,
        ms(t_sports)
    );
    println!();
}

/// E-schema — the Fig. 7 site schema of the homepage query.
pub fn exp_site_schema() {
    println!("== E-schema: site schema extraction (paper §2.5 / Fig. 7) ==");
    let program = strudel::struql::parse(sites::HOMEPAGE_QUERY).unwrap();
    let schema = SiteSchema::extract(&program);
    println!(
        "homepage query: {} schema nodes, {} edges, {} collects",
        schema.nodes.len(),
        schema.edges.len(),
        schema.collects.len()
    );
    for e in &schema.edges {
        let label = match &e.label {
            strudel::struql::LabelTerm::Const(s) => s.clone(),
            strudel::struql::LabelTerm::Var(v) => format!("<{v}>"),
        };
        println!(
            "  {} -[{} | Q: {} cond(s)]-> {}",
            schema.nodes[e.from].name(),
            label,
            e.guard.len(),
            schema.nodes[e.to].name()
        );
    }
    println!("\ndot rendering:\n{}", schema.to_dot());
}

/// E-verify — static verification vs runtime checking.
pub fn exp_verify() {
    println!("== E-verify: integrity-constraint verification (paper §2.5) ==");
    let site = crate::paper_homepage_site(40);
    let constraints = [
        (
            "reachability (satisfied by construction)",
            "forall p in PaperPages : exists a in AbstractPages : a -> \"Paper\" -> p",
        ),
        (
            "root reaches every paper (satisfied)",
            "forall p in PaperPages : exists r in HomeRoot : r -> * -> p",
        ),
        (
            "every paper page from a year page (data-dependent)",
            "forall p in PaperPages : exists y in YearPages : y -> \"Paper\" -> p",
        ),
        (
            "every paper has an editor (violated)",
            "forall p in PaperPages : p -> \"editor\" -> e",
        ),
    ];
    println!(
        "{:<50} {:>9} {:>12} {:>11} {:>12}",
        "constraint", "static", "static-time", "runtime", "runtime-time"
    );
    for (label, src) in constraints {
        let c = parse_constraint(src).unwrap();
        let (verdict, t_static) = time(|| verify::verify(&site.schema, &c));
        let (check, t_runtime) = time(|| runtime::check(&site.result.graph, &c));
        println!(
            "{:<50} {:>9} {:>12} {:>11} {:>12}",
            label,
            format!("{verdict:?}"),
            ms(t_static),
            if check.holds { "holds" } else { "violated" },
            ms(t_runtime)
        );
    }
    println!();
}

/// E-dynamic — click-time evaluation: naive vs context vs look-ahead.
pub fn exp_dynamic() {
    println!("== E-dynamic: click-time evaluation (paper §2.5/§7) ==");
    println!(
        "{:>9} {:>18} {:>12} {:>12} {:>10} {:>12}",
        "articles", "mode", "clicks", "rows", "cache-hits", "time"
    );
    for &n in &[100usize, 1000, 3000] {
        let corpus = crate::paper_news_corpus(n);
        let site = sites::news_site(&corpus).build().unwrap();
        let program = site.program.clone();
        let db = site.database.clone();
        for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
            let dynsite = DynamicSite::new(db.clone(), &program, mode);
            let ((), t) = time(|| browse(&dynsite, 25));
            let m = dynsite.metrics();
            println!(
                "{:>9} {:>18} {:>12} {:>12} {:>10} {:>12}",
                n,
                format!("{mode:?}"),
                m.clicks,
                m.rows_produced,
                m.cache_hits,
                ms(t)
            );
            let case = format!("{mode:?}-{n}").to_lowercase();
            json::record("serve", "E-dynamic", &case, "browse_ms", t.as_secs_f64() * 1e3, "ms");
            json::record("serve", "E-dynamic", &case, "rows", m.rows_produced as f64, "rows");
            json::record(
                "serve",
                "E-dynamic",
                &case,
                "cache_hits",
                m.cache_hits as f64,
                "hits",
            );
        }
    }
    println!();
}

/// A deterministic browse trail: front page, then repeatedly follow the
/// first unvisited page link (falling back to the front page).
fn browse(site: &DynamicSite, clicks: usize) {
    let roots = site.roots("FrontRoot").unwrap();
    let mut current: PageKey = roots[0].clone();
    let mut trail = vec![current.clone()];
    for _ in 0..clicks {
        let view = site.visit(&current).unwrap();
        let next = view.edges.iter().find_map(|(_, t)| match t {
            DynTarget::Page(k) if !trail.contains(k) => Some(k.clone()),
            _ => None,
        });
        current = match next {
            Some(k) => k,
            None => roots[0].clone(),
        };
        trail.push(current.clone());
    }
}

/// E-diff — differential maintenance of cached page views: per-delta
/// cost must track |Δ|, not site size, and beat from-scratch
/// re-evaluation (snapshot rebuild + guard re-runs) by a wide margin.
pub fn exp_diff() {
    use strudel_graph::Graph;

    const DIFF_QUERY: &str = r#"
        create RootPage()
        where Articles(x)
        create ArticlePage(x)
        link RootPage() -> "story" -> ArticlePage(x)
        collect Roots(RootPage()), ArticlePages(ArticlePage(x))
        { where x -> "title" -> t
          link ArticlePage(x) -> "title" -> t }
        { where x -> "rel"* -> y, Articles(y), y -> "title" -> t
          link ArticlePage(x) -> "related" -> t }
    "#;

    /// `n` articles, each titled, chained by `rel` edges inside clusters
    /// of 8 (so every `rel*` cone stays small at any site size).
    fn diff_corpus(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut prev = None;
        for i in 0..n {
            let node = g.add_named_node(&format!("a{i}"));
            g.collect_str("Articles", node);
            g.add_edge_str(node, "title", Value::string(format!("Title {i:06}").as_str()));
            if i % 8 != 0 {
                g.add_edge_str(node, "rel", Value::from(prev.unwrap()));
            }
            prev = Some(node);
        }
        g
    }

    /// Pre-warms every page so deltas hit a fully materialized cache.
    fn prewarm(site: &DynamicSite) -> usize {
        let root = site.roots("Roots").unwrap().remove(0);
        let view = site.visit(&root).unwrap();
        let mut pages = 1;
        for (_, t) in &view.edges {
            if let DynTarget::Page(k) = t {
                site.visit(k).unwrap();
                pages += 1;
            }
        }
        pages
    }

    println!("== E-diff: differential plan maintenance vs from-scratch re-evaluation ==");
    println!(
        "{:>9} {:>5} | {:>12} {:>14} {:>9} | updated/fallbacks",
        "articles", "|Δ|", "differential", "from-scratch", "speedup"
    );
    let program = strudel::struql::parse(DIFF_QUERY).unwrap();
    const ROUNDS: usize = 12;
    for &n in &[1_000usize, 4_000, 16_000] {
        let graph = diff_corpus(n);
        let db = std::sync::Arc::new(Database::from_graph(graph, IndexLevel::Full));

        // The delta schedule is generated once and replayed on both arms
        // so their database lineages stay identical. Every tranche
        // retitles its own disjoint range of articles; `titles` tracks
        // the current value so every removal is applicable.
        let mut titles: Vec<String> = (0..n).map(|i| format!("Title {i:06}")).collect();
        let mut cursor = 0usize;
        let mut schedule: Vec<(usize, GraphDelta)> = Vec::new();
        // Warmup (untimed): the first delta pays the one-time standby
        // twin construction.
        let mut warm = GraphDelta::new();
        warm.add_edge(Oid::from_index(n - 1), "note", Value::string("warm"));
        schedule.push((0, warm));
        for &ops in &[1usize, 8, 64] {
            for round in 0..ROUNDS {
                let mut delta = GraphDelta::new();
                if ops == 1 {
                    let i = cursor;
                    cursor += 1;
                    delta.add_edge(
                        Oid::from_index(i),
                        "title",
                        Value::string(format!("Extra {round}").as_str()),
                    );
                } else {
                    for _ in 0..ops / 2 {
                        let i = cursor;
                        cursor += 1;
                        let next = format!("Title {i:06} r{round}");
                        delta.remove_edge(
                            Oid::from_index(i),
                            "title",
                            Value::string(titles[i].as_str()),
                        );
                        delta.add_edge(
                            Oid::from_index(i),
                            "title",
                            Value::string(next.as_str()),
                        );
                        titles[i] = next;
                    }
                }
                schedule.push((ops, delta));
            }
        }
        assert!(cursor < n, "schedule exhausted the corpus");

        let diff_site = DynamicSite::new(db.clone(), &program, Mode::Context);
        let scratch_site =
            DynamicSite::new(db, &program, Mode::Context).with_differential(false);
        let pages = prewarm(&diff_site);
        prewarm(&scratch_site);

        let mut diff_us: Vec<(usize, f64)> = Vec::new();
        let mut scratch_us: Vec<(usize, f64)> = Vec::new();
        for (ops, delta) in &schedule {
            let (outcome, t) = time(|| diff_site.apply_delta(delta).unwrap());
            assert!(
                outcome.evicted == 0 || *ops == 0,
                "maintenance must absorb every dirty page: {outcome:?}"
            );
            if *ops > 0 {
                diff_us.push((*ops, t.as_secs_f64() * 1e6));
            }
            // The from-scratch arm must also re-run the evicted pages'
            // guards to restore the same served state.
            let (_, t) = time(|| {
                let outcome = scratch_site.apply_delta(delta).unwrap();
                for key in &outcome.dirty.pages {
                    scratch_site.visit(key).unwrap();
                }
            });
            if *ops > 0 {
                scratch_us.push((*ops, t.as_secs_f64() * 1e6));
            }
        }
        assert_eq!(
            diff_site.cached_pages(),
            pages,
            "every page stays materialized through maintenance"
        );
        let m = diff_site.metrics();
        assert_eq!(m.diff_fallbacks, 0, "no maintenance fallbacks: {m:?}");

        // Correctness: the maintained cache serves exactly what a cold
        // engine computes on the final database.
        let fresh = DynamicSite::new(diff_site.database(), &program, Mode::Context);
        for i in [0usize, 1, cursor.saturating_sub(1)] {
            let key = PageKey {
                symbol: "ArticlePage".into(),
                args: vec![Value::from(Oid::from_index(i))],
            };
            let sort = |mut v: Vec<(String, DynTarget)>| {
                v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                v
            };
            assert_eq!(
                sort(diff_site.visit(&key).unwrap().edges),
                sort(fresh.visit(&key).unwrap().edges),
                "article a{i} diverged at n={n}"
            );
        }

        for &ops in &[1usize, 8, 64] {
            let mean = |v: &[(usize, f64)]| {
                let s: Vec<f64> =
                    v.iter().filter(|(o, _)| *o == ops).map(|(_, t)| *t).collect();
                s.iter().sum::<f64>() / s.len() as f64
            };
            let d = mean(&diff_us);
            let s = mean(&scratch_us);
            println!(
                "{:>9} {:>5} | {:>10.0}us {:>12.0}us {:>8.1}x | {}/{}",
                n,
                ops,
                d,
                s,
                s / d,
                m.diff_pages_updated,
                m.diff_fallbacks
            );
            let case = format!("n{n}-d{ops}");
            json::record("diff", "E-diff", &case, "diff_us", d, "us");
            json::record("diff", "E-diff", &case, "scratch_us", s, "us");
            json::record("diff", "E-diff", &case, "speedup", s / d, "x");
        }
    }
    println!();
}

/// E-incremental — incremental maintenance vs full re-evaluation.
pub fn exp_incremental() {
    println!("== E-incremental: site-graph maintenance (paper §7, built as extension) ==");
    println!(
        "{:>8} {:>9} | {:>12} {:>12} {:>10} | equivalent",
        "people", "delta", "incremental", "full-reeval", "rows"
    );
    for &people in &[400usize, 1000] {
        for &delta_people in &[1usize, 10, 50] {
            let data = org::generate(&org::OrgConfig {
                people,
                ..Default::default()
            });
            let site = sites::org_site(
                &data.people_csv,
                &data.departments_csv,
                &data.projects_rec,
                &data.demos_rec,
                &data.legacy_html,
            )
            .build()
            .unwrap();

            // Delta: add `delta_people` new people.
            let base = site.database.graph().node_count();
            let mut delta = GraphDelta::new();
            for i in 0..delta_people {
                delta.add_node(Some(&format!("newp{i}")));
                let oid = Oid::from_index(base + i);
                delta.add_edge(oid, "id", Value::string(format!("newp{i}")));
                delta.add_edge(oid, "name", Value::string(format!("New Person {i}")));
                delta.add_edge(oid, "dept", Value::string("dept0"));
                delta.collect("People", Value::Node(oid));
            }

            let old = Evaluator::new(&site.database).eval(&site.program).unwrap();
            let (inc, t_inc) = time(|| {
                incremental_update(&site.program, &site.database, &delta, old).unwrap()
            });

            let (full, t_full) = time(|| {
                let mut g = site.database.graph().clone();
                delta.apply(&mut g).unwrap();
                let db = Database::from_graph(g, IndexLevel::Full);
                Evaluator::new(&db).eval(&site.program).unwrap()
            });

            println!(
                "{:>8} {:>9} | {:>12} {:>12} {:>10} | {}",
                people,
                format!("+{delta_people}p"),
                ms(t_inc),
                ms(t_full),
                inc.rows_recomputed,
                graphs_equivalent(&inc.result.graph, &full.graph)
            );
        }

        // Deletion via DRed: remove one person from the People collection.
        let data = org::generate(&org::OrgConfig {
            people,
            ..Default::default()
        });
        let site = sites::org_site(
            &data.people_csv,
            &data.departments_csv,
            &data.projects_rec,
            &data.demos_rec,
            &data.legacy_html,
        )
        .build()
        .unwrap();
        let victim = site
            .database
            .graph()
            .node_by_name(&format!("People_{}", data.people_ids[0]))
            .unwrap();
        let mut delta = GraphDelta::new();
        delta.uncollect("People", Value::Node(victim));
        let old = Evaluator::new(&site.database).eval(&site.program).unwrap();
        let (inc, t_inc) = time(|| {
            incremental_update(&site.program, &site.database, &delta, old).unwrap()
        });
        let (_, t_full) = time(|| {
            let mut g = site.database.graph().clone();
            delta.apply(&mut g).unwrap();
            let db = Database::from_graph(g, IndexLevel::Full);
            Evaluator::new(&db).eval(&site.program).unwrap()
        });
        println!(
            "{:>8} {:>9} | {:>12} {:>12} {:>10} | dred={}",
            people,
            "-1p",
            ms(t_inc),
            ms(t_full),
            inc.rows_recomputed,
            !inc.full_reeval
        );
    }
    println!();
}

/// E-index — what full indexing buys in a schemaless repository.
pub fn exp_indexing() {
    println!("== E-index: repository indexing ablation (paper §2.1) ==");
    println!(
        "{:>9} {:>15} | {:>12} {:>12} {:>12}",
        "articles", "query", "none", "ext-only", "full"
    );
    for &n in &[100usize, 1000, 3000] {
        let corpus = crate::paper_news_corpus(n);
        let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
        let g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();

        // Two selective queries: a bound-target label step (served by the
        // inverted extension index) and an arc-variable value lookup
        // (served only by the global value index — "indexes on atomic
        // values are global to the graph").
        let queries = [
            (
                "cat+date",
                r#"
                where Articles(a), a -> "category" -> "sports", a -> "date" -> d
                create P(a)
                link P(a) -> "date" -> d
                collect Out(P(a))
            "#,
            ),
            (
                "value-lookup",
                r#"
                where Articles(a), a -> l -> "sports"
                create P(a)
                link P(a) -> "hit" -> l
                collect Out(P(a))
            "#,
            ),
        ];
        for (qname, query) in queries {
            let program = strudel::struql::parse(query).unwrap();
            let mut row = format!("{:>9} {:>15} |", n, qname);
            for level in [IndexLevel::None, IndexLevel::ExtensionOnly, IndexLevel::Full] {
                let db = Database::from_graph(g.clone(), level);
                // Warm the stats cache so we time the query, not stats.
                let _ = db.stats();
                let (_r, t) = time(|| Evaluator::new(&db).eval(&program).unwrap());
                row.push_str(&format!(" {:>12}", ms(t)));
            }
            println!("{row}");
        }
    }
    // Index build cost.
    let corpus = crate::paper_news_corpus(3000);
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
    let g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
    let (_, t_full) = time(|| Database::from_graph(g.clone(), IndexLevel::Full));
    let (_, t_none) = time(|| Database::from_graph(g.clone(), IndexLevel::None));
    println!(
        "index build @3000 articles: full = {}, none = {} (maintenance is the price of the wins above)\n",
        ms(t_full),
        ms(t_none)
    );
}

/// E-struql-scale — evaluation scaling and the join-ordering ablation.
pub fn exp_struql_scale() {
    println!("== E-struql-scale: query evaluation scaling (paper §2.2/§6.2) ==");
    println!(
        "{:>9} | {:>12} {:>12} | {:>14} {:>14}",
        "entries", "optimized", "naive-order", "rows(opt)", "rows(naive)"
    );
    for &n in &[50usize, 200, 800] {
        let src = bib::generate(&bib::BibConfig {
            entries: n,
            ..Default::default()
        });
        let g = strudel::wrappers::bibtex::wrap(&src).unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        // A join-heavy query: co-author pairs within a year.
        let query = r#"
            where Publications(x), Publications(y),
                  x -> "year" -> yr, y -> "year" -> yr,
                  x -> "author" -> a, y -> "author" -> a,
                  x != y
            create CoAuthored(x, y)
            collect Pairs(CoAuthored(x, y))
        "#;
        let program = strudel::struql::parse(query).unwrap();
        let (r_opt, t_opt) = time(|| Evaluator::new(&db).eval(&program).unwrap());
        let (r_naive, t_naive) = time(|| {
            Evaluator::with_options(&db, EvalOptions { optimize: false, ..Default::default() })
                .eval(&program)
                .unwrap()
        });
        println!(
            "{:>9} | {:>12} {:>12} | {:>14} {:>14}",
            n,
            ms(t_opt),
            ms(t_naive),
            r_opt.rows_evaluated,
            r_naive.rows_evaluated
        );
    }

    // Kleene-star reachability (the TextOnly copy query of §2.2).
    println!("\nKleene-star TextOnly copy query (reachability):");
    for &n in &[100usize, 400] {
        let corpus = crate::paper_news_corpus(n);
        let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
        let mut g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
        // Related links point to earlier articles, so the last article
        // reaches a large backward cone.
        let root = g.node_by_name(&format!("article{}.html", n - 1)).unwrap();
        g.collect_str("Root", root);
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = strudel::struql::parse(
            r#"
            where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
            create New(p), New(q), New(r)
            link New(q) -> l -> New(r)
            collect TextOnlyRoot(New(p))
        "#,
        )
        .unwrap();
        let (r, t) = time(|| Evaluator::new(&db).eval(&program).unwrap());
        println!("  {n} articles: copied {} nodes in {}", r.new_nodes.len(), ms(t));
    }
    println!();
}

/// E-htmlgen — HTML generation throughput and incremental regeneration.
pub fn exp_htmlgen() {
    println!("== E-htmlgen: HTML generation (paper §2.4) ==");
    for &n in &[100usize, 300, 1000] {
        let site = crate::paper_news_site(n);
        let (out, t) = time(|| site.render().unwrap());
        let pages_per_sec = out.pages.len() as f64 / t.as_secs_f64();
        println!(
            "{:>5} articles: {:>5} pages, {:>8} bytes in {:>10} ({:.0} pages/s)",
            n,
            out.pages.len(),
            out.total_bytes(),
            ms(t),
            pages_per_sec
        );
    }

    // Incremental regeneration: edit one article, re-render only the pages
    // that read it ("update a site incrementally when changes occur in the
    // underlying data", §1).
    let site = crate::paper_news_site(1000);
    let previous = site.render().unwrap();
    let mut graph = site.result.graph.clone();
    let article = graph.node_by_name("article500.html").unwrap();
    let changed_page = site
        .result
        .skolem_node("ArticlePage", &[Value::Node(article)])
        .unwrap();
    graph.add_edge_str(changed_page, "paragraph", Value::string("correction appended"));
    let generator = HtmlGenerator::new(&graph, &site.templates);
    let (regen, t_regen) = time(|| generator.regenerate(&previous, &[changed_page]).unwrap());
    let (full, t_full) = time(|| {
        let roots: Vec<Oid> = graph
            .members_str("FrontRoot")
            .iter()
            .filter_map(Value::as_node)
            .collect();
        generator.generate(&roots).unwrap()
    });
    let rerendered = regen
        .pages
        .iter()
        .filter(|p| {
            previous
                .page_for(p.oid)
                .map(|old| old.html != p.html)
                .unwrap_or(true)
        })
        .count();
    println!(
        "regenerate after editing 1 of 1000 articles: {} of {} pages re-rendered in {} (full re-render: {}, {} pages)",
        rerendered,
        regen.pages.len(),
        ms(t_regen),
        ms(t_full),
        full.pages.len()
    );
    println!();
}

/// E-mediate — GAV warehousing of the five AT&T-style sources, and
/// refresh after one source changes.
pub fn exp_mediate() {
    println!("== E-mediate: warehousing mediator (paper §2.1) ==");
    let data = org::generate(&org::OrgConfig::default());
    let mut mediator = Mediator::new();
    mediator.add_source(Source::new(
        "people",
        SourceFormat::Relational(strudel::wrappers::relational::TableOptions::new("People")),
        &data.people_csv,
    ));
    mediator.add_source(Source::new(
        "departments",
        SourceFormat::Relational(strudel::wrappers::relational::TableOptions::new(
            "Departments",
        )),
        &data.departments_csv,
    ));
    mediator.add_source(Source::new(
        "projects",
        SourceFormat::Structured(strudel::wrappers::structured::RecordOptions::new("Projects")),
        &data.projects_rec,
    ));
    mediator.add_source(Source::new(
        "demos",
        SourceFormat::Structured(strudel::wrappers::structured::RecordOptions::new("Demos")),
        &data.demos_rec,
    ));
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&data .legacy_html);
    mediator.add_source(Source::html("legacy", "LegacyDocs", docs));

    let (w1, t_initial) = time(|| mediator.build().unwrap());
    println!(
        "initial warehouse: {} sources, {} nodes, {} edges in {}",
        w1.reports.len(),
        w1.graph.node_count(),
        w1.graph.edge_count(),
        ms(t_initial)
    );
    let (w2, t_noop) = time(|| mediator.build().unwrap());
    println!(
        "no-op rebuild (all cache hits): {} in {}",
        w2.reports.iter().all(|r| !r.rewrapped),
        ms(t_noop)
    );
    let mut demos2 = data.demos_rec.clone();
    demos2.push_str("id: demoX\nname: Fresh Demo\nurl: http://demos.example.com/x\n");
    mediator.set_content("demos", &demos2);
    let (w3, t_refresh) = time(|| mediator.build().unwrap());
    let rewrapped: Vec<&str> = w3
        .reports
        .iter()
        .filter(|r| r.rewrapped)
        .map(|r| r.name.as_str())
        .collect();
    println!(
        "refresh after editing one source: re-wrapped {rewrapped:?} in {}\n",
        ms(t_refresh)
    );
}

/// E-trace — observability overhead and span-derived accounting: the
/// same warm click workload with tracing disabled vs enabled, then the
/// request/engine numbers read back out of the recorded spans and
/// counters (this is where the EXPERIMENTS.md tracing row comes from).
pub fn exp_trace() {
    println!("== E-trace: tracing overhead & span-derived accounting ==");
    let corpus = crate::paper_news_corpus(300);
    let site = sites::news_site(&corpus).build().unwrap();

    // Every URL reachable from the front page; the measured workload
    // replays this list `PASSES` times against a warm service.
    let scout = SiteService::new(&site, Mode::Context);
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = scout.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    drop(scout);

    const PASSES: usize = 20;
    let measure = |enabled: bool| {
        strudel_trace::set_enabled(enabled);
        let service = SiteService::new(&site, Mode::Context);
        for u in &urls {
            service.handle(u); // warm the caches outside the timed region
        }
        strudel_trace::global().reset();
        let ((), t) = time(|| {
            for _ in 0..PASSES {
                for u in &urls {
                    service.handle(u);
                }
            }
        });
        (t, strudel_trace::snapshot())
    };

    let (t_off, _) = measure(false);
    let (t_on, snap) = measure(true);
    strudel_trace::set_enabled(false);

    let requests = (PASSES * urls.len()) as u64;
    println!(
        "{:>9} {:>9} {:>10} {:>9}",
        "tracing", "requests", "time", "us/req"
    );
    for (label, t) in [("disabled", t_off), ("enabled", t_on)] {
        let us_per_req = t.as_secs_f64() * 1e6 / requests as f64;
        println!("{:>9} {:>9} {:>10} {:>9.2}", label, requests, ms(t), us_per_req);
        json::record(
            "serve",
            "E-trace",
            &format!("tracing-{label}"),
            "warm_request_latency",
            us_per_req,
            "us",
        );
    }

    // Cross-check: the span table must account for exactly the requests
    // the warm loop issued (all HTML-cache hits, so no engine work).
    match snap.spans.iter().find(|(n, _)| n == "serve.request") {
        Some((_, agg)) => println!(
            "span-derived (warm): serve.request count={} mean={}us (loop issued {requests})",
            agg.count,
            agg.mean_us()
        ),
        None => println!("span-derived (warm): serve.request span missing!"),
    }

    // A cold crawl with tracing on, to read the engine-side accounting
    // (warm requests never reach the engine — the HTML cache absorbs
    // them, which is itself visible here as zero guard evaluations).
    strudel_trace::set_enabled(true);
    let cold = SiteService::new(&site, Mode::Context);
    strudel_trace::global().reset();
    for u in &urls {
        cold.handle(u);
    }
    let snap = strudel_trace::snapshot();
    strudel_trace::set_enabled(false);
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    // Span aggregates are keyed by hierarchical path ("a/b/c"), so sum
    // every path that ends in the leaf we care about.
    let span_of = |leaf: &str| {
        snap.spans
            .iter()
            .filter(|(n, _)| n == leaf || n.ends_with(&format!("/{leaf}")))
            .fold((0u64, 0u64), |(c, t), (_, agg)| {
                (c + agg.count, t + agg.total_us)
            })
    };
    let (computes, compute_us) = span_of("engine.compute");
    println!(
        "span-derived (cold crawl, {} pages): engine.compute count={computes} total={compute_us}us; \
         page-view cache hits={} misses={}; guard evals={}",
        urls.len(),
        counter("engine.cache.hits"),
        counter("engine.cache.misses"),
        counter("engine.guard.evals")
    );
    println!();
}

/// E-batch — batched path evaluation: the Kleene-star reachability query
/// of the news corpus with a bound destination, per-row vs batched, and
/// the compiled click-time query cache on the same site.
pub fn exp_batch() {
    println!("== E-batch: batched path evaluation (reverse adjacency + memoization) ==");
    let n = 1000usize;
    let corpus = crate::paper_news_corpus(n);

    // Part 1 — "which articles reach the oldest one?": a Kleene-star
    // reachability query whose *destination* is bound. Related links all
    // point backwards, so nearly the whole corpus qualifies. The per-row
    // engine pays a forward traversal per candidate source; the batched
    // engine answers from one reverse-adjacency walk plus set lookups.
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
    let g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
    let target = g.node_by_name("article0.html").unwrap();
    let db = Database::from_graph(g, IndexLevel::Full);
    let program =
        strudel::struql::parse(r#"where Articles(a), a -> * -> t create R(a)"#).unwrap();
    let conds = &program.blocks[0].where_;
    let seed = vec![("t".to_string(), Value::Node(target))];

    let run = |batch: bool| {
        let ev = Evaluator::with_options(
            &db,
            EvalOptions {
                batch,
                ..Default::default()
            },
        );
        time(|| ev.eval_where_bindings(conds, &seed).unwrap())
    };
    let ((_, rows_old), t_old) = run(false);
    let ((_, rows_new), t_new) = run(true);
    assert_eq!(rows_old, rows_new, "batched relation must be byte-identical");
    let speedup = t_old.as_secs_f64() / t_new.as_secs_f64().max(1e-9);
    println!(
        "Kleene-star reachability, {n} articles, bound destination: \
         per-row {} vs batched {} ({speedup:.1}x), {} rows",
        ms(t_old),
        ms(t_new),
        rows_new.len()
    );
    let case = format!("kleene-reach-{n}");
    json::record("struql", "E-batch", &case, "per_row_ms", t_old.as_secs_f64() * 1e3, "ms");
    json::record("struql", "E-batch", &case, "batched_ms", t_new.as_secs_f64() * 1e3, "ms");
    json::record("struql", "E-batch", &case, "speedup", speedup, "x");
    json::record("struql", "E-batch", &case, "rows", rows_new.len() as f64, "rows");

    // Part 2 — the compiled click-time query cache: first-visit (page
    // cache miss) latency across every article page, plans recompiled per
    // request vs prepared once per epoch.
    let site = sites::news_site(&corpus).build().unwrap();
    println!(
        "{:>11} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "query-cache", "pages", "total", "us/click", "plan-hits", "plan-misses"
    );
    let mut click_us = [0f64; 2];
    for (i, (label, cache)) in [("off", false), ("on", true)].into_iter().enumerate() {
        let dynsite = DynamicSite::new(site.database.clone(), &site.program, Mode::Context)
            .with_query_cache(cache);
        let roots = dynsite.roots("FrontRoot").unwrap();
        let front = dynsite.visit(&roots[0]).unwrap();
        let pages: Vec<PageKey> = front
            .edges
            .iter()
            .filter_map(|(_, t)| match t {
                DynTarget::Page(k) => Some(k.clone()),
                _ => None,
            })
            .collect();
        let ((), t) = time(|| {
            for k in &pages {
                dynsite.visit(k).unwrap();
            }
        });
        let m = dynsite.metrics();
        let us = t.as_secs_f64() * 1e6 / pages.len().max(1) as f64;
        click_us[i] = us;
        println!(
            "{:>11} {:>8} {:>12} {:>12.1} {:>12} {:>12}",
            label,
            pages.len(),
            ms(t),
            us,
            m.plan_cache_hits,
            m.plan_cache_misses
        );
        let case = format!("click-cache-{label}-{n}");
        json::record("serve", "E-batch", &case, "click_latency", us, "us");
        json::record("serve", "E-batch", &case, "plan_cache_hits", m.plan_cache_hits as f64, "hits");
        json::record(
            "serve",
            "E-batch",
            &case,
            "plan_cache_misses",
            m.plan_cache_misses as f64,
            "misses",
        );
    }
    json::record(
        "serve",
        "E-batch",
        &format!("click-cache-{n}"),
        "warm_click_speedup",
        click_us[0] / click_us[1].max(1e-9),
        "x",
    );
    println!();
}

/// E-shard — loaded latency under sharded epoch-snapshot serving: the
/// warm news-site click workload replayed by rising numbers of client
/// threads against 1/2/4/8 service shards, plus an unsharded baseline
/// at the same loads. Before anything is timed, every sharded body is
/// asserted byte-identical to the unsharded render of the same URL.
pub fn exp_shard() {
    use strudel_serve::{ClickService, ShardedService};

    println!("== E-shard: loaded click latency across service shards ==");
    let corpus = crate::paper_news_corpus(300);
    let site = sites::news_site(&corpus).build().unwrap();

    // Every URL reachable from the front page, via an unsharded scout.
    let baseline = SiteService::new(&site, Mode::Context);
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = baseline.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    let reference: Vec<String> = urls.iter().map(|u| baseline.handle(u).body).collect();

    const PASSES: usize = 10;
    let shard_counts = [1usize, 2, 4, 8];
    let loads = [1usize, 2, 4, 8];

    // One measured cell: `load` client threads replay the URL list
    // PASSES times against a warm service, each click timed exactly.
    fn drive<S: ClickService>(
        service: &S,
        urls: &[String],
        load: usize,
        passes: usize,
    ) -> (Vec<u64>, Duration) {
        for u in urls {
            service.handle(u); // warm every owner shard outside the timed region
        }
        let start = Instant::now();
        let mut lat: Vec<u64> = Vec::with_capacity(load * passes * urls.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..load)
                .map(|t| {
                    s.spawn(move || {
                        let mut mine = Vec::with_capacity(passes * urls.len());
                        for p in 0..passes {
                            for k in 0..urls.len() {
                                // Offset per thread and pass so clients
                                // never march over the URLs in lockstep.
                                let u = &urls[(k + t * 7 + p) % urls.len()];
                                let c = Instant::now();
                                service.handle(u);
                                mine.push(c.elapsed().as_nanos() as u64);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                lat.extend(h.join().unwrap());
            }
        });
        let wall = start.elapsed();
        lat.sort_unstable();
        (lat, wall)
    }

    fn percentile(sorted: &[u64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] as f64
    }

    println!(
        "{:>14} {:>8} {:>9} {:>9} {:>12}",
        "cell", "clicks", "p50(us)", "p99(us)", "clicks/s"
    );
    let report = |label: String, lat: Vec<u64>, wall: Duration| {
        let p50 = percentile(&lat, 0.50) / 1e3; // collected in ns, reported in us
        let p99 = percentile(&lat, 0.99) / 1e3;
        let rate = lat.len() as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{:>14} {:>8} {:>9.2} {:>9.2} {:>12.0}",
            label,
            lat.len(),
            p50,
            p99,
            rate
        );
        json::record("serve", "E-shard", &label, "p50", p50, "us");
        json::record("serve", "E-shard", &label, "p99", p99, "us");
        json::record("serve", "E-shard", &label, "clicks_per_s", rate, "clicks/s");
    };

    for &load in &loads {
        let (lat, wall) = drive(&baseline, &urls, load, PASSES);
        report(format!("unsharded-c{load}"), lat, wall);
    }
    for &shards in &shard_counts {
        let service = ShardedService::new(&site, Mode::Context, shards);
        for (u, want) in urls.iter().zip(&reference) {
            assert_eq!(
                &service.handle(u).body,
                want,
                "sharded body diverged from unsharded at {u} with {shards} shards"
            );
        }
        for &load in &loads {
            let (lat, wall) = drive(&service, &urls, load, PASSES);
            report(format!("s{shards}-c{load}"), lat, wall);
        }
    }
    println!();
}

/// E-event — the epoll keep-alive transport against the connection-per-
/// request baseline, over real sockets. Four measured cases (thread pool
/// with per-request connections, epoll with per-request connections,
/// epoll keep-alive serial, epoll keep-alive pipelined), a summary
/// `keepalive_speedup` row, and a 1000-idle-connection hold recording the
/// open-connection gauge, the OS-thread delta, and the fast-click p50
/// while the idle fds are held.
pub fn exp_event() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use strudel_serve::{serve, ServerConfig, Transport};

    println!("== E-event: keep-alive clicks over the epoll reactor ==");
    if !Transport::Epoll.is_supported() {
        println!("  (epoll unsupported on this platform; skipping)\n");
        return;
    }

    let corpus = crate::paper_news_corpus(60);
    let site = sites::news_site(&corpus).build().unwrap();
    let scout = SiteService::new(&site, Mode::Context);
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = scout.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }

    const CLIENTS: usize = 4;
    const PASSES: usize = 4;
    const DEPTH: usize = 6;

    /// One complete response off a kept-alive connection: headers up to
    /// the blank line, then exactly `Content-Length` body bytes.
    fn read_response(reader: &mut BufReader<TcpStream>) -> bool {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return false,
                Ok(_) if line == "\r\n" => break,
                Ok(_) => head.push_str(&line),
            }
        }
        let Some(length) = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse::<usize>().ok())
        else {
            return false;
        };
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).is_ok()
    }

    // Connection-per-request: every click pays connect + close.
    fn drive_fresh(addr: SocketAddr, urls: &[String]) -> (Vec<u64>, Duration) {
        let start = Instant::now();
        let mut lat: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    s.spawn(move || {
                        let mut mine = Vec::with_capacity(PASSES * urls.len());
                        for p in 0..PASSES {
                            for k in 0..urls.len() {
                                let u = &urls[(k + t * 7 + p) % urls.len()];
                                let c = Instant::now();
                                let mut stream = TcpStream::connect(addr).unwrap();
                                write!(
                                    stream,
                                    "GET {u} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
                                )
                                .unwrap();
                                let mut out = Vec::new();
                                stream.read_to_end(&mut out).unwrap();
                                assert!(out.starts_with(b"HTTP/1.1 200"), "{u}");
                                mine.push(c.elapsed().as_nanos() as u64);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                lat.extend(h.join().unwrap());
            }
        });
        let wall = start.elapsed();
        lat.sort_unstable();
        (lat, wall)
    }

    // Keep-alive: one connection per client, every click reuses it.
    fn drive_keepalive(addr: SocketAddr, urls: &[String]) -> (Vec<u64>, Duration) {
        let start = Instant::now();
        let mut lat: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    s.spawn(move || {
                        let stream = TcpStream::connect(addr).unwrap();
                        // One write per request: `write!` issues a syscall
                        // per format fragment, and the partial first
                        // segment stalls on Nagle + delayed ACK once the
                        // connection leaves quickack mode.
                        stream.set_nodelay(true).unwrap();
                        let mut writer = stream.try_clone().unwrap();
                        let mut reader = BufReader::new(stream);
                        let mut mine = Vec::with_capacity(PASSES * urls.len());
                        for p in 0..PASSES {
                            for k in 0..urls.len() {
                                let u = &urls[(k + t * 7 + p) % urls.len()];
                                let request =
                                    format!("GET {u} HTTP/1.1\r\nHost: localhost\r\n\r\n");
                                let c = Instant::now();
                                writer.write_all(request.as_bytes()).unwrap();
                                assert!(read_response(&mut reader), "{u}");
                                mine.push(c.elapsed().as_nanos() as u64);
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                lat.extend(h.join().unwrap());
            }
        });
        let wall = start.elapsed();
        lat.sort_unstable();
        (lat, wall)
    }

    // Pipelined keep-alive: DEPTH requests per burst on one connection;
    // per-click latency is the burst wall divided by its depth.
    fn drive_pipelined(addr: SocketAddr, urls: &[String]) -> (Vec<u64>, Duration) {
        let start = Instant::now();
        let mut lat: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|t| {
                    s.spawn(move || {
                        let stream = TcpStream::connect(addr).unwrap();
                        let mut writer = stream.try_clone().unwrap();
                        let mut reader = BufReader::new(stream);
                        let mut mine = Vec::with_capacity(PASSES * urls.len());
                        for p in 0..PASSES {
                            // Offset per thread and pass so clients never
                            // march over the URLs in lockstep.
                            let mut rotated: Vec<&String> = urls.iter().collect();
                            rotated.rotate_left((t * 7 + p) % urls.len());
                            for chunk in rotated.chunks(DEPTH) {
                                let c = Instant::now();
                                let mut burst = String::new();
                                for u in chunk {
                                    burst.push_str(&format!(
                                        "GET {u} HTTP/1.1\r\nHost: localhost\r\n\r\n"
                                    ));
                                }
                                writer.write_all(burst.as_bytes()).unwrap();
                                for _ in 0..chunk.len() {
                                    assert!(read_response(&mut reader));
                                }
                                let per_click =
                                    c.elapsed().as_nanos() as u64 / chunk.len() as u64;
                                mine.extend((0..chunk.len()).map(|_| per_click));
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                lat.extend(h.join().unwrap());
            }
        });
        let wall = start.elapsed();
        lat.sort_unstable();
        (lat, wall)
    }

    fn percentile(sorted: &[u64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx] as f64
    }

    let start_server = |transport: Transport, keepalive: Duration, max_conns: usize| {
        let service = Arc::new(SiteService::new(&site, Mode::Context));
        let server = serve(
            Arc::clone(&service),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                transport,
                keepalive_timeout: keepalive,
                max_connections: max_conns,
                ..Default::default()
            },
        )
        .unwrap();
        (service, server)
    };

    println!(
        "{:>18} {:>8} {:>9} {:>9} {:>12}",
        "case", "clicks", "p50(us)", "p99(us)", "clicks/s"
    );
    let report = |label: &str, lat: Vec<u64>, wall: Duration| -> f64 {
        let p50 = percentile(&lat, 0.50) / 1e3;
        let p99 = percentile(&lat, 0.99) / 1e3;
        let rate = lat.len() as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{:>18} {:>8} {:>9.2} {:>9.2} {:>12.0}",
            label,
            lat.len(),
            p50,
            p99,
            rate
        );
        json::record("serve", "E-event", label, "p50", p50, "us");
        json::record("serve", "E-event", label, "p99", p99, "us");
        json::record("serve", "E-event", label, "clicks_per_s", rate, "clicks/s");
        rate
    };

    // Best of two repetitions per case: on a shared box a single pass is
    // hostage to scheduler noise in either direction of the ratio.
    let best = |f: &dyn Fn() -> (Vec<u64>, Duration)| {
        let (a_lat, a_wall) = f();
        let (b_lat, b_wall) = f();
        let a_rate = a_lat.len() as f64 / a_wall.as_secs_f64().max(1e-9);
        let b_rate = b_lat.len() as f64 / b_wall.as_secs_f64().max(1e-9);
        if a_rate >= b_rate {
            (a_lat, a_wall)
        } else {
            (b_lat, b_wall)
        }
    };

    let keepalive_secs = Duration::from_secs(5);
    let (_svc, server) = start_server(Transport::Threads, keepalive_secs, 4096);
    let addr = server.addr();
    let (lat, wall) = best(&|| drive_fresh(addr, &urls));
    let baseline_rate = report("threads-close", lat, wall);
    server.shutdown();

    let (_svc, server) = start_server(Transport::Epoll, keepalive_secs, 4096);
    let addr = server.addr();
    let (lat, wall) = best(&|| drive_fresh(addr, &urls));
    report("epoll-close", lat, wall);
    let (lat, wall) = best(&|| drive_keepalive(addr, &urls));
    let serial_rate = report("epoll-keepalive", lat, wall);
    let (lat, wall) = best(&|| drive_pipelined(addr, &urls));
    let pipelined_rate = report("epoll-pipelined", lat, wall);
    server.shutdown();

    let speedup = serial_rate.max(pipelined_rate) / baseline_rate.max(1e-9);
    println!(
        "  keep-alive speedup over connection-per-request: {speedup:.1}x \
         (target >= 3x)"
    );
    json::record("serve", "E-event", "summary", "keepalive_speedup", speedup, "x");

    // The idle hold: 1000 kept-alive connections must cost fds, not
    // threads, and must not degrade fresh clicks arriving alongside.
    const IDLE: usize = 1000;
    let (service, server) = start_server(Transport::Epoll, Duration::from_secs(60), IDLE + 200);
    let addr = server.addr();
    let threads_before = os_thread_count();
    let mut held = Vec::with_capacity(IDLE);
    for _ in 0..IDLE {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert!(read_response(&mut reader), "idle connection served");
        held.push((writer, reader));
    }
    let open = service.open_connections();
    let thread_delta = os_thread_count().saturating_sub(threads_before);
    let mut fast: Vec<u64> = (0..30)
        .map(|_| {
            let c = Instant::now();
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET / HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            assert!(out.starts_with(b"HTTP/1.1 200"));
            c.elapsed().as_nanos() as u64
        })
        .collect();
    fast.sort_unstable();
    let fast_p50 = percentile(&fast, 0.50) / 1e3;
    println!(
        "  idle hold: {open} open connections, +{thread_delta} OS threads, \
         fast-click p50 {fast_p50:.2}us"
    );
    json::record("serve", "E-event", "idle-hold", "open_connections", open as f64, "conns");
    json::record("serve", "E-event", "idle-hold", "thread_delta", thread_delta as f64, "threads");
    json::record("serve", "E-event", "idle-hold", "fast_p50", fast_p50, "us");
    drop(held);
    server.shutdown();
    println!();
}

/// This process's OS thread count (Linux: `/proc/self/status`).
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// E-crash — recovery cost and crash-point coverage. Measures the four
/// open paths a deployment actually hits (clean snapshot, replay-heavy
/// WAL, torn-tail repair, checkpoint itself), then sweeps a seeded
/// workload crashing at every injected storage fault point and verifies
/// each reopen against a fault-free oracle.
pub fn exp_crash() {
    use strudel::repo::vfs::{FaultMode, FaultVfs, Vfs};
    use strudel_prng::{Rng, SeedableRng, SmallRng};

    println!("== E-crash: recovery cost & crash-point coverage ==");
    let dir = std::env::temp_dir().join(format!("strudel-bench-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Delta i adds node i (graphs here grow one node per delta) plus one
    // attribute edge on it — enough to exercise both WAL record kinds.
    let delta_for = |i: usize| {
        let mut d = GraphDelta::new();
        d.add_node(Some(&format!("n{i}")));
        d.add_edge(Oid::from_index(i), "seq", Value::from(i as i64));
        d
    };

    const DELTAS: usize = 2000;
    {
        let mut db = Database::open(&dir, IndexLevel::None).unwrap();
        for i in 0..DELTAS {
            db.apply_delta(&delta_for(i)).unwrap();
        }
    }

    println!("{:>10} {:>16} {:>10}", "wal frames", "open path", "time");
    let open_row = |label: &str, frames: usize| {
        let (db, t) = time(|| Database::open(&dir, IndexLevel::None).unwrap());
        println!("{:>10} {:>16} {:>10}", frames, label, ms(t));
        json::record(
            "crash",
            "E-crash",
            label,
            "open_latency",
            t.as_secs_f64() * 1e3,
            "ms",
        );
        db
    };

    // Replay-heavy: every delta still sits in the WAL.
    let mut db = open_row("replay-open", DELTAS);
    let ((), t_ckpt) = time(|| db.checkpoint().unwrap());
    drop(db);
    println!("{:>10} {:>16} {:>10}", DELTAS, "checkpoint", ms(t_ckpt));
    json::record(
        "crash",
        "E-crash",
        "checkpoint",
        "latency",
        t_ckpt.as_secs_f64() * 1e3,
        "ms",
    );

    // Clean: snapshot only, empty WAL.
    drop(open_row("clean-open", 0));

    // Torn tail: a frame sheared mid-write must be repaired, not fatal.
    {
        let mut db = Database::open(&dir, IndexLevel::None).unwrap();
        db.apply_delta(&delta_for(DELTAS)).unwrap();
        drop(db);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad]).unwrap(); // claims 64 bytes, has 0
    }
    drop(open_row("torn-tail-open", 1));

    // Crash-point sweep: replay a seeded workload, crash at fault point k,
    // reopen cleanly, compare with the same workload run fault-free.
    let seed = 0x51EDu64;
    let sweep_dir = |tag: &str| {
        let d = std::env::temp_dir().join(format!(
            "strudel-bench-crash-sweep-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let run = |dir: &std::path::Path, vfs: Option<std::sync::Arc<FaultVfs>>| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v: std::sync::Arc<dyn Vfs> = match &vfs {
            Some(f) => f.clone(),
            None => std::sync::Arc::new(strudel::repo::vfs::RealVfs),
        };
        let mut db = match Database::open_with(dir, IndexLevel::None, v) {
            Ok(db) => db,
            Err(_) => return 0usize, // crashed during open
        };
        let mut ok = 0usize;
        for i in 0..40 {
            let r = db.apply_delta(&delta_for(i));
            if r.is_err() {
                break; // crash point hit
            }
            ok += 1;
            if rng.gen_bool(0.15) && db.checkpoint().is_err() {
                break;
            }
        }
        ok
    };

    let probe = std::sync::Arc::new(FaultVfs::new());
    let total_ops = {
        let d = sweep_dir("count");
        run(&d, Some(probe.clone()));
        let n = probe.op_count();
        let _ = std::fs::remove_dir_all(&d);
        n
    };

    let mut covered = 0u64;
    let mut worst_recovery = Duration::ZERO;
    for k in 0..total_ops {
        let d = sweep_dir("point");
        let vfs = std::sync::Arc::new(FaultVfs::new());
        vfs.arm_crash(k, FaultMode::Fail);
        let ok_ops = run(&d, Some(vfs.clone()));
        if !vfs.fired() {
            let _ = std::fs::remove_dir_all(&d);
            continue;
        }
        covered += 1;
        let (recovered, t) = time(|| Database::open(&d, IndexLevel::None).unwrap());
        worst_recovery = worst_recovery.max(t);
        // Exactly the acknowledged ops survive: nothing lost, nothing
        // half-applied. The oracle is the same prefix replayed in memory.
        let mut expect = Database::new(IndexLevel::None);
        for i in 0..ok_ops {
            expect.apply_delta(&delta_for(i)).unwrap();
        }
        assert!(
            graphs_equivalent(expect.graph(), recovered.graph()),
            "crash at op {k}: recovered state diverges from the {ok_ops}-op oracle"
        );
        let _ = std::fs::remove_dir_all(&d);
    }
    println!(
        "\ncrash sweep: {covered}/{total_ops} fault points crashed & recovered; \
         worst reopen {}",
        ms(worst_recovery)
    );
    json::record("crash", "E-crash", "sweep", "points_recovered", covered as f64, "count");
    json::record(
        "crash",
        "E-crash",
        "sweep",
        "worst_recovery",
        worst_recovery.as_secs_f64() * 1e3,
        "ms",
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!();
}

/// E-pager — the paged store serves a site much larger than its buffer
/// pool: hit-rate and read-latency curves as the pool grows, plus a
/// correctness check (the materialized snapshot must equal the in-memory
/// oracle at every pool size).
pub fn exp_pager() {
    use strudel::repo::{PagedRepo, PagerConfig};
    use strudel_prng::{Rng, SeedableRng, SmallRng};

    println!("== E-pager: buffer-pool scaling on the paged store ==");

    // An org-shaped graph big enough that, at a 256-byte page, the data
    // vastly outsizes the smallest pools in the sweep.
    const NODES: usize = 4000;
    let mut oracle = Database::new(IndexLevel::None);
    for i in 0..NODES {
        let mut d = GraphDelta::new();
        d.add_node(Some(&format!("n{i}")));
        d.add_edge(Oid::from_index(i), "seq", Value::from(i as i64));
        if i > 0 {
            d.add_edge(
                Oid::from_index(i),
                "parent",
                Value::from(Oid::from_index(i / 2)),
            );
        }
        if i % 10 == 0 {
            d.collect("Tens", Value::from(Oid::from_index(i)));
        }
        oracle.apply_delta(&d).unwrap();
    }

    let dir = std::env::temp_dir().join(format!("strudel-bench-pager-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let page_size = 256usize;
    let base = PagerConfig {
        page_size,
        pool_pages: 64,
        ..Default::default()
    };
    drop(PagedRepo::bulk_load(&dir, base, oracle.graph()).unwrap());
    let data_pages = std::fs::metadata(dir.join("pager.pages"))
        .map(|m| m.len() as usize / page_size)
        .unwrap_or(0);
    println!(
        "site: {NODES} nodes in {data_pages} pages of {page_size} B \
         ({}x the smallest pool in the sweep)\n",
        data_pages / 8
    );
    json::record("pager", "E-pager", "site", "data_pages", data_pages as f64, "pages");

    const READS: usize = 20_000;
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12}",
        "pool pages", "hit rate", "evictions", "resident", "read latency"
    );
    for pool_pages in [8usize, 16, 32, 64, 128, 256, 512] {
        let cfg = PagerConfig {
            page_size,
            pool_pages,
            ..Default::default()
        };
        let repo = PagedRepo::open(&dir, cfg).unwrap();
        let snap = repo.snapshot();

        // Correctness first: the whole site round-trips through this pool.
        let materialized = snap.materialize().unwrap();
        assert!(
            graphs_equivalent(oracle.graph(), &materialized),
            "pool of {pool_pages} pages served a divergent graph"
        );

        // A zipf-ish point-read workload: random node edge scans with a
        // hot head, the access pattern a click-time server sees.
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        let (_, _, h0, m0, _, _) = repo.pool_stats();
        let (touched, t) = time(|| {
            let mut touched = 0usize;
            for _ in 0..READS {
                let oid = if rng.gen_bool(0.5) {
                    rng.gen_range(0..NODES as u64 / 10)
                } else {
                    rng.gen_range(0..NODES as u64)
                };
                touched += snap.edges(oid).unwrap().len();
            }
            touched
        });
        assert!(touched > 0);
        let (occ, cap, h1, m1, ev, _) = repo.pool_stats();
        let hits = h1 - h0;
        let misses = m1 - m0;
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64 * 100.0;
        let per_read_us = t.as_secs_f64() * 1e6 / READS as f64;
        println!(
            "{:>10} {:>9.1}% {:>10} {:>7}/{:<3} {:>10.2}us",
            pool_pages, hit_rate, ev, occ, cap, per_read_us
        );
        let case = format!("pool-{pool_pages}");
        json::record("pager", "E-pager", &case, "hit_rate", hit_rate, "percent");
        json::record("pager", "E-pager", &case, "read_latency", per_read_us, "us");
        json::record("pager", "E-pager", &case, "evictions", ev as f64, "count");
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!();
}

/// Locates the `strudel` binary next to this bench binary (both land in
/// `target/<profile>/`). E-cluster spawns real worker processes from it.
fn cluster_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let candidates = [dir.join("strudel"), dir.parent()?.join("strudel")];
    candidates.into_iter().find(|c| c.is_file())
}

/// E-cluster — supervised multi-process failover under kill-torture:
/// recovery-time distribution for SIGKILLed shard workers, degraded vs
/// dropped request counts while traffic runs through the kills, and the
/// cross-process delta-barrier latency.
pub fn exp_cluster() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use strudel::repo::{PagedRepo, PagerConfig};
    use strudel_graph::ddl;
    use strudel_serve::{ClickService, ClusterConfig, ClusterService};

    println!("== E-cluster: supervised multi-process failover ==");
    let Some(binary) = cluster_binary() else {
        println!(
            "skipped: no `strudel` binary beside the bench binary \
             (build it first: cargo build --release -p strudel-serve)\n"
        );
        return;
    };

    const WORKERS: usize = 3;
    const KILL_ROUNDS: usize = 3;
    const ARTICLES: usize = 24;
    const DELTAS: usize = 8;

    // The same article site the cluster e2e suite serves, at bench scale.
    let query = r#"
        create RootPage()
        where Articles(x)
        create ArticlePage(x)
        link RootPage() -> "story" -> ArticlePage(x)
        collect Roots(RootPage()), ArticlePages(ArticlePage(x))
        { where x -> "title" -> t
          link ArticlePage(x) -> "title" -> t }
        { where x -> "body" -> b
          link ArticlePage(x) -> "body" -> b }
    "#;
    let mut source = String::new();
    for i in 0..ARTICLES {
        source.push_str(&format!(
            "object a{i} in Articles {{ title : \"Article {i:03}\"; body : \"body {i}\"; }}\n"
        ));
    }

    let root = std::env::temp_dir().join(format!("strudel-bench-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let site_dir = root.join("site");
    let store_dir = root.join("store");
    std::fs::create_dir_all(site_dir.join("templates")).unwrap();
    std::fs::create_dir_all(site_dir.join("sources")).unwrap();
    std::fs::write(site_dir.join("site.struql"), query).unwrap();
    std::fs::write(
        site_dir.join("site.conf"),
        "root Roots\nobject RootPage root\ncollection ArticlePages article\n",
    )
    .unwrap();
    std::fs::write(
        site_dir.join("templates/root.tmpl"),
        "<html><SFMT story UL ORDER=ascend KEY=title></html>",
    )
    .unwrap();
    std::fs::write(
        site_dir.join("templates/article.tmpl"),
        "<html><h1><SFMT title></h1><p><SFMT body></p></html>",
    )
    .unwrap();
    std::fs::write(site_dir.join("sources/articles.ddl"), &source).unwrap();
    std::fs::create_dir_all(&store_dir).unwrap();
    let graph = ddl::parse(&source).unwrap();
    drop(PagedRepo::bulk_load(&store_dir, PagerConfig::default(), &graph).unwrap());

    let mut config = ClusterConfig::new(
        WORKERS,
        binary,
        site_dir.clone(),
        store_dir.clone(),
    );
    config.backoff_base = Duration::from_millis(20);
    config.backoff_cap = Duration::from_millis(500);
    config.probe_interval = Duration::from_millis(100);
    config.min_uptime = Duration::from_millis(300);
    let store = PagedRepo::open(&store_dir, PagerConfig::default()).unwrap();
    let cluster = ClusterService::start(store, config).expect("cluster start");
    let report = ClickService::warm(&*cluster, strudel_struql::Parallelism::Threads(2)).unwrap();
    println!(
        "site: {} pages over {WORKERS} worker processes; \
         {KILL_ROUNDS} SIGKILL rounds x {WORKERS} shards under traffic",
        report.pages
    );

    // Collect the servable path set once, while everything is fresh.
    let mut paths = vec!["/".to_string()];
    let front = cluster.handle("/");
    let mut rest = front.body.as_str();
    while let Some(i) = rest.find("href=\"") {
        rest = &rest[i + 6..];
        let Some(end) = rest.find('"') else { break };
        let href = &rest[..end];
        if href.starts_with('/') && !href.starts_with("/metrics") && !paths.iter().any(|p| p == href)
        {
            paths.push(href.to_string());
        }
        rest = &rest[end..];
    }

    // Traffic: cycle the path set through the router while workers die.
    // Every response must be a 200 — fresh or a degraded LKG copy, never
    // an error. `failed` counts the contract violations (must stay 0).
    let stop = Arc::new(AtomicBool::new(false));
    let fresh = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let traffic = {
        let (cluster, paths) = (cluster.clone(), paths.clone());
        let (stop, fresh, degraded, failed) =
            (stop.clone(), fresh.clone(), degraded.clone(), failed.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                for path in &paths {
                    let r = cluster.handle(path);
                    match (r.status, r.degraded) {
                        (200, false) => fresh.fetch_add(1, Ordering::Relaxed),
                        (200, true) => degraded.fetch_add(1, Ordering::Relaxed),
                        _ => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }
        })
    };

    // Kill-torture: SIGKILL every shard in turn, measuring kill → all
    // workers ready again. The post-recovery pause keeps each worker
    // alive past min_uptime so deliberate kills are forgiven, not
    // counted toward the crash-loop breaker.
    let mut recoveries: Vec<Duration> = Vec::new();
    for _ in 0..KILL_ROUNDS {
        for shard in 0..WORKERS {
            let t0 = Instant::now();
            assert!(cluster.kill_worker(shard), "shard {shard} had a live worker");
            while cluster.ready_workers() < WORKERS {
                assert!(
                    t0.elapsed() < Duration::from_secs(60),
                    "shard {shard} never recovered"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            recoveries.push(t0.elapsed());
            std::thread::sleep(Duration::from_millis(350));
        }
    }

    // Barrier latency: commit → every live worker confirmed caught up.
    let mut barrier: Vec<Duration> = Vec::new();
    for k in 0..DELTAS {
        let mut delta = GraphDelta::new();
        let oid = Oid::from_index(ARTICLES + k);
        delta.add_node(None);
        delta.add_edge(oid, "title", Value::string(format!("Injected {k:03}").as_str()));
        delta.add_edge(oid, "body", Value::string(format!("payload {k}").as_str()));
        delta.collect("Articles", Value::Node(oid));
        let (outcome, t) = time(|| cluster.apply_delta(&delta).unwrap());
        assert!(outcome.caught_up.iter().all(|c| *c), "delta {k} left a worker behind");
        barrier.push(t);
    }

    stop.store(true, Ordering::Release);
    traffic.join().unwrap();
    let restarts: u64 = (0..WORKERS).map(|s| cluster.worker_restarts(s)).sum();
    cluster.shutdown();

    recoveries.sort();
    barrier.sort();
    let p50 = recoveries[recoveries.len() / 2];
    let (lo, hi) = (recoveries[0], *recoveries.last().unwrap());
    let bar_p50 = barrier[barrier.len() / 2];
    let (fresh, degraded, failed) = (
        fresh.load(Ordering::Acquire),
        degraded.load(Ordering::Acquire),
        failed.load(Ordering::Acquire),
    );

    println!("\n{:>28} {:>10} {:>10} {:>10}", "", "min", "p50", "max");
    println!(
        "{:>28} {:>10} {:>10} {:>10}",
        "kill -> all ready",
        ms(lo),
        ms(p50),
        ms(hi)
    );
    println!(
        "{:>28} {:>10} {:>10} {:>10}",
        "delta barrier (all workers)",
        ms(barrier[0]),
        ms(bar_p50),
        ms(*barrier.last().unwrap())
    );
    println!(
        "\ntraffic through {} kills: {fresh} fresh, {degraded} degraded (stale LKG), \
         {failed} dropped/errored; {restarts} supervised restarts",
        recoveries.len()
    );
    assert_eq!(failed, 0, "a request was dropped or errored during failover");

    json::record("cluster", "E-cluster", "recovery", "samples", recoveries.len() as f64, "count");
    json::record("cluster", "E-cluster", "recovery", "min", lo.as_secs_f64() * 1e3, "ms");
    json::record("cluster", "E-cluster", "recovery", "p50", p50.as_secs_f64() * 1e3, "ms");
    json::record("cluster", "E-cluster", "recovery", "max", hi.as_secs_f64() * 1e3, "ms");
    json::record(
        "cluster",
        "E-cluster",
        "barrier",
        "p50",
        bar_p50.as_secs_f64() * 1e3,
        "ms",
    );
    json::record("cluster", "E-cluster", "traffic", "fresh", fresh as f64, "count");
    json::record("cluster", "E-cluster", "traffic", "degraded", degraded as f64, "count");
    json::record("cluster", "E-cluster", "traffic", "dropped", failed as f64, "count");
    json::record("cluster", "E-cluster", "traffic", "restarts", restarts as f64, "count");

    let _ = std::fs::remove_dir_all(&root);
    println!();
}

/// Runs every experiment in order.
pub fn run_all() {
    exp_site_stats();
    exp_suitability();
    exp_multiversion();
    exp_site_schema();
    exp_verify();
    exp_dynamic();
    exp_diff();
    exp_incremental();
    exp_indexing();
    exp_struql_scale();
    exp_batch();
    exp_shard();
    exp_event();
    exp_htmlgen();
    exp_mediate();
    exp_trace();
    exp_crash();
    exp_pager();
    exp_cluster();
}
