//! # strudel-bench
//!
//! Shared harness for the experiment suite. Each public `exp_*` function
//! regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured); the
//! `experiments` binary dispatches on experiment id, and the Criterion
//! benches reuse the same site builders for timing series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod microbench;
pub mod sites;

pub use sites::{paper_homepage_site, paper_news_corpus, paper_news_site, paper_org_site};
