//! Paper-scale site construction from the synthetic workloads.

use strudel::sites;
use strudel::Site;
use strudel_workload::{bib, news, org};

/// The mff-style homepage site at paper scale (a bibliography of `entries`
/// publications plus the personal-data file).
pub fn paper_homepage_site(entries: usize) -> Site {
    let bib_src = bib::generate(&bib::BibConfig {
        entries,
        ..Default::default()
    });
    sites::homepage_site(&bib_src, sites::PERSONAL_DDL_EXAMPLE)
        .build()
        .expect("homepage site builds")
}

/// The AT&T-style organization site (≈400 people, 5 sources by default).
pub fn paper_org_site(people: usize) -> Site {
    let data = org::generate(&org::OrgConfig {
        people,
        ..Default::default()
    });
    sites::org_site(
        &data.people_csv,
        &data.departments_csv,
        &data.projects_rec,
        &data.demos_rec,
        &data.legacy_html,
    )
    .build()
    .expect("org site builds")
}

/// The CNN-style article corpus.
pub fn paper_news_corpus(articles: usize) -> Vec<(String, String)> {
    news::generate(&news::NewsConfig {
        articles,
        ..Default::default()
    })
    .pages
}

/// The CNN-style news site over `articles` generated pages.
pub fn paper_news_site(articles: usize) -> Site {
    sites::news_site(&paper_news_corpus(articles))
        .build()
        .expect("news site builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_sites_build() {
        // Smaller than paper scale to keep the test quick; the experiment
        // harness runs the full sizes.
        let home = paper_homepage_site(10);
        assert!(home.stats.site_nodes > 20);
        let org = paper_org_site(40);
        assert!(org.stats.site_nodes > 50);
        let news = paper_news_site(30);
        assert!(news.stats.site_nodes > 30);
    }
}
