//! Machine-readable benchmark output.
//!
//! Experiments call [`record`] as they print their human-readable tables;
//! the driver binary, when invoked with `--json`, calls [`write_files`]
//! at the end to emit one `BENCH_<suite>.json` per suite — the
//! perf-trajectory files tracked at the repository root. The schema is
//! documented in EXPERIMENTS.md:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "struql",
//!   "rows": [
//!     {"experiment": "E-batch", "case": "kleene-reach-1000",
//!      "metric": "speedup", "value": 12.5, "unit": "x"}
//!   ]
//! }
//! ```
//!
//! No serde: the workspace is dependency-free, and the format is flat
//! enough that a hand-rolled writer (with full string escaping) is less
//! code than a library binding.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

#[derive(Clone, Debug)]
struct Row {
    suite: String,
    experiment: String,
    case: String,
    metric: String,
    value: f64,
    unit: String,
}

static SINK: Mutex<Vec<Row>> = Mutex::new(Vec::new());

/// Records one benchmark measurement. `suite` selects the output file
/// (`"struql"` → `BENCH_struql.json`); `experiment`/`case`/`metric` name
/// the measurement; `unit` is a free-form suffix (`"ms"`, `"x"`, `"rows"`).
pub fn record(suite: &str, experiment: &str, case: &str, metric: &str, value: f64, unit: &str) {
    SINK.lock().unwrap().push(Row {
        suite: suite.to_string(),
        experiment: experiment.to_string(),
        case: case.to_string(),
        metric: metric.to_string(),
        value,
        unit: unit.to_string(),
    });
}

/// Drops everything recorded so far (tests).
pub fn reset() {
    SINK.lock().unwrap().clear();
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints integral floats as "12" — valid JSON numbers either
        // way, and shortest-round-trip for everything else.
        format!("{v}")
    } else {
        // JSON has no Infinity/NaN; null keeps the row parseable.
        "null".to_string()
    }
}

/// Serializes one suite's rows.
fn render(suite: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema_version\": 1,\n  \"suite\": \"{}\",\n  \"rows\": [\n",
        escape(suite)
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"experiment\": \"{}\", \"case\": \"{}\", \"metric\": \"{}\", \
             \"value\": {}, \"unit\": \"{}\"}}{}",
            escape(&r.experiment),
            escape(&r.case),
            escape(&r.metric),
            fmt_value(r.value),
            escape(&r.unit),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes one `BENCH_<suite>.json` per recorded suite into `dir`,
/// returning the paths written. Suites appear in first-recorded order;
/// rows keep recording order.
pub fn write_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let rows = SINK.lock().unwrap().clone();
    let mut suites: Vec<String> = Vec::new();
    for r in &rows {
        if !suites.contains(&r.suite) {
            suites.push(r.suite.clone());
        }
    }
    let mut paths = Vec::new();
    for suite in suites {
        let suite_rows: Vec<Row> = rows.iter().filter(|r| r.suite == suite).cloned().collect();
        let path = dir.join(format!("BENCH_{suite}.json"));
        std::fs::write(&path, render(&suite, &suite_rows))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_flat_rows() {
        let rows = vec![
            Row {
                suite: "struql".into(),
                experiment: "E-batch".into(),
                case: "kleene \"reach\"".into(),
                metric: "speedup".into(),
                value: 12.5,
                unit: "x".into(),
            },
            Row {
                suite: "struql".into(),
                experiment: "E-batch".into(),
                case: "warm".into(),
                metric: "latency".into(),
                value: f64::NAN,
                unit: "ms".into(),
            },
        ];
        let s = render("struql", &rows);
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("kleene \\\"reach\\\""));
        assert!(s.contains("\"value\": 12.5,"));
        assert!(s.contains("\"value\": null"), "NaN maps to null: {s}");
        // Exactly one comma-separated rows array: last row has no comma.
        assert!(s.trim_end().ends_with("]\n}"));
    }

    #[test]
    fn write_files_emits_one_file_per_suite() {
        reset();
        record("suiteA", "E-x", "c", "m", 1.0, "ms");
        record("suiteB", "E-y", "c", "m", 2.0, "ms");
        record("suiteA", "E-x", "c2", "m", 3.0, "ms");
        let dir = std::env::temp_dir().join(format!("strudel-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = write_files(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        let a = std::fs::read_to_string(dir.join("BENCH_suiteA.json")).unwrap();
        assert_eq!(a.matches("\"experiment\"").count(), 2);
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }
}
