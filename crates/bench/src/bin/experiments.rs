//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation on the synthetic corpora.
//!
//! ```text
//! cargo run --release -p strudel-bench --bin experiments            # all
//! cargo run --release -p strudel-bench --bin experiments -- <ids…>  # some
//! ```
//!
//! Ids: `site-stats` (T1), `suitability` (F8), `multiversion`,
//! `site-schema`, `verify`, `dynamic`, `incremental`, `indexing`,
//! `struql-scale`, `htmlgen`, `mediate`, `trace`, `all`.

use strudel_bench::experiments as e;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match id {
            "all" => e::run_all(),
            "site-stats" => e::exp_site_stats(),
            "suitability" => e::exp_suitability(),
            "multiversion" => e::exp_multiversion(),
            "site-schema" => e::exp_site_schema(),
            "verify" => e::exp_verify(),
            "dynamic" => e::exp_dynamic(),
            "incremental" => e::exp_incremental(),
            "indexing" => e::exp_indexing(),
            "struql-scale" => e::exp_struql_scale(),
            "htmlgen" => e::exp_htmlgen(),
            "mediate" => e::exp_mediate(),
            "trace" => e::exp_trace(),
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "known: site-stats suitability multiversion site-schema verify dynamic \
                     incremental indexing struql-scale htmlgen mediate trace all"
                );
                std::process::exit(2);
            }
        }
    }
}
