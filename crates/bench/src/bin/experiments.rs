//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation on the synthetic corpora.
//!
//! ```text
//! cargo run --release -p strudel-bench --bin experiments            # all
//! cargo run --release -p strudel-bench --bin experiments -- <ids…>  # some
//! cargo run --release -p strudel-bench --bin experiments -- all --json
//! ```
//!
//! Ids: `site-stats` (T1), `suitability` (F8), `multiversion`,
//! `site-schema`, `verify`, `dynamic`, `diff`, `incremental`, `indexing`,
//! `struql-scale`, `batch`, `shard`, `event`, `htmlgen`, `mediate`, `trace`,
//! `crash`, `pager`, `cluster`, `all`.
//!
//! `--json` additionally writes `BENCH_<suite>.json` files (machine-
//! readable rows; schema in EXPERIMENTS.md) into the current directory.

use strudel_bench::experiments as e;
use strudel_bench::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write_json = args.iter().any(|a| a == "--json");
    let ids: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        match id {
            "all" => e::run_all(),
            "site-stats" => e::exp_site_stats(),
            "suitability" => e::exp_suitability(),
            "multiversion" => e::exp_multiversion(),
            "site-schema" => e::exp_site_schema(),
            "verify" => e::exp_verify(),
            "dynamic" => e::exp_dynamic(),
            "diff" => e::exp_diff(),
            "incremental" => e::exp_incremental(),
            "indexing" => e::exp_indexing(),
            "struql-scale" => e::exp_struql_scale(),
            "batch" => e::exp_batch(),
            "shard" => e::exp_shard(),
            "event" => e::exp_event(),
            "htmlgen" => e::exp_htmlgen(),
            "mediate" => e::exp_mediate(),
            "trace" => e::exp_trace(),
            "crash" => e::exp_crash(),
            "pager" => e::exp_pager(),
            "cluster" => e::exp_cluster(),
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!(
                    "known: site-stats suitability multiversion site-schema verify dynamic diff \
                     incremental indexing struql-scale batch shard event htmlgen mediate trace \
                     crash pager cluster all (plus --json)"
                );
                std::process::exit(2);
            }
        }
    }
    if write_json {
        match json::write_files(std::path::Path::new(".")) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write BENCH files: {e}");
                std::process::exit(1);
            }
        }
    }
}
