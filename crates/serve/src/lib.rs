//! # strudel-serve
//!
//! A concurrent click-time site server — the §7 future-work direction
//! ("compute pages dynamically at click time") built on the site-schema
//! engine of `strudel-schema`.
//!
//! The static pipeline materializes a whole site up front; this crate
//! serves the *same pages* on demand instead. One shared
//! [`DynamicSite`] engine answers every worker thread; the rendered
//! HTML sits in an epoch-fenced [`HtmlCache`] keyed by stable,
//! restart-surviving URLs ([`router`]); a data delta applied through
//! [`SiteService::apply_delta`] evicts exactly the dirtied pages —
//! everything else keeps serving from cache. Request counters and
//! latency histograms are exposed on `/metrics` ([`metrics`]).
//!
//! Routes:
//!
//! ```text
//! /                 index of root pages
//! /page/<Sym>/<a>…  one dynamic page (see router for segment syntax)
//! /data/<n:…|o:…>   raw data-graph object view
//! /metrics          Prometheus-style counters
//! /debug/trace      strudel-trace snapshot + slow-request log
//! /debug/explain    per-edge plan estimates vs actuals for the roots
//! /debug/explain/<Sym>/<a>…   …for one specific page
//! ```
//!
//! Every request draws a trace id and, while tracing is enabled
//! (`STRUDEL_TRACE=1` or [`strudel_trace::set_enabled`]), logs a
//! `serve.request` event; requests slower than the configurable
//! threshold land in a bounded slow-request log regardless of the
//! tracing flag.
//!
//! [`DynamicSite`]: strudel_schema::dynamic::DynamicSite

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
mod event;
pub mod metrics;
pub mod proto;
pub mod rcu;
pub mod render;
pub mod router;
pub mod server;
pub mod shard;

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use cache::{CachedPage, HtmlCache};
pub use cluster::{ClusterConfig, ClusterDeltaOutcome, ClusterService};
pub use metrics::{CacheSnapshot, RouteSnapshot, ServerMetrics, ServerStats};
pub use render::RenderedPage;
pub use server::{serve, ClickService, ServerConfig, ServerHandle, Transport};
pub use shard::{ShardedInvalidation, ShardedService};

use strudel_graph::GraphDelta;
use strudel_repo::Database;
use strudel_schema::dynamic::{DynamicSite, InvalidationOutcome, Mode, PageKey};
use strudel_struql::{par, Parallelism, Program, StruqlError};
use strudel_template::{TemplateError, TemplateSet};

/// Anything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Query evaluation failed.
    Struql(StruqlError),
    /// Template rendering failed.
    Template(TemplateError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Struql(e) => write!(f, "query evaluation: {e}"),
            ServeError::Template(e) => write!(f, "template rendering: {e}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<strudel_repo::RepoError> for ServeError {
    fn from(e: strudel_repo::RepoError) -> Self {
        ServeError::Io(std::io::Error::other(e.to_string()))
    }
}

impl From<StruqlError> for ServeError {
    fn from(e: StruqlError) -> Self {
        ServeError::Struql(e)
    }
}

impl From<TemplateError> for ServeError {
    fn from(e: TemplateError) -> Self {
        ServeError::Template(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One HTTP response, transport-agnostic.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Served from a last-known-good cache while the owning worker is
    /// down; emitted on the wire as `X-Strudel-Degraded: stale`.
    pub degraded: bool,
}

impl Response {
    fn html(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body,
            degraded: false,
        }
    }

    fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
            degraded: false,
        }
    }

    fn not_found(path: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/html; charset=utf-8",
            body: format!(
                "<html><body><h1>404</h1><p>no page at {}</p></body></html>\n",
                strudel_template::escape_html(path)
            ),
            degraded: false,
        }
    }

    fn error(e: &ServeError) -> Self {
        Response {
            status: 500,
            content_type: "text/html; charset=utf-8",
            body: format!(
                "<html><body><h1>500</h1><pre>{}</pre></body></html>\n",
                strudel_template::escape_html(&e.to_string())
            ),
            degraded: false,
        }
    }
}

/// What [`SiteService::warm`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmupReport {
    /// Pages rendered into the HTML cache.
    pub pages: usize,
    /// BFS levels walked from the roots.
    pub levels: usize,
    /// Wall-clock time spent warming, in microseconds.
    pub elapsed_us: u64,
}

/// The result of applying a delta to a live service.
#[derive(Clone, Debug)]
pub struct ServiceInvalidation {
    /// The engine-level outcome (dirty set, evicted page views).
    pub engine: InvalidationOutcome,
    /// Rendered-HTML cache entries evicted (direct + dependents).
    pub html_evicted: usize,
}

/// One request that took longer than the slow threshold.
#[derive(Clone, Debug)]
pub struct SlowRequest {
    /// The request's trace id (issued even while tracing is disabled).
    pub trace_id: u64,
    /// The requested path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Wall-clock time spent serving, microseconds.
    pub us: u64,
}

/// A fault injected at a request path, for robustness tests: the armed
/// path panics or stalls inside dispatch, exercising the server's panic
/// isolation and backlog shedding without touching production routes.
#[derive(Clone, Copy, Debug)]
pub enum FaultProbe {
    /// The request panics mid-dispatch.
    Panic,
    /// The request sleeps this long before dispatching.
    Stall(Duration),
}

/// How many slow requests the log retains (oldest dropped first).
pub const SLOW_LOG_CAPACITY: usize = 64;

/// Default slow-request threshold: half a second.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 500_000;

/// A servable site: the shared click-time engine, the site's templates,
/// the rendered-page cache, and the metric registry. All methods take
/// `&self`; wrap it in an [`Arc`] and hand it to any number of workers.
pub struct SiteService {
    engine: DynamicSite,
    templates: TemplateSet,
    root_collection: String,
    cache: HtmlCache,
    metrics: ServerMetrics,
    /// Requests at or above this many microseconds are logged; 0 disables.
    slow_threshold_us: AtomicU64,
    slow_total: AtomicU64,
    slow_log: Mutex<VecDeque<SlowRequest>>,
    panics: AtomicU64,
    shed: AtomicU64,
    timeout_config_errors: AtomicU64,
    timeout_error_logged: AtomicBool,
    accept_errors: AtomicU64,
    open_connections: AtomicU64,
    keepalive_reuse: AtomicU64,
    idle_closed: AtomicU64,
    /// Fast-path flag so unprobed services never lock the probe table.
    probes_armed: AtomicBool,
    probes: Mutex<HashMap<String, FaultProbe>>,
    /// Test hook: the next `apply_delta` panics after the store commit,
    /// modeling an engine-side failure that leaves this replica behind
    /// its committed store.
    fail_next_delta: AtomicBool,
    /// Serializes delta application: one writer at a time, so cache
    /// invalidation and snapshot republication can never interleave
    /// between two concurrent deltas.
    delta_writer: Mutex<()>,
    /// Optional durable paged store kept write-through consistent with
    /// the engine: deltas commit here (WAL + copy-on-write pages) before
    /// the engine swaps its snapshot.
    store: Option<strudel_repo::PagedRepo>,
}

impl SiteService {
    /// Builds a service from loose parts (database snapshot, parsed
    /// site-definition query, templates, root collection).
    pub fn from_parts(
        db: Arc<Database>,
        program: &Program,
        templates: TemplateSet,
        root_collection: &str,
        mode: Mode,
    ) -> Self {
        SiteService {
            engine: DynamicSite::new(db, program, mode),
            templates,
            root_collection: root_collection.to_owned(),
            cache: HtmlCache::new(),
            metrics: ServerMetrics::new(),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            slow_total: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::new()),
            panics: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeout_config_errors: AtomicU64::new(0),
            timeout_error_logged: AtomicBool::new(false),
            accept_errors: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            keepalive_reuse: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            probes_armed: AtomicBool::new(false),
            probes: Mutex::new(HashMap::new()),
            fail_next_delta: AtomicBool::new(false),
            delta_writer: Mutex::new(()),
            store: None,
        }
    }

    /// Attaches a paged store ([`strudel_repo::PagedRepo`]) that
    /// [`SiteService::apply_delta`] keeps write-through consistent: every
    /// delta commits durably to the store's WAL and copy-on-write pages
    /// before the engine's snapshot swaps. Concurrent readers of the
    /// store's MVCC snapshots observe a consistent graph throughout.
    pub fn with_paged_store(mut self, store: strudel_repo::PagedRepo) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached paged store, if any.
    pub fn paged_store(&self) -> Option<&strudel_repo::PagedRepo> {
        self.store.as_ref()
    }

    /// Builds a service from a built [`strudel::Site`].
    pub fn new(site: &strudel::Site, mode: Mode) -> Self {
        Self::from_parts(
            site.database.clone(),
            &site.program,
            site.templates.clone(),
            &site.root_collection,
            mode,
        )
    }

    /// Sets the worker budget the engine may use per guard evaluation
    /// (served content is identical at any setting).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.engine = self.engine.with_parallelism(parallelism);
        self
    }

    /// Sets the slow-request threshold in microseconds (builder form).
    /// `0` disables the log.
    pub fn with_slow_threshold_us(self, us: u64) -> Self {
        self.set_slow_threshold_us(us);
        self
    }

    /// Sets the slow-request threshold in microseconds; `0` disables the
    /// log. Takes effect for subsequent requests.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-request threshold, microseconds (`0` = disabled).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// The retained slow requests, oldest first (bounded by
    /// [`SLOW_LOG_CAPACITY`]).
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.slow_log.lock().unwrap().iter().cloned().collect()
    }

    /// Total requests that exceeded the slow threshold (not bounded by
    /// the log capacity).
    pub fn slow_requests_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// The shared click-time engine.
    pub fn engine(&self) -> &DynamicSite {
        &self.engine
    }

    /// The rendered-HTML cache.
    pub fn cache(&self) -> &HtmlCache {
        &self.cache
    }

    /// The site's templates.
    pub fn templates(&self) -> &TemplateSet {
        &self.templates
    }

    /// The collection naming the site's root pages.
    pub fn root_collection(&self) -> &str {
        &self.root_collection
    }

    /// The stable URL of a page (for crawlers and tests).
    pub fn url_of(&self, key: &PageKey) -> String {
        router::page_path(key, self.engine.database().graph())
    }

    /// Serves one request path, recording route metrics. Never panics on
    /// hostile paths: malformed URLs are 404s, render failures 500s, and
    /// a panic escaping a handler is caught here — the request answers
    /// 500, `strudel_panics_total` ticks, and the worker keeps serving.
    ///
    /// Every request draws a trace id; while tracing is enabled a
    /// `serve.request` span and event are recorded, and a request at or
    /// above the slow threshold lands in the slow-request log either way.
    pub fn handle(&self, path: &str) -> Response {
        let start = Instant::now();
        let trace_id = strudel_trace::next_trace_id();
        let span = strudel_trace::span("serve.request");
        // Strip any query string; routing is path-only.
        let routed = path.split('?').next().unwrap_or(path);
        let (route, response) = catch_unwind(AssertUnwindSafe(|| self.dispatch(routed)))
            .unwrap_or_else(|_| {
                self.note_panic();
                (
                    "panic".into(),
                    Response {
                        status: 500,
                        content_type: "text/html; charset=utf-8",
                        body: "<html><body><h1>500</h1><p>internal error</p></body></html>\n"
                            .into(),
                        degraded: false,
                    },
                )
            });
        drop(span);
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.record(&route, us);
        strudel_trace::event_with("serve.request", || {
            format!("id={trace_id} route={route} status={} us={us}", response.status)
        });
        let threshold = self.slow_threshold_us.load(Ordering::Relaxed);
        if threshold > 0 && us >= threshold {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            let mut log = self.slow_log.lock().unwrap();
            if log.len() == SLOW_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(SlowRequest {
                trace_id,
                path: routed.to_owned(),
                status: response.status,
                us,
            });
        }
        response
    }

    /// Arms a [`FaultProbe`] on an exact request path. Test hook: the
    /// next requests for `path` panic or stall inside dispatch.
    pub fn arm_probe(&self, path: &str, probe: FaultProbe) {
        self.probes.lock().unwrap().insert(path.to_owned(), probe);
        self.probes_armed.store(true, Ordering::Release);
    }

    /// Removes every armed [`FaultProbe`].
    pub fn clear_probes(&self) {
        self.probes.lock().unwrap().clear();
        self.probes_armed.store(false, Ordering::Release);
    }

    /// Requests that panicked mid-dispatch and were answered with a 500.
    pub fn panics_total(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Connections shed with a 503 because the backlog was full.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections whose socket-timeout setup failed (served anyway).
    pub fn timeout_config_errors_total(&self) -> u64 {
        self.timeout_config_errors.load(Ordering::Relaxed)
    }

    /// Failed `accept` calls (the transport backed off after each).
    pub fn accept_errors_total(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Connections currently open at the transport (a gauge: opened
    /// minus closed).
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Requests served on an already-used keep-alive connection.
    pub fn keepalive_reuse_total(&self) -> u64 {
        self.keepalive_reuse.load(Ordering::Relaxed)
    }

    /// Keep-alive connections closed by the idle deadline.
    pub fn idle_closed_total(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// Records one caught panic (also called by the transport's worker
    /// backstop for panics outside [`SiteService::handle`]).
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("serve.panics", 1);
    }

    /// Records one connection shed by the transport's full backlog.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("serve.shed", 1);
    }

    /// Records a failed socket-timeout setup. The first failure logs a
    /// trace event; after that only the counter moves, so a flapping
    /// socket option can't flood the trace buffer.
    pub fn note_timeout_config_error(&self, err: &std::io::Error) {
        self.timeout_config_errors.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("serve.timeout_config_errors", 1);
        if !self.timeout_error_logged.swap(true, Ordering::Relaxed) {
            let msg = err.to_string();
            strudel_trace::event_with("serve.timeout_config_error", || {
                format!("socket timeout setup failed (logged once): {msg}")
            });
        }
    }

    /// Records one failed `accept`.
    pub fn note_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("serve.accept_errors", 1);
    }

    /// Records a connection opened at the transport.
    pub fn note_conn_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closed at the transport.
    pub fn note_conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a request served on an already-used keep-alive
    /// connection.
    pub fn note_keepalive_reuse(&self) {
        self.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a keep-alive connection closed by the idle deadline.
    pub fn note_idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("serve.idle_closed", 1);
    }

    /// If a probe is armed on `path`, fire it. The lock is released
    /// before a `Panic` probe fires so the probe table never poisons.
    fn check_probe(&self, path: &str) {
        if !self.probes_armed.load(Ordering::Acquire) {
            return;
        }
        let probe = self.probes.lock().unwrap().get(path).copied();
        match probe {
            Some(FaultProbe::Panic) => panic!("injected fault probe at {path}"),
            Some(FaultProbe::Stall(d)) => std::thread::sleep(d),
            None => {}
        }
    }

    fn dispatch(&self, path: &str) -> (String, Response) {
        self.check_probe(path);
        if path == "/" {
            let r = match render::render_roots_index(&self.engine, &self.root_collection) {
                Ok(html) => Response::html(html),
                Err(e) => Response::error(&e),
            };
            return ("front".into(), r);
        }
        if path == "/metrics" {
            return ("metrics".into(), Response::text(self.stats().to_text()));
        }
        if path == "/healthz" {
            // Liveness: the process answers requests at all. Readiness
            // below is the one that degrades.
            return ("healthz".into(), Response::text("ok\n".into()));
        }
        if path == "/readyz" {
            return ("readyz".into(), self.readyz_response());
        }
        if path == "/debug/trace" {
            return ("debug/trace".into(), Response::text(self.debug_trace_text()));
        }
        if path == "/debug/explain" || path.starts_with("/debug/explain/") {
            let r = match self.debug_explain_text(path) {
                Ok(Some(text)) => Response::text(text),
                Ok(None) => Response::not_found(path),
                Err(e) => Response::error(&e),
            };
            return ("debug/explain".into(), r);
        }
        if path.starts_with("/page/") {
            let db = self.engine.database();
            let key = router::parse_page_path(path, db.graph());
            drop(db);
            let Some(key) = key else {
                return ("not_found".into(), Response::not_found(path));
            };
            if self.engine.schema().node_index(&key.symbol).is_none() {
                return ("not_found".into(), Response::not_found(path));
            }
            let route = format!("page/{}", key.symbol);
            return (route, self.serve_page(&key));
        }
        if path.starts_with("/data/") {
            let db = self.engine.database();
            let Some(oid) = router::parse_data_path(path, db.graph()) else {
                return ("not_found".into(), Response::not_found(path));
            };
            let r = match render::render_data_node(db.graph(), oid) {
                Ok(html) => Response::html(html),
                Err(e) => Response::error(&e),
            };
            return ("data".into(), r);
        }
        ("not_found".into(), Response::not_found(path))
    }

    fn serve_page(&self, key: &PageKey) -> Response {
        if let Some(cached) = self.cache.get(key) {
            return Response::html(cached.html.to_string());
        }
        match self.render_into_cache(key) {
            Ok(cached) => {
                self.maybe_promote();
                Response::html(cached.html.to_string())
            }
            Err(e) => Response::error(&e),
        }
    }

    /// Renders `key` and inserts the rendition into the HTML cache,
    /// epoch-fenced: the epoch is read *before* rendering, so if a delta
    /// lands mid-render the insert is dropped and the next request
    /// re-renders fresh. Returns the rendition either way.
    pub fn render_into_cache(&self, key: &PageKey) -> Result<CachedPage, ServeError> {
        let (epoch, _db) = self.engine.snapshot();
        let page = render::render_page(&self.engine, &self.templates, key)?;
        let cached = CachedPage {
            html: page.html.into(),
            deps: page.deps.into(),
        };
        self.cache.insert_if(key.clone(), cached.clone(), || {
            self.engine.epoch() == epoch
        });
        Ok(cached)
    }

    /// Promotes the HTML cache's lock-free published snapshot once
    /// enough fresh renditions accumulated, fenced against a delta
    /// landing between the epoch read and the publication.
    fn maybe_promote(&self) {
        if self.cache.needs_promotion() {
            let (epoch, _db) = self.engine.snapshot();
            self.cache.promote_if(|| self.engine.epoch() == epoch);
        }
    }

    /// Pre-renders every page reachable from the root collection into the
    /// HTML cache, level by level from the roots, rendering each level's
    /// pages across `parallelism` workers. After warmup, first hits serve
    /// straight from cache instead of paying click-time evaluation.
    ///
    /// Safe to run on a live service: inserts are epoch-fenced, so a
    /// delta applied mid-warmup simply drops the stale renditions.
    pub fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        let start = Instant::now();
        let epoch = self.engine.epoch();
        let mut frontier: Vec<PageKey> = self.engine.roots(&self.root_collection)?;
        let mut seen: HashSet<PageKey> = frontier.iter().cloned().collect();
        let mut pages = 0usize;
        let mut levels = 0usize;
        while !frontier.is_empty() {
            // Pages within one BFS level are independent renders; the
            // engine and caches are `&self`-shared, so fan the level out.
            let rendered = par::map_chunks(frontier, parallelism.workers(), |chunk| {
                chunk
                    .into_iter()
                    .map(|key| {
                        render::render_page(&self.engine, &self.templates, &key)
                            .map(|page| (key, page))
                    })
                    .collect()
            })?;
            levels += 1;
            let mut next = Vec::new();
            for (key, page) in rendered {
                for dep in page.deps.iter() {
                    if seen.insert(dep.clone()) {
                        next.push(dep.clone());
                    }
                }
                pages += 1;
                self.cache.insert_if(
                    key,
                    CachedPage {
                        html: page.html.into(),
                        deps: page.deps.into(),
                    },
                    || self.engine.epoch() == epoch,
                );
            }
            frontier = next;
        }
        // Publish everything just warmed as the lock-free snapshot, so
        // the very first click after warmup already skips the locks.
        self.cache.promote_if(|| self.engine.epoch() == epoch);
        Ok(WarmupReport {
            pages,
            levels,
            elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }

    /// Applies a data-graph delta: swaps the engine's database snapshot
    /// and evicts exactly the dirtied pages from both caches (the HTML
    /// cache also follows rendition dependencies). Concurrent requests
    /// keep serving throughout.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<ServiceInvalidation, ServeError> {
        // Single writer: concurrent deltas serialize here, so the
        // invalidate-and-republish below can never interleave with
        // another delta's and resurrect an evicted rendition. A poisoned
        // lock is taken anyway — the guard carries no state, and a
        // panicked predecessor must not wedge every later delta.
        let _writer = self
            .delta_writer
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Durability first: the paged store validates and commits the
        // delta (WAL append, copy-on-write pages) before the in-memory
        // engine swaps snapshots, so a crash never loses an applied
        // delta. MVCC snapshots taken from the store before this commit
        // keep reading their epoch.
        if let Some(store) = &self.store {
            store.apply_delta(delta)?;
        }
        if self.fail_next_delta.swap(false, Ordering::AcqRel) {
            panic!("injected delta fault after store commit");
        }
        let engine = self.engine.apply_delta(delta)?;
        let html_evicted = self.cache.invalidate(&engine.dirty);
        Ok(ServiceInvalidation {
            engine,
            html_evicted,
        })
    }

    /// Arms the injected delta fault: the next [`SiteService::apply_delta`]
    /// panics after the store commit (test hook for the recovery paths).
    pub fn arm_delta_fault(&self) {
        self.fail_next_delta.store(true, Ordering::Release);
    }

    /// Whether an earlier write failure poisoned the attached store.
    /// Reads keep serving committed state; readiness reports 503 so a
    /// supervisor can recycle this process.
    pub fn store_poisoned(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.is_poisoned())
    }

    /// The `/readyz` response: `200` while this replica can both serve
    /// and accept writes, `503` once its store is poisoned (still
    /// serving reads — the supervisor decides when to recycle).
    fn readyz_response(&self) -> Response {
        if self.store_poisoned() {
            let mut r = Response::text("store poisoned\n".into());
            r.status = 503;
            r
        } else {
            Response::text("ready\n".into())
        }
    }

    /// Rebuilds this replica's engine from `source`'s live database and
    /// drops every cached rendition — the recovery path after this
    /// replica failed mid-delta while its siblings (and the store)
    /// committed. `source` must hold the target epoch's snapshot.
    pub fn resync_from(&self, source: &SiteService) {
        self.engine.reset_to(source.engine.database());
        self.cache.clear();
    }

    /// The `/debug/trace` body: the global trace snapshot (spans,
    /// counters, recent events) followed by the slow-request log.
    pub fn debug_trace_text(&self) -> String {
        use std::fmt::Write;
        let mut out = strudel_trace::snapshot().render_text();
        let slow = self.slow_requests();
        let _ = write!(
            out,
            "\n# slow requests (threshold={}us, total={}, showing {})\n",
            self.slow_threshold_us(),
            self.slow_total.load(Ordering::Relaxed),
            slow.len()
        );
        for s in &slow {
            let _ = writeln!(out, "[{}] {} {}us {}", s.trace_id, s.status, s.us, s.path);
        }
        out
    }

    /// The `/debug/explain` body. With no page suffix, explains every
    /// root page; with `/debug/explain/<Sym>/<args…>` (page-path segment
    /// syntax), explains that one page. `Ok(None)` means the suffix did
    /// not parse or names an unknown symbol (a 404).
    fn debug_explain_text(&self, path: &str) -> Result<Option<String>, ServeError> {
        let suffix = path.strip_prefix("/debug/explain").unwrap_or(path);
        let db = self.engine.database();
        let keys: Vec<PageKey> = if suffix.is_empty() || suffix == "/" {
            self.engine.roots(&self.root_collection)?
        } else {
            let Some(key) = router::parse_page_path(&format!("/page{suffix}"), db.graph())
            else {
                return Ok(None);
            };
            if self.engine.schema().node_index(&key.symbol).is_none() {
                return Ok(None);
            }
            vec![key]
        };
        drop(db);
        let mut out = String::new();
        for key in &keys {
            out.push_str(&self.explain_page_text(key)?);
            out.push('\n');
        }
        Ok(Some(out))
    }

    /// Renders one page's explain report: per out-edge, the chosen plan's
    /// estimates against measured rows and timings.
    pub fn explain_page_text(&self, key: &PageKey) -> Result<String, ServeError> {
        use std::fmt::Write;
        let edges = self.engine.explain(key)?;
        let mut out = format!("# explain {} ({} edges)\n", self.url_of(key), edges.len());
        for e in &edges {
            let _ = writeln!(out, "edge -{}-> {}", e.label, e.target);
            out.push_str(&e.report.render_text());
        }
        Ok(out)
    }

    /// Everything `/metrics` reports, as a struct.
    pub fn stats(&self) -> ServerStats {
        let trace_counters = if strudel_trace::enabled() {
            strudel_trace::snapshot().counters
        } else {
            Vec::new()
        };
        ServerStats {
            total: self.metrics.totals(),
            latency_buckets: self.metrics.total_latency_buckets(),
            latency_sum_us: self.metrics.total_latency_sum_us(),
            routes: self.metrics.snapshot(),
            html_cache: self.cache.stats(),
            engine: self.engine.metrics(),
            epoch: self.engine.epoch(),
            slow_requests: self.slow_total.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeout_config_errors: self.timeout_config_errors.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            keepalive_reuse: self.keepalive_reuse.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            store_poisoned: self.store_poisoned(),
            trace_counters,
            pager: strudel_repo::pager::global_stats(),
        }
    }
}
