//! # strudel-serve
//!
//! A concurrent click-time site server — the §7 future-work direction
//! ("compute pages dynamically at click time") built on the site-schema
//! engine of `strudel-schema`.
//!
//! The static pipeline materializes a whole site up front; this crate
//! serves the *same pages* on demand instead. One shared
//! [`DynamicSite`] engine answers every worker thread; the rendered
//! HTML sits in an epoch-fenced [`HtmlCache`] keyed by stable,
//! restart-surviving URLs ([`router`]); a data delta applied through
//! [`SiteService::apply_delta`] evicts exactly the dirtied pages —
//! everything else keeps serving from cache. Request counters and
//! latency histograms are exposed on `/metrics` ([`metrics`]).
//!
//! Routes:
//!
//! ```text
//! /                 index of root pages
//! /page/<Sym>/<a>…  one dynamic page (see router for segment syntax)
//! /data/<n:…|o:…>   raw data-graph object view
//! /metrics          Prometheus-style counters
//! ```
//!
//! [`DynamicSite`]: strudel_schema::dynamic::DynamicSite

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod render;
pub mod router;
pub mod server;

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub use cache::{CachedPage, HtmlCache};
pub use metrics::{CacheSnapshot, RouteSnapshot, ServerMetrics, ServerStats};
pub use render::RenderedPage;
pub use server::{serve, ServerConfig, ServerHandle};

use strudel_graph::GraphDelta;
use strudel_repo::Database;
use strudel_schema::dynamic::{DynamicSite, InvalidationOutcome, Mode, PageKey};
use strudel_struql::{par, Parallelism, Program, StruqlError};
use strudel_template::{TemplateError, TemplateSet};

/// Anything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Query evaluation failed.
    Struql(StruqlError),
    /// Template rendering failed.
    Template(TemplateError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Struql(e) => write!(f, "query evaluation: {e}"),
            ServeError::Template(e) => write!(f, "template rendering: {e}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StruqlError> for ServeError {
    fn from(e: StruqlError) -> Self {
        ServeError::Struql(e)
    }
}

impl From<TemplateError> for ServeError {
    fn from(e: TemplateError) -> Self {
        ServeError::Template(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One HTTP response, transport-agnostic.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    fn html(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body,
        }
    }

    fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    fn not_found(path: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/html; charset=utf-8",
            body: format!(
                "<html><body><h1>404</h1><p>no page at {}</p></body></html>\n",
                strudel_template::escape_html(path)
            ),
        }
    }

    fn error(e: &ServeError) -> Self {
        Response {
            status: 500,
            content_type: "text/html; charset=utf-8",
            body: format!(
                "<html><body><h1>500</h1><pre>{}</pre></body></html>\n",
                strudel_template::escape_html(&e.to_string())
            ),
        }
    }
}

/// What [`SiteService::warm`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmupReport {
    /// Pages rendered into the HTML cache.
    pub pages: usize,
    /// BFS levels walked from the roots.
    pub levels: usize,
    /// Wall-clock time spent warming, in microseconds.
    pub elapsed_us: u64,
}

/// The result of applying a delta to a live service.
#[derive(Clone, Debug)]
pub struct ServiceInvalidation {
    /// The engine-level outcome (dirty set, evicted page views).
    pub engine: InvalidationOutcome,
    /// Rendered-HTML cache entries evicted (direct + dependents).
    pub html_evicted: usize,
}

/// A servable site: the shared click-time engine, the site's templates,
/// the rendered-page cache, and the metric registry. All methods take
/// `&self`; wrap it in an [`Arc`] and hand it to any number of workers.
pub struct SiteService {
    engine: DynamicSite,
    templates: TemplateSet,
    root_collection: String,
    cache: HtmlCache,
    metrics: ServerMetrics,
}

impl SiteService {
    /// Builds a service from loose parts (database snapshot, parsed
    /// site-definition query, templates, root collection).
    pub fn from_parts(
        db: Arc<Database>,
        program: &Program,
        templates: TemplateSet,
        root_collection: &str,
        mode: Mode,
    ) -> Self {
        SiteService {
            engine: DynamicSite::new(db, program, mode),
            templates,
            root_collection: root_collection.to_owned(),
            cache: HtmlCache::new(),
            metrics: ServerMetrics::new(),
        }
    }

    /// Builds a service from a built [`strudel::Site`].
    pub fn new(site: &strudel::Site, mode: Mode) -> Self {
        Self::from_parts(
            site.database.clone(),
            &site.program,
            site.templates.clone(),
            &site.root_collection,
            mode,
        )
    }

    /// Sets the worker budget the engine may use per guard evaluation
    /// (served content is identical at any setting).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.engine = self.engine.with_parallelism(parallelism);
        self
    }

    /// The shared click-time engine.
    pub fn engine(&self) -> &DynamicSite {
        &self.engine
    }

    /// The rendered-HTML cache.
    pub fn cache(&self) -> &HtmlCache {
        &self.cache
    }

    /// The collection naming the site's root pages.
    pub fn root_collection(&self) -> &str {
        &self.root_collection
    }

    /// The stable URL of a page (for crawlers and tests).
    pub fn url_of(&self, key: &PageKey) -> String {
        router::page_path(key, self.engine.database().graph())
    }

    /// Serves one request path, recording route metrics. Never panics on
    /// hostile paths: malformed URLs are 404s, render failures 500s.
    pub fn handle(&self, path: &str) -> Response {
        let start = Instant::now();
        // Strip any query string; routing is path-only.
        let path = path.split('?').next().unwrap_or(path);
        let (route, response) = self.dispatch(path);
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.record(&route, us);
        response
    }

    fn dispatch(&self, path: &str) -> (String, Response) {
        if path == "/" {
            let r = match render::render_roots_index(&self.engine, &self.root_collection) {
                Ok(html) => Response::html(html),
                Err(e) => Response::error(&e),
            };
            return ("front".into(), r);
        }
        if path == "/metrics" {
            return ("metrics".into(), Response::text(self.stats().to_text()));
        }
        if path.starts_with("/page/") {
            let db = self.engine.database();
            let key = router::parse_page_path(path, db.graph());
            drop(db);
            let Some(key) = key else {
                return ("not_found".into(), Response::not_found(path));
            };
            if self.engine.schema().node_index(&key.symbol).is_none() {
                return ("not_found".into(), Response::not_found(path));
            }
            let route = format!("page/{}", key.symbol);
            return (route, self.serve_page(&key));
        }
        if path.starts_with("/data/") {
            let db = self.engine.database();
            let Some(oid) = router::parse_data_path(path, db.graph()) else {
                return ("not_found".into(), Response::not_found(path));
            };
            let r = match render::render_data_node(db.graph(), oid) {
                Ok(html) => Response::html(html),
                Err(e) => Response::error(&e),
            };
            return ("data".into(), r);
        }
        ("not_found".into(), Response::not_found(path))
    }

    fn serve_page(&self, key: &PageKey) -> Response {
        if let Some(cached) = self.cache.get(key) {
            return Response::html(cached.html.to_string());
        }
        // Epoch read *before* rendering: if a delta lands mid-render the
        // insert is dropped and the next request re-renders fresh.
        let epoch = self.engine.epoch();
        match render::render_page(&self.engine, &self.templates, key) {
            Ok(page) => {
                let body = page.html.clone();
                self.cache.insert_if(
                    key.clone(),
                    CachedPage {
                        html: page.html.into(),
                        deps: page.deps.into(),
                    },
                    || self.engine.epoch() == epoch,
                );
                Response::html(body)
            }
            Err(e) => Response::error(&e),
        }
    }

    /// Pre-renders every page reachable from the root collection into the
    /// HTML cache, level by level from the roots, rendering each level's
    /// pages across `parallelism` workers. After warmup, first hits serve
    /// straight from cache instead of paying click-time evaluation.
    ///
    /// Safe to run on a live service: inserts are epoch-fenced, so a
    /// delta applied mid-warmup simply drops the stale renditions.
    pub fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        let start = Instant::now();
        let epoch = self.engine.epoch();
        let mut frontier: Vec<PageKey> = self.engine.roots(&self.root_collection)?;
        let mut seen: HashSet<PageKey> = frontier.iter().cloned().collect();
        let mut pages = 0usize;
        let mut levels = 0usize;
        while !frontier.is_empty() {
            // Pages within one BFS level are independent renders; the
            // engine and caches are `&self`-shared, so fan the level out.
            let rendered = par::map_chunks(frontier, parallelism.workers(), |chunk| {
                chunk
                    .into_iter()
                    .map(|key| {
                        render::render_page(&self.engine, &self.templates, &key)
                            .map(|page| (key, page))
                    })
                    .collect()
            })?;
            levels += 1;
            let mut next = Vec::new();
            for (key, page) in rendered {
                for dep in page.deps.iter() {
                    if seen.insert(dep.clone()) {
                        next.push(dep.clone());
                    }
                }
                pages += 1;
                self.cache.insert_if(
                    key,
                    CachedPage {
                        html: page.html.into(),
                        deps: page.deps.into(),
                    },
                    || self.engine.epoch() == epoch,
                );
            }
            frontier = next;
        }
        Ok(WarmupReport {
            pages,
            levels,
            elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }

    /// Applies a data-graph delta: swaps the engine's database snapshot
    /// and evicts exactly the dirtied pages from both caches (the HTML
    /// cache also follows rendition dependencies). Concurrent requests
    /// keep serving throughout.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<ServiceInvalidation, ServeError> {
        let engine = self.engine.apply_delta(delta)?;
        let html_evicted = self.cache.invalidate(&engine.dirty);
        Ok(ServiceInvalidation {
            engine,
            html_evicted,
        })
    }

    /// Everything `/metrics` reports, as a struct.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            total: self.metrics.totals(),
            latency_buckets: self.metrics.total_latency_buckets(),
            latency_sum_us: self.metrics.total_latency_sum_us(),
            routes: self.metrics.snapshot(),
            html_cache: self.cache.stats(),
            engine: self.engine.metrics(),
            epoch: self.engine.epoch(),
        }
    }
}
