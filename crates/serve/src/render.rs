//! Click-time HTML rendering: a [`PageView`] becomes a real templated
//! page, not an attribute dump.
//!
//! The static pipeline renders templates against the materialized site
//! graph. At click time there is no site graph — only the visited page's
//! computed out-edges. The bridge is a *transient graph*: one node for
//! the page (named by its Skolem symbol and entered into its `collect`ed
//! collections, so the site's template-selection rules apply unchanged),
//! atomic edges copied verbatim, and one stub node per linked page
//! carrying that child's atomic attributes — enough for link text and
//! `KEY=` sorting, the two things templates read through links. Stub
//! URLs come from the stable router, via the generator's namer hook.
//!
//! Children are fetched through the engine itself, so their views come
//! from (and warm) the shared page-view cache; the set of children read
//! is returned as the rendition's dependency set for delta invalidation.

use crate::router::{data_path, page_path};
use crate::ServeError;
use std::collections::HashMap;
use strudel_graph::{Graph, Oid, Value};
use strudel_schema::dynamic::{DynTarget, DynamicSite, PageKey};
use strudel_struql::Term;
use strudel_template::{escape_html, HtmlGenerator, TemplateSet};

/// A finished click-time rendition.
#[derive(Clone, Debug)]
pub struct RenderedPage {
    /// The page's HTML.
    pub html: String,
    /// The other pages whose content the render read.
    pub deps: Vec<PageKey>,
}

/// The collections a Skolem symbol's pages are collected into.
fn collections_of(engine: &DynamicSite, symbol: &str) -> Vec<String> {
    engine
        .schema()
        .collects
        .iter()
        .filter_map(|(c, _)| match &c.arg {
            Term::Skolem { symbol: s, .. } if s == symbol => Some(c.collection.clone()),
            _ => None,
        })
        .collect()
}

/// A display name for a child-page stub: the Skolem term over its values.
fn stub_name(key: &PageKey) -> String {
    let args: Vec<String> = key.args.iter().map(|v| v.display_text().into_owned()).collect();
    format!("{}({})", key.symbol, args.join(", "))
}

const LINK_TEXT_ATTRS: [&str; 3] = ["title", "name", "label"];

/// Renders one dynamic page with the site's templates.
pub fn render_page(
    engine: &DynamicSite,
    templates: &TemplateSet,
    key: &PageKey,
) -> Result<RenderedPage, ServeError> {
    let view = engine.visit(key)?;
    let db = engine.database();
    let data = db.graph();

    let mut tg = Graph::new();
    let mut urls: HashMap<Oid, String> = HashMap::new();
    let mut child_nodes: HashMap<PageKey, Oid> = HashMap::new();
    let mut data_nodes: HashMap<Oid, Oid> = HashMap::new();
    let mut deps: Vec<PageKey> = Vec::new();

    let page_oid = tg.add_named_node(&key.symbol);
    urls.insert(page_oid, page_path(key, data));
    child_nodes.insert(key.clone(), page_oid);
    for coll in collections_of(engine, &key.symbol) {
        tg.collect_str(&coll, page_oid);
    }

    for (label, target) in &view.edges {
        match target {
            DynTarget::Data(v) if v.is_atomic() => {
                tg.add_edge_str(page_oid, label, v.clone());
            }
            DynTarget::Data(Value::Node(src)) => {
                // A raw data-graph object: stub it with its atomic
                // attributes and route it to the /data view.
                let dn = *data_nodes.entry(*src).or_insert_with(|| {
                    let dn = tg.add_node();
                    let mut has_text = false;
                    for e in data.edges(*src) {
                        if e.to.is_atomic() {
                            let l = data.label_name(e.label);
                            has_text |= LINK_TEXT_ATTRS.contains(&l);
                            tg.add_edge_str(dn, l, e.to.clone());
                        }
                    }
                    if !has_text {
                        if let Some(n) = data.node_name(*src) {
                            tg.add_edge_str(dn, "name", Value::string(n));
                        }
                    }
                    urls.insert(dn, data_path(*src, data));
                    dn
                });
                tg.add_edge_str(page_oid, label, Value::Node(dn));
            }
            DynTarget::Data(_) => unreachable!("atomic covered above"),
            DynTarget::Page(child) => {
                let cn = match child_nodes.get(child) {
                    Some(&cn) => cn,
                    None => {
                        let cn = tg.add_named_node(&stub_name(child));
                        // The child's atomic attributes feed link text and
                        // KEY= sorting on this page; its view is cached, so
                        // this is one lookup after the first render.
                        let child_view = engine.visit(child)?;
                        for (l, t) in &child_view.edges {
                            if let DynTarget::Data(v) = t {
                                if v.is_atomic() {
                                    tg.add_edge_str(cn, l, v.clone());
                                }
                            }
                        }
                        for coll in collections_of(engine, &child.symbol) {
                            tg.collect_str(&coll, cn);
                        }
                        urls.insert(cn, page_path(child, data));
                        child_nodes.insert(child.clone(), cn);
                        deps.push(child.clone());
                        cn
                    }
                };
                tg.add_edge_str(page_oid, label, Value::Node(cn));
            }
        }
    }

    let namer = |oid: Oid| urls.get(&oid).cloned();
    let page = HtmlGenerator::new(&tg, templates).render_one(page_oid, &namer)?;
    Ok(RenderedPage {
        html: page.html,
        deps,
    })
}

/// Renders the raw attribute view of one data-graph object (the `/data`
/// routes): the built-in listing, with node targets linked back into
/// `/data` space.
pub fn render_data_node(data: &Graph, oid: Oid) -> Result<String, ServeError> {
    let templates = TemplateSet::new();
    let namer = |o: Oid| Some(data_path(o, data));
    let page = HtmlGenerator::new(data, &templates).render_one(oid, &namer)?;
    Ok(page.html)
}

/// Renders the `/` index: one link per root page.
pub fn render_roots_index(engine: &DynamicSite, root_collection: &str) -> Result<String, ServeError> {
    let roots = engine.roots(root_collection)?;
    let db = engine.database();
    let data = db.graph();
    let mut html = String::from(
        "<html><head><title>strudel-serve</title></head><body><h1>Site roots</h1>\n<ul>\n",
    );
    for root in &roots {
        let href = page_path(root, data);
        html.push_str(&format!(
            "<li><a href=\"{}\">{}</a></li>\n",
            escape_html(&href),
            escape_html(&stub_name(root))
        ));
    }
    html.push_str("</ul>\n<p><a href=\"/metrics\">metrics</a></p></body></html>\n");
    Ok(html)
}
