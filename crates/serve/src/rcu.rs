//! Epoch-published snapshot pointers: RCU-style reads in safe Rust.
//!
//! A [`Published<T>`] holds one immutable snapshot behind an `Arc` and a
//! monotonically increasing *version*. Readers keep a thread-local copy
//! of `(version, Arc<T>)` per pointer; the steady-state read is one
//! atomic load plus a thread-local lookup — **no lock, no shared-cache
//! write** — so any number of readers scale without contending. Only a
//! reader that observes a newer version touches the authoritative slot
//! (a brief `RwLock` read) to refresh its copy, and only the writer
//! takes the slot's write lock.
//!
//! This is the classic read-copy-update shape with the grace period
//! handled by `Arc`: old snapshots stay alive exactly as long as some
//! reader still holds them, and are freed by the last drop. Within one
//! pointer the version and value always move together (both read under
//! the slot lock, both written under it), so a cached pair can never mix
//! a new version with an old value.
//!
//! A reader that races a publication may serve the immediately previous
//! snapshot for the duration of that read — indistinguishable from the
//! request having arrived a moment earlier, which is exactly the
//! consistency the serving layer wants: every read sees one snapshot,
//! never a mix of two.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Distinguishes `Published` instances in the thread-local cache.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A version-stamped, type-erased snapshot in the thread-local cache.
type CachedEntry = (u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    /// Per-thread cache: pointer id → (version, type-erased snapshot).
    /// One small entry per `Published` instance the thread has read.
    static CACHED: RefCell<HashMap<u64, CachedEntry>> = RefCell::new(HashMap::new());
}

/// Counter snapshot of one [`Published`] pointer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PublishedStats {
    /// Reads served from the thread-local copy (no lock taken).
    pub fast_reads: u64,
    /// Reads that refreshed from the authoritative slot (version moved,
    /// or first read on this thread).
    pub refreshes: u64,
    /// Publications so far.
    pub version: u64,
}

/// An epoch-published snapshot pointer (see module docs).
#[derive(Debug)]
pub struct Published<T: Send + Sync + 'static> {
    id: u64,
    version: AtomicU64,
    slot: RwLock<Arc<T>>,
    fast_reads: AtomicU64,
    refreshes: AtomicU64,
}

impl<T: Send + Sync + 'static> Published<T> {
    /// Publishes `initial` as version 0.
    pub fn new(initial: Arc<T>) -> Self {
        Published {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(0),
            slot: RwLock::new(initial),
            fast_reads: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// The current snapshot. Lock-free whenever this thread has already
    /// read the current version; otherwise refreshes under a brief read
    /// lock.
    pub fn read(&self) -> Arc<T> {
        let version = self.version.load(Ordering::Acquire);
        let cached = CACHED.with(|c| {
            c.borrow()
                .get(&self.id)
                .and_then(|(v, arc)| (*v == version).then(|| Arc::clone(arc)))
        });
        if let Some(arc) = cached {
            self.fast_reads.fetch_add(1, Ordering::Relaxed);
            return arc
                .downcast::<T>()
                .expect("thread-local entry holds this pointer's type");
        }
        // Refresh: version and value are read together under the slot
        // lock so the cached pair can never tear.
        let (version, value) = {
            let slot = self.slot.read().unwrap();
            (self.version.load(Ordering::Acquire), Arc::clone(&slot))
        };
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        let erased: Arc<dyn Any + Send + Sync> = value.clone();
        CACHED.with(|c| {
            c.borrow_mut().insert(self.id, (version, erased));
        });
        value
    }

    /// Atomically replaces the snapshot and bumps the version.
    pub fn publish(&self, value: Arc<T>) {
        self.publish_if(value, || true);
    }

    /// Publishes `value` unless `still_current` (checked under the slot
    /// write lock) reports that the snapshot was built against a world
    /// that has since moved on. Returns whether the publication happened.
    pub fn publish_if(&self, value: Arc<T>, still_current: impl FnOnce() -> bool) -> bool {
        let mut slot = self.slot.write().unwrap();
        if !still_current() {
            return false;
        }
        *slot = value;
        self.version.fetch_add(1, Ordering::Release);
        true
    }

    /// The number of publications so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PublishedStats {
        PublishedStats {
            fast_reads: self.fast_reads.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            version: self.version(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_the_published_value() {
        let p = Published::new(Arc::new(1u32));
        assert_eq!(*p.read(), 1);
        p.publish(Arc::new(2));
        assert_eq!(*p.read(), 2);
        assert_eq!(p.version(), 1);
    }

    #[test]
    fn steady_state_reads_are_fast_path() {
        let p = Published::new(Arc::new("hello".to_string()));
        p.read(); // first read on this thread refreshes
        for _ in 0..10 {
            p.read();
        }
        let s = p.stats();
        assert_eq!(s.refreshes, 1, "one refresh, then thread-local hits");
        assert_eq!(s.fast_reads, 10);
    }

    #[test]
    fn publication_invalidates_the_fast_path_once() {
        let p = Published::new(Arc::new(1u32));
        p.read();
        p.publish(Arc::new(2));
        assert_eq!(*p.read(), 2, "version moved: refresh");
        assert_eq!(*p.read(), 2, "then fast path again");
        let s = p.stats();
        assert_eq!(s.refreshes, 2);
        assert_eq!(s.fast_reads, 1);
    }

    #[test]
    fn publish_if_aborts_when_stale() {
        let p = Published::new(Arc::new(1u32));
        assert!(!p.publish_if(Arc::new(9), || false));
        assert_eq!(*p.read(), 1);
        assert_eq!(p.version(), 0);
        assert!(p.publish_if(Arc::new(2), || true));
        assert_eq!(*p.read(), 2);
    }

    #[test]
    fn instances_do_not_share_thread_local_entries() {
        let a = Published::new(Arc::new(1u32));
        let b = Published::new(Arc::new(100u32));
        assert_eq!(*a.read(), 1);
        assert_eq!(*b.read(), 100);
        a.publish(Arc::new(2));
        assert_eq!(*a.read(), 2);
        assert_eq!(*b.read(), 100, "b's cache untouched by a's publish");
    }

    #[test]
    fn readers_across_threads_converge_on_the_new_snapshot() {
        let p = Arc::new(Published::new(Arc::new(0u64)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                // Every observed value must be one of the published
                // snapshots, and observations are monotone per thread.
                let mut last = *p.read();
                for _ in 0..1000 {
                    let v = *p.read();
                    assert!(v >= last, "snapshots never go backwards");
                    last = v;
                }
            }));
        }
        for v in 1..=10u64 {
            p.publish(Arc::new(v));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*p.read(), 10);
    }
}
