//! The `strudel` command-line tool: build browsable web sites from a site
//! directory, the way a site builder would actually use the system.
//!
//! ## Site directory layout
//!
//! ```text
//! mysite/
//!   site.struql            the site-definition query (STRUQL)
//!   site.conf              assignments and options, line-based:
//!                            root <collection>
//!                            object <ObjectName> <template>
//!                            collection <CollectionName> <template>
//!                            default <template>
//!                            constraint <constraint text>
//!   templates/<name>.tmpl  HTML templates (name = file stem)
//!   sources/               data sources, dispatched by extension:
//!     *.bib                BibTeX        (collection: Publications)
//!     *.csv                relational    (table = file stem)
//!     *.rec                record files  (collection = file stem)
//!     *.ddl                Strudel DDL
//!     html/*.html          wrapped pages (collection: Pages)
//! ```
//!
//! ## Commands
//!
//! ```text
//! strudel build <dir> [-o <outdir>]   build, verify, render, write pages
//! strudel check <dir>                 parse + statically check everything
//! strudel schema <dir>                print the site schema (Graphviz dot)
//! strudel stats <dir>                 print the site-statistics row
//! strudel guide <dir>                 print discovered data-graph schemas
//!                                     (strong DataGuides per collection)
//! strudel serve <dir> [--addr A] [--workers N] [--shards S] [--mode M]
//!                     [--warm W] [--slow-us T] [--backlog B] [--trace]
//!                     [--transport threads|epoll] [--keepalive-secs S]
//!                     [--max-connections N] [--cluster N]
//!                     [--store DIR] [--pool-pages N] [--page-size B]
//!                                     serve the site at click time:
//!                                     pages computed on demand, cached,
//!                                     metrics on /metrics, trace snapshot
//!                                     on /debug/trace, plan explain on
//!                                     /debug/explain
//!                                     (M: naive|context|lookahead;
//!                                      S: per-core service shards, a
//!                                      number or "auto" — requests route
//!                                      by path hash, each shard owns its
//!                                      caches, reads are lock-free
//!                                      epoch-published snapshots;
//!                                      W: warmup workers, a number or
//!                                      "auto" — pre-renders every page
//!                                      before accepting requests;
//!                                      T: slow-request threshold in µs,
//!                                      0 disables;
//!                                      B: max queued connections before
//!                                      new ones are shed with a 503;
//!                                      --transport picks the front end:
//!                                      threads (portable, one response
//!                                      per connection) or epoll (Linux
//!                                      event-driven HTTP/1.1 keep-alive
//!                                      reactor); --keepalive-secs is the
//!                                      reactor's idle-connection
//!                                      deadline; --max-connections caps
//!                                      its open sockets (503 beyond);
//!                                      --trace turns the strudel-trace
//!                                      recorder on at startup;
//!                                      --store attaches a durable paged
//!                                      store at DIR — bulk-loaded from
//!                                      the built site on first run,
//!                                      reopened after that; deltas
//!                                      commit write-through; --pool-pages
//!                                      and --page-size size its buffer
//!                                      pool;
//!                                      --cluster N supervises N shard
//!                                      worker *processes* — crash-
//!                                      isolated, restarted with backoff,
//!                                      WAL-replay recovery from the
//!                                      shared --store, degraded last-
//!                                      known-good responses while a
//!                                      worker is down — requires --store)
//! ```
//!
//! There is also a hidden `shard-worker` verb — the body of one cluster
//! worker process. The supervisor spawns it; it is not part of the
//! user-facing surface:
//!
//! ```text
//! strudel shard-worker <dir> --shard I --of N --store DIR
//!                            --ready-file PATH [--mode M]
//! strudel explain <dir>               print, for every root page, each
//!                                     schema edge's chosen plan with the
//!                                     optimizer's cardinality estimates
//!                                     next to measured rows and timings
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use strudel::wrappers::html::HtmlDoc;
use strudel::wrappers::relational::TableOptions;
use strudel::wrappers::structured::RecordOptions;
use strudel::{SiteBuilder, Source, SourceFormat};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: strudel <build|check|schema|stats|guide|serve|explain> <site-dir> \
         [-o <outdir>] [--addr <ip:port>] [--workers <n>] [--shards <n|auto>] \
         [--mode <naive|context|lookahead>] [--warm <n|auto>] [--slow-us <t>] \
         [--backlog <n>] [--transport <threads|epoll>] [--keepalive-secs <s>] \
         [--max-connections <n>] [--trace] [--store <dir>] [--pool-pages <n>] \
         [--page-size <bytes>] [--cluster <n>]";
    let command = args.first().ok_or(usage)?;
    let dir = PathBuf::from(args.get(1).ok_or(usage)?);
    let outdir = match args.iter().position(|a| a == "-o") {
        Some(i) => PathBuf::from(args.get(i + 1).ok_or("-o needs a directory")?),
        None => dir.join("out"),
    };

    let site = load_site(&dir)?;
    match command.as_str() {
        "check" => {
            let built = site.build().map_err(|e| e.to_string())?;
            println!(
                "ok: {} sources, {} query lines, {} templates, {} site nodes",
                built.stats.sources,
                built.stats.query_lines,
                built.stats.templates,
                built.stats.site_nodes
            );
            report_verifications(&built);
            // Structural lint: site nodes a browser cannot reach from the
            // root pages (§6.2's connectedness constraint, as a warning).
            let roots = built.roots();
            let reachable =
                strudel::graph::traverse::reachable(&built.result.graph, &roots);
            let unreachable: Vec<_> = built
                .result
                .new_nodes
                .iter()
                .filter(|o| !reachable.contains(**o))
                .collect();
            if unreachable.is_empty() {
                println!("reachability: every site node is reachable from the roots");
            } else {
                println!(
                    "warning: {} site node(s) unreachable from the roots, e.g. {}",
                    unreachable.len(),
                    built
                        .result
                        .graph
                        .node_name(*unreachable[0])
                        .unwrap_or("<anonymous>")
                );
            }
            Ok(())
        }
        "schema" => {
            let built = site.build().map_err(|e| e.to_string())?;
            print!("{}", built.schema.to_dot());
            Ok(())
        }
        "stats" => {
            let built = site.build().map_err(|e| e.to_string())?;
            println!("{}", strudel::SiteStats::header());
            println!(
                "{}",
                built.stats_with_render().map_err(|e| e.to_string())?.row()
            );
            Ok(())
        }
        "guide" => {
            let built = site.build().map_err(|e| e.to_string())?;
            let data = built.database.graph();
            for (cid, name) in data.collections() {
                let roots: Vec<strudel::graph::Oid> = data
                    .members(cid)
                    .iter()
                    .filter_map(strudel::graph::Value::as_node)
                    .collect();
                if roots.is_empty() {
                    continue;
                }
                let guide = strudel::repo::DataGuide::build(data, &roots);
                println!("collection {name} ({} members):", roots.len());
                for fact in guide.attribute_report(data, &roots) {
                    let req = if fact.required() { "required" } else { "optional" };
                    let types: Vec<String> = fact
                        .value_types
                        .iter()
                        .map(|(t, c)| format!("{t}×{c}"))
                        .collect();
                    println!(
                        "  {:<14} {:>4}/{:<4} {req:<8} {}",
                        fact.name,
                        fact.carriers,
                        fact.total,
                        types.join(", ")
                    );
                }
            }
            Ok(())
        }
        "build" => {
            let built = site.build().map_err(|e| e.to_string())?;
            report_verifications(&built);
            let output = built.render().map_err(|e| e.to_string())?;
            let broken = output.broken_links();
            if broken.is_empty() {
                println!("links: all intra-site links resolve");
            } else {
                for (page, href) in &broken {
                    println!("warning: {page} links to missing {href}");
                }
            }
            output
                .write_to_dir(&outdir)
                .map_err(|e| format!("writing {}: {e}", outdir.display()))?;
            println!(
                "built '{}': {} pages ({} bytes) -> {}",
                built.name,
                output.pages.len(),
                output.total_bytes(),
                outdir.display()
            );
            Ok(())
        }
        "shard-worker" => {
            // Hidden: one supervised cluster worker (see the module docs).
            let built = site.build().map_err(|e| e.to_string())?;
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1).cloned())
            };
            let need = |name: &str| flag(name).ok_or(format!("shard-worker needs {name}"));
            let shard: usize = need("--shard")?
                .parse()
                .map_err(|_| "--shard needs a number")?;
            let of: usize = need("--of")?.parse().map_err(|_| "--of needs a number")?;
            let opts = strudel_serve::cluster::WorkerOptions {
                shard,
                of,
                store_dir: PathBuf::from(need("--store")?),
                ready_file: PathBuf::from(need("--ready-file")?),
                mode: parse_mode(flag("--mode").as_deref())?,
            };
            strudel_serve::cluster::run_worker(&built, opts)
        }
        "serve" => {
            let built = site.build().map_err(|e| e.to_string())?;
            report_verifications(&built);
            // Claim SIGTERM/SIGINT on the main thread before any server
            // thread exists, so the graceful-drain loop below is the only
            // place they land.
            let signals =
                strudel_epoll::SignalFd::new(&[strudel_epoll::SIGTERM, strudel_epoll::SIGINT])
                    .ok();
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1).cloned())
            };
            let addr = flag("--addr").unwrap_or_else(|| "127.0.0.1:8080".into());
            let workers: usize = match flag("--workers") {
                Some(w) => w.parse().map_err(|_| "--workers needs a number")?,
                None => 4,
            };
            let mode = parse_mode(flag("--mode").as_deref())?;
            let warm = match flag("--warm").as_deref() {
                None => None,
                Some("auto") => Some(strudel::struql::Parallelism::Auto),
                Some(n) => Some(strudel::struql::Parallelism::Threads(
                    n.parse().map_err(|_| "--warm needs a number or 'auto'")?,
                )),
            };
            if args.iter().any(|a| a == "--trace") {
                strudel_trace::set_enabled(true);
            }
            let shards: usize = match flag("--shards").as_deref() {
                None => 1,
                Some("auto") => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                Some(n) => n.parse().map_err(|_| "--shards needs a number or 'auto'")?,
            };
            let slow_us: Option<u64> = match flag("--slow-us") {
                Some(t) => Some(t.parse().map_err(|_| "--slow-us needs a number (µs)")?),
                None => None,
            };
            let store = open_paged_store(args, &built)?;
            let max_backlog: usize = match flag("--backlog") {
                Some(b) => b.parse().map_err(|_| "--backlog needs a number")?,
                None => strudel_serve::ServerConfig::default().max_backlog,
            };
            let transport = match flag("--transport").as_deref() {
                None | Some("threads") => strudel_serve::Transport::Threads,
                Some("epoll") => strudel_serve::Transport::Epoll,
                Some(other) => {
                    return Err(format!("unknown transport '{other}' (threads|epoll)"))
                }
            };
            let keepalive_timeout = match flag("--keepalive-secs") {
                Some(s) => std::time::Duration::from_secs(
                    s.parse().map_err(|_| "--keepalive-secs needs a number")?,
                ),
                None => strudel_serve::ServerConfig::default().keepalive_timeout,
            };
            let max_connections: usize = match flag("--max-connections") {
                Some(n) => n.parse().map_err(|_| "--max-connections needs a number")?,
                None => strudel_serve::ServerConfig::default().max_connections,
            };
            let config = strudel_serve::ServerConfig {
                addr,
                workers,
                max_backlog,
                transport,
                keepalive_timeout,
                max_connections,
                ..Default::default()
            };
            let report_warm = |report: strudel_serve::WarmupReport, workers: usize| {
                println!(
                    "warmed {} pages in {} levels across {} workers ({:.1} ms)",
                    report.pages,
                    report.levels,
                    workers,
                    report.elapsed_us as f64 / 1000.0
                );
            };
            let cluster_workers: Option<usize> = match flag("--cluster") {
                Some(n) => Some(n.parse().map_err(|_| "--cluster needs a number")?),
                None => None,
            };
            let mut cluster: Option<std::sync::Arc<strudel_serve::ClusterService>> = None;
            let server = if let Some(n) = cluster_workers {
                let store = store.ok_or("--cluster requires --store <dir>")?;
                let store_dir = PathBuf::from(flag("--store").expect("--store checked above"));
                let binary = std::env::current_exe()
                    .map_err(|e| format!("locating the strudel binary: {e}"))?;
                let mut ccfg =
                    strudel_serve::ClusterConfig::new(n, binary, dir.clone(), store_dir);
                ccfg.mode = flag("--mode").unwrap_or_else(|| "context".into());
                let service = strudel_serve::ClusterService::start(store, ccfg)
                    .map_err(|e| format!("starting cluster: {e}"))?;
                println!(
                    "cluster: {} worker processes ready ({} broken)",
                    service.ready_workers(),
                    service.broken_workers()
                );
                if let Some(parallelism) = warm {
                    let report = strudel_serve::ClickService::warm(&*service, parallelism)
                        .map_err(|e| format!("warming cluster cache: {e}"))?;
                    report_warm(report, parallelism.workers());
                }
                let handle = strudel_serve::serve(service.clone(), config)
                    .map_err(|e| format!("binding server: {e}"))?;
                cluster = Some(service);
                handle
            } else if shards > 1 {
                let mut service = strudel_serve::ShardedService::new(&built, mode, shards);
                if let Some(store) = store {
                    service = service.with_paged_store(store);
                }
                if let Some(t) = slow_us {
                    service = service.with_slow_threshold_us(t);
                }
                let service = std::sync::Arc::new(service);
                if let Some(parallelism) = warm {
                    let report = service
                        .warm(parallelism)
                        .map_err(|e| format!("warming cache: {e}"))?;
                    report_warm(report, parallelism.workers());
                }
                strudel_serve::serve(service, config)
                    .map_err(|e| format!("binding server: {e}"))?
            } else {
                let mut service = strudel_serve::SiteService::new(&built, mode);
                if let Some(store) = store {
                    service = service.with_paged_store(store);
                }
                if let Some(t) = slow_us {
                    service = service.with_slow_threshold_us(t);
                }
                let service = std::sync::Arc::new(service);
                if let Some(parallelism) = warm {
                    let report = service
                        .warm(parallelism)
                        .map_err(|e| format!("warming cache: {e}"))?;
                    report_warm(report, parallelism.workers());
                }
                strudel_serve::serve(service, config)
                    .map_err(|e| format!("binding server: {e}"))?
            };
            println!(
                "serving '{}' at http://{}/ ({workers} workers, {}, {mode:?} \
                 evaluation, {} transport; ^C stops)",
                built.name,
                server.addr(),
                match (cluster_workers, shards) {
                    (Some(n), _) => format!("{n} supervised worker processes"),
                    (None, 1) => "1 shard".to_string(),
                    (None, s) => format!("{s} shards"),
                },
                match transport {
                    strudel_serve::Transport::Threads => "threads",
                    strudel_serve::Transport::Epoll => "epoll",
                }
            );
            match signals {
                Some(fd) => {
                    // Graceful drain: wait for SIGTERM/SIGINT, stop
                    // accepting, finish in-flight requests, reap workers.
                    let signal = loop {
                        if let Some(sig) = fd.try_take() {
                            break sig;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    };
                    println!("signal {signal}: draining and shutting down");
                    server.shutdown();
                    if let Some(cluster) = cluster {
                        cluster.shutdown();
                    }
                    Ok(())
                }
                // No signalfd on this platform: serve until killed.
                None => loop {
                    std::thread::park();
                },
            }
        }
        "explain" => {
            let built = site.build().map_err(|e| e.to_string())?;
            let service = strudel_serve::SiteService::new(
                &built,
                strudel::schema::dynamic::Mode::Context,
            );
            let roots = service
                .engine()
                .roots(service.root_collection())
                .map_err(|e| e.to_string())?;
            if roots.is_empty() {
                println!("no root pages in collection '{}'", service.root_collection());
            }
            for key in &roots {
                print!("{}", service.explain_page_text(key).map_err(|e| e.to_string())?);
                println!();
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{usage}")),
    }
}

/// Maps a `--mode` flag value onto the click-time evaluation mode.
fn parse_mode(flag: Option<&str>) -> Result<strudel::schema::dynamic::Mode, String> {
    match flag {
        None | Some("context") => Ok(strudel::schema::dynamic::Mode::Context),
        Some("naive") => Ok(strudel::schema::dynamic::Mode::Naive),
        Some("lookahead") => Ok(strudel::schema::dynamic::Mode::ContextLookahead),
        Some(other) => Err(format!("unknown mode '{other}' (naive|context|lookahead)")),
    }
}

/// Opens (or bulk-loads) the durable paged store named by `--store`, if
/// any, sized by `--pool-pages`/`--page-size`. Shared by the sharded and
/// unsharded serve paths — either way deltas commit to it exactly once.
fn open_paged_store(
    args: &[String],
    built: &strudel::Site,
) -> Result<Option<strudel::repo::PagedRepo>, String> {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(store_dir) = flag("--store") else {
        return Ok(None);
    };
    let mut cfg = strudel::repo::PagerConfig::default();
    if let Some(n) = flag("--pool-pages") {
        cfg.pool_pages = n.parse().map_err(|_| "--pool-pages needs a number")?;
    }
    if let Some(b) = flag("--page-size") {
        cfg.page_size = b.parse().map_err(|_| "--page-size needs a number (bytes)")?;
    }
    let store_dir = PathBuf::from(store_dir);
    let fresh = !store_dir.join("pager.manifest").exists();
    let store = if fresh {
        strudel::repo::PagedRepo::bulk_load(&store_dir, cfg, built.database.graph())
            .map_err(|e| format!("bulk-loading paged store: {e}"))?
    } else {
        strudel::repo::PagedRepo::open(&store_dir, cfg)
            .map_err(|e| format!("opening paged store: {e}"))?
    };
    // An existing store may legitimately be ahead of the sources (deltas
    // applied through a previous serve run); flag a divergence but keep
    // serving the built site.
    let mut built_bytes = Vec::new();
    strudel::repo::snapshot::save_graph(built.database.graph(), &mut built_bytes)
        .map_err(|e| format!("encoding site graph: {e}"))?;
    let stored = store
        .snapshot()
        .materialize()
        .map_err(|e| format!("materializing paged store: {e}"))?;
    let mut store_bytes = Vec::new();
    strudel::repo::snapshot::save_graph(&stored, &mut store_bytes)
        .map_err(|e| format!("encoding stored graph: {e}"))?;
    if store_bytes == built_bytes {
        println!(
            "paged store at {} ({} nodes, generation {}, pool {} pages{})",
            store_dir.display(),
            store.node_count(),
            store.generation(),
            cfg.pool_pages,
            if fresh { ", bulk-loaded" } else { "" }
        );
    } else {
        println!(
            "warning: paged store at {} has diverged from the site sources \
             ({} stored nodes vs {} built); serving the built site",
            store_dir.display(),
            store.node_count(),
            built.database.graph().node_count()
        );
    }
    Ok(Some(store))
}

fn report_verifications(site: &strudel::Site) {
    for v in &site.verifications {
        let runtime = if v.runtime_result.holds {
            "holds".to_string()
        } else {
            // Render counterexample bindings with symbolic node names.
            let witness = v
                .runtime_result
                .counterexample
                .as_deref()
                .unwrap_or(&[])
                .iter()
                .map(|(var, value)| {
                    let shown = match value.as_node() {
                        Some(o) => site
                            .result
                            .graph
                            .node_name(o)
                            .map(str::to_owned)
                            .unwrap_or_else(|| o.to_string()),
                        None => value.display_text().into_owned(),
                    };
                    format!("{var} = {shown}")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("VIOLATED ({witness})")
        };
        println!(
            "constraint [{}]: static {:?}, runtime {}",
            v.constraint.source, v.static_verdict, runtime
        );
    }
}

/// Assembles a `SiteBuilder` from a site directory.
fn load_site(dir: &Path) -> Result<SiteBuilder, String> {
    let read = |p: &Path| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))
    };

    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "site".to_string());
    let mut builder = SiteBuilder::new(&name).query(&read(&dir.join("site.struql"))?);

    // Sources.
    let sources_dir = dir.join("sources");
    if sources_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&sources_dir)
            .map_err(|e| format!("reading {}: {e}", sources_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            match path.extension().and_then(|e| e.to_str()) {
                Some("bib") => {
                    builder = builder.source(Source::new(
                        &stem,
                        SourceFormat::Bibtex,
                        &read(&path)?,
                    ));
                }
                Some("csv") => {
                    builder = builder.source(Source::new(
                        &stem,
                        SourceFormat::Relational(TableOptions::new(&stem)),
                        &read(&path)?,
                    ));
                }
                Some("rec") => {
                    builder = builder.source(Source::new(
                        &stem,
                        SourceFormat::Structured(RecordOptions::new(&stem)),
                        &read(&path)?,
                    ));
                }
                Some("ddl") => {
                    builder = builder.source(Source::new(&stem, SourceFormat::Ddl, &read(&path)?));
                }
                _ if path.is_dir() && stem == "html" => {
                    let mut docs = Vec::new();
                    let mut pages: Vec<PathBuf> = std::fs::read_dir(&path)
                        .map_err(|e| format!("reading {}: {e}", path.display()))?
                        .filter_map(|e| e.ok().map(|e| e.path()))
                        .collect();
                    pages.sort();
                    for page in pages {
                        if page.extension().and_then(|e| e.to_str()) == Some("html") {
                            docs.push(HtmlDoc {
                                name: page
                                    .file_name()
                                    .map(|n| n.to_string_lossy().into_owned())
                                    .unwrap_or_default(),
                                html: read(&page)?,
                            });
                        }
                    }
                    builder = builder.source(Source::html("html", "Pages", docs));
                }
                _ => {
                    return Err(format!(
                        "unrecognized source {} (expected .bib/.csv/.rec/.ddl or html/)",
                        path.display()
                    ))
                }
            }
        }
    }

    // Templates.
    let templates_dir = dir.join("templates");
    if templates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&templates_dir)
            .map_err(|e| format!("reading {}: {e}", templates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.extension().and_then(|e| e.to_str()) == Some("tmpl") {
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                builder = builder.template(&stem, &read(&path)?);
            }
        }
    }

    // Configuration.
    let conf = read(&dir.join("site.conf"))?;
    for (line_no, raw) in conf.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.splitn(3, char::is_whitespace);
        let kind = words.next().unwrap_or_default();
        let err = |msg: &str| format!("site.conf line {}: {msg}", line_no + 1);
        match kind {
            "root" => {
                let coll = words.next().ok_or_else(|| err("root needs a collection"))?;
                builder = builder.root_collection(coll);
            }
            "object" => {
                let (obj, tmpl) = (
                    words.next().ok_or_else(|| err("object needs a name"))?,
                    words.next().ok_or_else(|| err("object needs a template"))?,
                );
                builder = builder.assign_object(obj, tmpl.trim());
            }
            "collection" => {
                let (coll, tmpl) = (
                    words.next().ok_or_else(|| err("collection needs a name"))?,
                    words
                        .next()
                        .ok_or_else(|| err("collection needs a template"))?,
                );
                builder = builder.assign_collection(coll, tmpl.trim());
            }
            "default" => {
                let tmpl = words.next().ok_or_else(|| err("default needs a template"))?;
                builder = builder.default_template(tmpl);
            }
            "constraint" => {
                let rest: String = {
                    let a = words.next().unwrap_or_default();
                    let b = words.next().unwrap_or_default();
                    if b.is_empty() {
                        a.to_string()
                    } else {
                        format!("{a} {b}")
                    }
                };
                builder = builder.constraint(rest.trim());
            }
            other => return Err(err(&format!("unknown directive '{other}'"))),
        }
    }
    Ok(builder)
}
