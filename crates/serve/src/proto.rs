//! The HTTP/1.1 wire protocol, shared by both transports.
//!
//! The thread-pool transport ([`crate::server`]) and the epoll reactor
//! ([`crate::event`]) parse requests and encode responses through this
//! one module, so the two transports can never drift: same request
//! grammar, same status bodies, same header set. The only deliberate
//! difference is the `Connection` header — the thread transport always
//! answers `close` (one connection per request, the bench baseline),
//! while the reactor answers `keep-alive` when the request allows it.
//!
//! Parsing is incremental over a byte buffer: callers append whatever
//! arrived and ask again. A request is complete at the first blank line
//! (CRLF or bare LF — the transports have always tolerated both);
//! nothing past it is consumed, so pipelined requests stay in the
//! buffer for the next round.

use crate::Response;

/// One parsed request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The request method, verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// The request target (path plus optional query string).
    pub path: String,
    /// Whether the connection may serve another request after this
    /// response: HTTP/1.1 defaults to yes, HTTP/1.0 to no, and an
    /// explicit `Connection: close` / `keep-alive` header overrides.
    /// Requests carrying a body (`Content-Length`/`Transfer-Encoding`)
    /// force `false` — this server never reads bodies, so the unread
    /// bytes would desynchronize a reused connection.
    pub keep_alive: bool,
}

impl ParsedRequest {
    /// Whether the response should omit its body (`HEAD`).
    pub fn head_only(&self) -> bool {
        self.method == "HEAD"
    }
}

/// What [`parse_request`] found in the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// No blank line yet — read more bytes and ask again.
    Incomplete,
    /// The head outgrew the byte budget without completing: answer
    /// `431` and close.
    TooLarge,
    /// A complete head. `consumed` bytes belong to it (drain them);
    /// anything after is the next pipelined request.
    Complete {
        /// The parsed head.
        request: ParsedRequest,
        /// Bytes of the buffer this head consumed, blank line included.
        consumed: usize,
    },
}

/// Incrementally parses one request head out of `buf` (see
/// [`ParseOutcome`]). `max` is the byte budget for the whole head —
/// request line plus headers ([`crate::server::MAX_REQUEST_BYTES`] in
/// production).
pub fn parse_request(buf: &[u8], max: usize) -> ParseOutcome {
    let Some(end) = head_end(buf, max) else {
        return if buf.len() >= max {
            ParseOutcome::TooLarge
        } else {
            ParseOutcome::Incomplete
        };
    };
    let head = &buf[..end];
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    let version = parts.next().unwrap_or("HTTP/1.1");

    // HTTP/1.1 defaults to keep-alive; anything else (1.0, unversioned)
    // to close. An explicit Connection header overrides either way.
    let mut keep_alive = version.eq_ignore_ascii_case("HTTP/1.1");
    let mut has_body = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            has_body = value.parse::<u64>().map(|n| n > 0).unwrap_or(true);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            has_body = true;
        }
    }
    if has_body {
        keep_alive = false;
    }
    ParseOutcome::Complete {
        request: ParsedRequest {
            method,
            path,
            keep_alive,
        },
        consumed: end,
    }
}

/// The index just past the head's terminating blank line, if present
/// within the first `max` bytes. The blank line is an empty line —
/// `\r\n\r\n`, `\n\n`, or the mixed forms.
fn head_end(buf: &[u8], max: usize) -> Option<usize> {
    let window = &buf[..buf.len().min(max)];
    let mut i = 0;
    while i < window.len() {
        if window[i] != b'\n' {
            i += 1;
            continue;
        }
        // A '\n' ends a line; the next line being empty ends the head.
        match window.get(i + 1) {
            Some(b'\n') => return Some(i + 2),
            Some(b'\r') if window.get(i + 2) == Some(&b'\n') => return Some(i + 3),
            _ => i += 1,
        }
    }
    None
}

/// The canonical reason phrase for every status this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Encodes one response head + body as wire bytes. `keep_alive` selects
/// the `Connection` header; `head_only` omits the body (HEAD) while
/// keeping the true `Content-Length`. A `405` always carries the
/// RFC 9110-required `Allow` header; `retry_after_secs` (used by `503`
/// shedding) adds `Retry-After`.
pub fn encode_response(
    response: &Response,
    head_only: bool,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    use std::io::Write;
    let mut out = Vec::with_capacity(response.body.len() + 160);
    let _ = write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if response.status == 405 {
        let _ = write!(out, "Allow: GET, HEAD\r\n");
    }
    if let Some(secs) = retry_after_secs {
        let _ = write!(out, "Retry-After: {secs}\r\n");
    }
    if response.degraded {
        let _ = write!(out, "X-Strudel-Degraded: stale\r\n");
    }
    let _ = write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    if !head_only {
        out.extend_from_slice(response.body.as_bytes());
    }
    out
}

/// Encodes one request head as wire bytes — the client half of the
/// protocol, used by the cluster router to proxy clicks to its shard
/// workers over loopback.
pub fn encode_request(method: &str, path: &str, keep_alive: bool) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: strudel-cluster\r\nConnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes()
}

/// One response head + body parsed off the wire (the proxy side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value, verbatim.
    pub content_type: String,
    /// The response body (empty for HEAD).
    pub body: String,
    /// Whether the peer marked the response `X-Strudel-Degraded`.
    pub degraded: bool,
    /// Whether the peer will serve another request on this connection.
    pub keep_alive: bool,
}

/// What [`parse_response`] found in the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseOutcome {
    /// Head or declared body still in flight — read more and ask again.
    Incomplete,
    /// Not an HTTP/1.x response this module understands.
    Malformed,
    /// A complete response; `consumed` bytes belong to it.
    Complete {
        /// The parsed response.
        response: ParsedResponse,
        /// Bytes of the buffer this response consumed.
        consumed: usize,
    },
}

/// Incrementally parses one response out of `buf`. `head_only` skips
/// the body wait (a HEAD exchange: `Content-Length` describes the body
/// that is *not* coming). Responses from this server always carry
/// `Content-Length`, so a missing one is [`ResponseOutcome::Malformed`].
pub fn parse_response(buf: &[u8], head_only: bool) -> ResponseOutcome {
    const MAX_RESPONSE_HEAD: usize = 16 * 1024;
    let Some(end) = head_end(buf, MAX_RESPONSE_HEAD) else {
        return if buf.len() >= MAX_RESPONSE_HEAD {
            ResponseOutcome::Malformed
        } else {
            ResponseOutcome::Incomplete
        };
    };
    let text = String::from_utf8_lossy(&buf[..end]);
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return ResponseOutcome::Malformed;
    }
    let Some(status) = parts.next().and_then(|s| s.parse::<u16>().ok()) else {
        return ResponseOutcome::Malformed;
    };
    let mut content_type = String::new();
    let mut content_length: Option<usize> = None;
    let mut degraded = false;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_owned();
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok();
        } else if name.eq_ignore_ascii_case("x-strudel-degraded") {
            degraded = true;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = value.eq_ignore_ascii_case("keep-alive");
        }
    }
    let Some(len) = content_length else {
        return ResponseOutcome::Malformed;
    };
    let body_len = if head_only { 0 } else { len };
    if buf.len() < end + body_len {
        return ResponseOutcome::Incomplete;
    }
    ResponseOutcome::Complete {
        response: ParsedResponse {
            status,
            content_type,
            body: String::from_utf8_lossy(&buf[end..end + body_len]).into_owned(),
            degraded,
            keep_alive,
        },
        consumed: end + body_len,
    }
}

/// The `431` answered when a request head outgrows `max` bytes.
pub fn response_431(max: u64) -> Response {
    Response {
        status: 431,
        content_type: "text/plain; charset=utf-8",
        body: format!("request exceeds {max} bytes\n"),
        degraded: false,
    }
}

/// The `405` answered for any method other than GET/HEAD.
pub fn response_405() -> Response {
    Response {
        status: 405,
        content_type: "text/plain; charset=utf-8",
        body: "only GET is supported\n".into(),
        degraded: false,
    }
}

/// The `400` answered for an unparsable request line.
pub fn response_400() -> Response {
    Response {
        status: 400,
        content_type: "text/plain; charset=utf-8",
        body: "malformed request line\n".into(),
        degraded: false,
    }
}

/// The `408` answered when a client stalls mid-request (the read timed
/// out or the idle deadline passed with a partial head buffered).
pub fn response_408() -> Response {
    Response {
        status: 408,
        content_type: "text/plain; charset=utf-8",
        body: "timed out reading the request\n".into(),
        degraded: false,
    }
}

/// The `503` answered when the server sheds load (full backlog or
/// connection cap).
pub fn response_503() -> Response {
    Response {
        status: 503,
        content_type: "text/plain; charset=utf-8",
        body: "server is at capacity, retry shortly\n".into(),
        degraded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParseOutcome {
        parse_request(s.as_bytes(), 16 * 1024)
    }

    #[test]
    fn parses_a_plain_get() {
        let ParseOutcome::Complete { request, consumed } =
            parse("GET /page/X HTTP/1.1\r\nHost: h\r\n\r\n")
        else {
            panic!("complete")
        };
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/page/X");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(!request.head_only());
        assert_eq!(consumed, "GET /page/X HTTP/1.1\r\nHost: h\r\n\r\n".len());
    }

    #[test]
    fn connection_header_overrides_version_default() {
        for (req, expect) in [
            ("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n", false),
            ("GET / HTTP/1.0\r\n\r\n", false),
            ("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            ("GET / HTTP/1.1\r\n\r\n", true),
        ] {
            let ParseOutcome::Complete { request, .. } = parse(req) else {
                panic!("complete: {req:?}")
            };
            assert_eq!(request.keep_alive, expect, "{req:?}");
        }
    }

    #[test]
    fn bodies_force_close_so_reuse_never_desyncs() {
        for req in [
            "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n",
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nonsense\r\n\r\n",
        ] {
            let ParseOutcome::Complete { request, .. } = parse(req) else {
                panic!("complete: {req:?}")
            };
            assert!(!request.keep_alive, "{req:?}");
        }
        // An explicit zero-length body is no body at all.
        let ParseOutcome::Complete { request, .. } =
            parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        else {
            panic!("complete")
        };
        assert!(request.keep_alive);
    }

    #[test]
    fn incremental_parse_waits_for_the_blank_line() {
        let full = "GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        for cut in 0..full.len() {
            let outcome = parse_request(&full.as_bytes()[..cut], 16 * 1024);
            assert_eq!(outcome, ParseOutcome::Incomplete, "cut at {cut}");
        }
        assert!(matches!(parse(full), ParseOutcome::Complete { .. }));
    }

    #[test]
    fn a_two_byte_header_line_does_not_end_the_head() {
        // "A\n" is the 2-byte header line the old `n > 2` predicate
        // misread as end-of-headers.
        let req = "GET / HTTP/1.1\r\nA\nX-Pad: p\r\n\r\n";
        let ParseOutcome::Complete { consumed, .. } = parse(req) else {
            panic!("complete")
        };
        assert_eq!(consumed, req.len(), "head runs past the 2-byte line");
    }

    #[test]
    fn bare_lf_terminators_are_accepted() {
        let req = "GET / HTTP/1.1\nHost: h\n\n";
        let ParseOutcome::Complete { request, consumed } = parse(req) else {
            panic!("complete")
        };
        assert_eq!(request.path, "/");
        assert_eq!(consumed, req.len());
    }

    #[test]
    fn pipelined_requests_consume_only_the_first_head() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete { request, consumed } = parse(two) else {
            panic!("complete")
        };
        assert_eq!(request.path, "/a");
        let rest = &two.as_bytes()[consumed..];
        let ParseOutcome::Complete { request, .. } = parse_request(rest, 16 * 1024) else {
            panic!("second head parses from the remainder")
        };
        assert_eq!(request.path, "/b");
    }

    #[test]
    fn over_budget_heads_are_too_large() {
        let endless = format!("GET /{} HTTP/1.1", "a".repeat(100));
        assert_eq!(
            parse_request(endless.as_bytes(), 64),
            ParseOutcome::TooLarge
        );
        // Under budget but incomplete: keep reading.
        assert_eq!(
            parse_request(b"GET /abc", 64),
            ParseOutcome::Incomplete
        );
        // A head that *completes* within the budget is fine even if
        // pipelined bytes behind it push the buffer past the budget.
        let head = "GET / HTTP/1.1\r\n\r\n";
        let mut buf = head.as_bytes().to_vec();
        buf.extend(std::iter::repeat(b'x').take(200));
        assert!(matches!(
            parse_request(&buf, 64),
            ParseOutcome::Complete { .. }
        ));
    }

    #[test]
    fn encode_sets_connection_allow_and_retry_after() {
        let ok = Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: "<p>hi</p>".into(),
            degraded: false,
        };
        let bytes = encode_response(&ok, false, true, None);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Content-Length: 9\r\n"), "{text}");
        assert!(text.ends_with("<p>hi</p>"), "{text}");

        // HEAD: full Content-Length, no body.
        let head = String::from_utf8(encode_response(&ok, true, false, None)).unwrap();
        assert!(head.contains("Content-Length: 9\r\n"), "{head}");
        assert!(head.ends_with("\r\n\r\n"), "{head}");
        assert!(head.contains("Connection: close\r\n"), "{head}");

        // 405 always carries Allow (RFC 9110 §15.5.6).
        let text =
            String::from_utf8(encode_response(&response_405(), false, false, None)).unwrap();
        assert!(text.contains("Allow: GET, HEAD\r\n"), "{text}");

        // Shedding carries Retry-After.
        let text =
            String::from_utf8(encode_response(&response_503(), false, false, Some(7))).unwrap();
        assert!(text.contains("Retry-After: 7\r\n"), "{text}");
    }

    #[test]
    fn degraded_responses_carry_the_stale_marker() {
        let stale = Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: "<p>old</p>".into(),
            degraded: true,
        };
        let text = String::from_utf8(encode_response(&stale, false, false, None)).unwrap();
        assert!(text.contains("X-Strudel-Degraded: stale\r\n"), "{text}");
    }

    #[test]
    fn response_round_trips_through_the_client_side() {
        let sent = Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            body: "<p>hi</p>".into(),
            degraded: true,
        };
        let wire = encode_response(&sent, false, true, None);
        // Incremental: every prefix is Incomplete, the whole is Complete.
        for cut in 0..wire.len() {
            assert_eq!(
                parse_response(&wire[..cut], false),
                ResponseOutcome::Incomplete,
                "cut at {cut}"
            );
        }
        let ResponseOutcome::Complete { response, consumed } = parse_response(&wire, false)
        else {
            panic!("complete")
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "text/html; charset=utf-8");
        assert_eq!(response.body, "<p>hi</p>");
        assert!(response.degraded);
        assert!(response.keep_alive);

        // HEAD: the head alone completes despite the Content-Length.
        let head_wire = encode_response(&sent, true, false, None);
        let ResponseOutcome::Complete { response, consumed } =
            parse_response(&head_wire, true)
        else {
            panic!("complete")
        };
        assert_eq!(consumed, head_wire.len());
        assert!(response.body.is_empty());
        assert!(!response.keep_alive);
    }

    #[test]
    fn malformed_responses_are_rejected_not_misread() {
        assert_eq!(
            parse_response(b"SMTP ready\r\n\r\n", false),
            ResponseOutcome::Malformed
        );
        // No Content-Length: this server never emits that.
        assert_eq!(
            parse_response(b"HTTP/1.1 200 OK\r\n\r\n", false),
            ResponseOutcome::Malformed
        );
    }

    #[test]
    fn encoded_requests_parse_back_through_the_server_side() {
        let wire = encode_request("GET", "/page/X", true);
        let ParseOutcome::Complete { request, consumed } = parse_request(&wire, 16 * 1024)
        else {
            panic!("complete")
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/page/X");
        assert!(request.keep_alive);
        let wire = encode_request("GET", "/", false);
        let ParseOutcome::Complete { request, .. } = parse_request(&wire, 16 * 1024) else {
            panic!("complete")
        };
        assert!(!request.keep_alive);
    }
}
