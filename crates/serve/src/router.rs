//! Stable URL routing: [`PageKey`] ⇄ URL path.
//!
//! URLs are derived from the page's Skolem symbol and its fully evaluated
//! argument values, so they are *stable*: the same page has the same URL
//! across server restarts, cache flushes, and data deltas (unlike
//! session-local numeric ids, which shuffle on every restart). Each
//! argument is one typed, percent-encoded path segment:
//!
//! ```text
//! /page/ArticlePage/n:a17        node argument, by symbolic name
//! /page/CategoryPage/s:sports    string argument
//! /page/YearPage/i:1998          integer argument
//! /page/Split/f:2.5/b:true       float and boolean arguments
//! /page/Mirror/u:http%3A%2F%2F…  URL argument
//! /page/Scan/F:image:covers%2Fx  typed-file argument (kind:path)
//! /page/Anon/o:42                anonymous node, by object index
//! /data/n:a17                    raw data-graph object view
//! ```
//!
//! Named nodes are addressed by name (`n:`), which survives any delta
//! that preserves the node; anonymous nodes fall back to their object
//! index (`o:`), stable only as long as no delta renumbers the graph.

use strudel_graph::{FileKind, Graph, Oid, Value};
use strudel_schema::dynamic::PageKey;

/// Routes a request path to one of `n` service shards by FNV-1a hash of
/// the path bytes. FNV is specified byte-for-byte (unlike
/// `DefaultHasher`, whose algorithm may change between Rust releases),
/// so the page → shard assignment is stable across builds — the property
/// the ROADMAP's cross-process consistent-hash router will inherit.
/// Because URLs are themselves stable (see module docs), a page lands on
/// the same shard across restarts, deltas, and redeploys.
pub fn shard_of_path(path: &str, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n as u64) as usize
}

/// Percent-encodes every byte outside the URL-unreserved set
/// (ASCII alphanumerics and `-._~`).
pub fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(char::from_digit((b >> 4) as u32, 16).unwrap().to_ascii_uppercase());
                out.push(char::from_digit((b & 0xf) as u32, 16).unwrap().to_ascii_uppercase());
            }
        }
    }
    out
}

/// Decodes a percent-encoded segment. Returns `None` on malformed escapes
/// or invalid UTF-8.
pub fn pct_decode(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = char::from(*bytes.get(i + 1)?).to_digit(16)?;
                let lo = char::from(*bytes.get(i + 2)?).to_digit(16)?;
                out.push(((hi << 4) | lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn file_kind_tag(kind: FileKind) -> &'static str {
    match kind {
        FileKind::Text => "text",
        FileKind::PostScript => "ps",
        FileKind::Image => "image",
        FileKind::Html => "html",
    }
}

fn parse_file_kind(tag: &str) -> Option<FileKind> {
    Some(match tag {
        "text" => FileKind::Text,
        "ps" => FileKind::PostScript,
        "image" => FileKind::Image,
        "html" => FileKind::Html,
        _ => return None,
    })
}

/// Encodes one argument value as a typed path segment.
pub fn encode_value(v: &Value, graph: &Graph) -> String {
    match v {
        Value::Node(oid) => match graph.node_name(*oid) {
            Some(name) => format!("n:{}", pct_encode(name)),
            None => format!("o:{}", oid.index()),
        },
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{f}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{}", pct_encode(s)),
        Value::Url(u) => format!("u:{}", pct_encode(u)),
        Value::File(f) => format!("F:{}:{}", file_kind_tag(f.kind), pct_encode(&f.path)),
    }
}

/// Decodes one typed path segment back into a value. Node segments are
/// resolved against `graph`; a dangling name or out-of-range index is
/// `None` (a 404, not a panic).
pub fn decode_value(seg: &str, graph: &Graph) -> Option<Value> {
    let (tag, rest) = seg.split_once(':')?;
    match tag {
        "n" => graph.node_by_name(&pct_decode(rest)?).map(Value::Node),
        "o" => {
            let idx: usize = rest.parse().ok()?;
            (idx < graph.node_count()).then(|| Value::Node(Oid::from_index(idx)))
        }
        "i" => rest.parse().ok().map(Value::Int),
        "f" => rest.parse().ok().map(Value::Float),
        "b" => rest.parse().ok().map(Value::Bool),
        "s" => Some(Value::string(pct_decode(rest)?)),
        "u" => Some(Value::url(pct_decode(rest)?)),
        "F" => {
            let (kind, path) = rest.split_once(':')?;
            Some(Value::file(parse_file_kind(kind)?, pct_decode(path)?))
        }
        _ => None,
    }
}

/// The URL path serving `key`.
pub fn page_path(key: &PageKey, graph: &Graph) -> String {
    let mut path = format!("/page/{}", pct_encode(&key.symbol));
    for arg in &key.args {
        path.push('/');
        path.push_str(&encode_value(arg, graph));
    }
    path
}

/// Parses a `/page/…` path back into a [`PageKey`]. `None` means the path
/// is not a well-formed page URL for this graph (a 404).
pub fn parse_page_path(path: &str, graph: &Graph) -> Option<PageKey> {
    let rest = path.strip_prefix("/page/")?;
    let mut segs = rest.split('/');
    let symbol = pct_decode(segs.next()?)?;
    if symbol.is_empty() {
        return None;
    }
    let mut args = Vec::new();
    for seg in segs {
        args.push(decode_value(seg, graph)?);
    }
    Some(PageKey { symbol, args })
}

/// The URL path of the raw data-graph view of `oid`.
pub fn data_path(oid: Oid, graph: &Graph) -> String {
    match graph.node_name(oid) {
        Some(name) => format!("/data/n:{}", pct_encode(name)),
        None => format!("/data/o:{}", oid.index()),
    }
}

/// Parses a `/data/…` path back into a data-graph object.
pub fn parse_data_path(path: &str, graph: &Graph) -> Option<Oid> {
    let seg = path.strip_prefix("/data/")?;
    if seg.contains('/') {
        return None;
    }
    match decode_value(seg, graph)? {
        Value::Node(oid) => Some(oid),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::Graph;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.add_named_node("a17");
        g.add_node();
        g
    }

    #[test]
    fn pct_round_trips_hostile_strings() {
        for s in [
            "plain",
            "with space",
            "slash/and?query&frag#",
            "per%cent",
            "naïve — ünïcode ✓",
            "",
            "a:b:c",
        ] {
            assert_eq!(pct_decode(&pct_encode(s)).as_deref(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn pct_decode_rejects_malformed() {
        assert_eq!(pct_decode("%"), None);
        assert_eq!(pct_decode("%g1"), None);
        assert_eq!(pct_decode("%2"), None);
        assert_eq!(pct_decode("%ff%fe"), None, "invalid utf-8");
    }

    #[test]
    fn page_path_round_trips_every_value_type() {
        let g = graph();
        let named = g.node_by_name("a17").unwrap();
        let key = PageKey {
            symbol: "Mixed Page".into(),
            args: vec![
                Value::Node(named),
                Value::Node(Oid::from_index(1)),
                Value::Int(-3),
                Value::Float(2.5),
                Value::Bool(true),
                Value::string("World Cup / final %"),
                Value::url("http://example.org/x?y=1"),
                Value::file(FileKind::Image, "covers/x.gif"),
            ],
        };
        let path = page_path(&key, &g);
        assert_eq!(parse_page_path(&path, &g), Some(key));
    }

    #[test]
    fn unknown_segments_are_rejected() {
        let g = graph();
        assert_eq!(parse_page_path("/page/P/x:1", &g), None);
        assert_eq!(parse_page_path("/page/P/i:notanint", &g), None);
        assert_eq!(parse_page_path("/page/P/n:ghost", &g), None);
        assert_eq!(parse_page_path("/page/P/o:99", &g), None);
        assert_eq!(parse_page_path("/page/", &g), None);
        assert_eq!(parse_page_path("/elsewhere/P", &g), None);
    }

    #[test]
    fn data_path_round_trips() {
        let g = graph();
        for oid in [g.node_by_name("a17").unwrap(), Oid::from_index(1)] {
            let path = data_path(oid, &g);
            assert_eq!(parse_data_path(&path, &g), Some(oid));
        }
        assert_eq!(parse_data_path("/data/i:3", &g), None, "not a node");
        assert_eq!(parse_data_path("/data/n:a17/extra", &g), None);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        // Pinned values: FNV-1a is specified byte-for-byte, so these
        // must never change across builds or platforms.
        assert_eq!(shard_of_path("/page/ArticlePage/n:a17", 4), 3);
        assert_eq!(shard_of_path("/", 4), 2);
        for n in 1..=8 {
            for path in ["/", "/page/A/n:x", "/data/o:3", "/metrics"] {
                let s = shard_of_path(path, n);
                assert!(s < n);
                assert_eq!(s, shard_of_path(path, n), "deterministic");
            }
        }
        assert_eq!(shard_of_path("/anything", 1), 0);
        assert_eq!(shard_of_path("/anything", 0), 0);
    }
}
