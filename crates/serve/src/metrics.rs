//! Request observability: per-route counters, latency histograms, and the
//! `/metrics` text rendition.
//!
//! Everything is lock-free on the hot path: a request records one atomic
//! add into its route's counter and one into a fixed-bucket latency
//! histogram. Quantiles are read from the bucket counts on demand, so
//! `p50`/`p99` are upper bounds at bucket resolution — plenty for
//! operational visibility, free of per-request allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Histogram bucket upper bounds, in microseconds: a 1–2–5 ladder from
/// 1 µs to 10 s, plus an overflow bucket.
const BOUNDS_US: [u64; 22] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The `q`-quantile in microseconds, as the upper bound of the bucket
    /// containing it (0 when empty). `q` is clamped to `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Counters for one route class (e.g. `page/ArticlePage`, `metrics`).
#[derive(Debug, Default)]
pub struct RouteStats {
    /// Requests served on this route.
    pub requests: AtomicU64,
    /// Request latency distribution.
    pub latency: Histogram,
}

/// The server's metric registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    routes: RwLock<HashMap<String, Arc<RouteStats>>>,
    total: RouteStats,
}

impl ServerMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request on `route` taking `us` microseconds.
    pub fn record(&self, route: &str, us: u64) {
        self.total.requests.fetch_add(1, Ordering::Relaxed);
        self.total.latency.record(us);
        if let Some(r) = self.routes.read().unwrap().get(route) {
            r.requests.fetch_add(1, Ordering::Relaxed);
            r.latency.record(us);
            return;
        }
        let r = self
            .routes
            .write()
            .unwrap()
            .entry(route.to_owned())
            .or_default()
            .clone();
        r.requests.fetch_add(1, Ordering::Relaxed);
        r.latency.record(us);
    }

    /// A point-in-time snapshot of every route.
    pub fn snapshot(&self) -> Vec<RouteSnapshot> {
        let mut routes: Vec<RouteSnapshot> = self
            .routes
            .read()
            .unwrap()
            .iter()
            .map(|(name, r)| RouteSnapshot {
                route: name.clone(),
                requests: r.requests.load(Ordering::Relaxed),
                p50_us: r.latency.quantile_us(0.5),
                p99_us: r.latency.quantile_us(0.99),
                mean_us: r.latency.mean_us(),
            })
            .collect();
        routes.sort_by(|a, b| a.route.cmp(&b.route));
        routes
    }

    /// Totals across all routes.
    pub fn totals(&self) -> RouteSnapshot {
        RouteSnapshot {
            route: "total".into(),
            requests: self.total.requests.load(Ordering::Relaxed),
            p50_us: self.total.latency.quantile_us(0.5),
            p99_us: self.total.latency.quantile_us(0.99),
            mean_us: self.total.latency.mean_us(),
        }
    }
}

/// One route's counters, frozen for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteSnapshot {
    /// Route class (page symbol, `front`, `data`, `metrics`, `not_found`).
    pub route: String,
    /// Requests served.
    pub requests: u64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
}

/// Rendered-HTML cache counters, frozen for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to render.
    pub misses: u64,
    /// Entries evicted by delta invalidation or explicit clears.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
}

impl CacheSnapshot {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything the `/metrics` endpoint reports, as one struct.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Totals across all routes.
    pub total: RouteSnapshot,
    /// Per-route breakdown, sorted by route name.
    pub routes: Vec<RouteSnapshot>,
    /// Rendered-HTML cache counters.
    pub html_cache: CacheSnapshot,
    /// The click-time engine's own counters (page-view cache, guard
    /// evaluations).
    pub engine: strudel_schema::dynamic::Metrics,
    /// Number of applied data deltas.
    pub epoch: u64,
}

impl ServerStats {
    /// Renders the stats in the Prometheus text exposition format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("strudel_requests_total {}", self.total.requests));
        for (q, v) in [("0.5", self.total.p50_us), ("0.99", self.total.p99_us)] {
            line(format!(
                "strudel_request_latency_us{{quantile=\"{q}\"}} {v}"
            ));
        }
        line(format!(
            "strudel_request_latency_us_mean {}",
            self.total.mean_us
        ));
        for r in &self.routes {
            line(format!(
                "strudel_route_requests_total{{route=\"{}\"}} {}",
                r.route, r.requests
            ));
            line(format!(
                "strudel_route_latency_us{{route=\"{}\",quantile=\"0.5\"}} {}",
                r.route, r.p50_us
            ));
            line(format!(
                "strudel_route_latency_us{{route=\"{}\",quantile=\"0.99\"}} {}",
                r.route, r.p99_us
            ));
        }
        line(format!("strudel_html_cache_hits_total {}", self.html_cache.hits));
        line(format!(
            "strudel_html_cache_misses_total {}",
            self.html_cache.misses
        ));
        line(format!(
            "strudel_html_cache_evictions_total {}",
            self.html_cache.evictions
        ));
        line(format!("strudel_html_cache_entries {}", self.html_cache.entries));
        let mut rate = String::new();
        write!(rate, "{:.4}", self.html_cache.hit_rate()).unwrap();
        line(format!("strudel_html_cache_hit_rate {rate}"));
        line(format!("strudel_engine_clicks_total {}", self.engine.clicks));
        line(format!(
            "strudel_engine_queries_total {}",
            self.engine.queries_run
        ));
        line(format!(
            "strudel_engine_rows_produced_total {}",
            self.engine.rows_produced
        ));
        line(format!(
            "strudel_engine_view_cache_hits_total {}",
            self.engine.cache_hits
        ));
        line(format!(
            "strudel_engine_view_evictions_total {}",
            self.engine.evictions
        ));
        line(format!("strudel_delta_epoch {}", self.epoch));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for us in [3, 3, 3, 3, 3, 3, 3, 3, 3, 700] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_us(0.5), 5, "3 µs falls in the (2,5] bucket");
        assert_eq!(h.quantile_us(0.99), 1_000, "700 µs falls in (500,1000]");
        assert_eq!(h.mean_us(), (9 * 3 + 700) / 10);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn overflow_bucket_catches_huge_latencies() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
    }

    #[test]
    fn routes_accumulate_independently() {
        let m = ServerMetrics::new();
        m.record("front", 10);
        m.record("front", 20);
        m.record("page/ArticlePage", 100);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let front = snap.iter().find(|r| r.route == "front").unwrap();
        assert_eq!(front.requests, 2);
        assert_eq!(m.totals().requests, 3);
    }

    #[test]
    fn stats_render_prometheus_text() {
        let m = ServerMetrics::new();
        m.record("front", 42);
        let stats = ServerStats {
            total: m.totals(),
            routes: m.snapshot(),
            html_cache: CacheSnapshot {
                hits: 3,
                misses: 1,
                evictions: 0,
                entries: 1,
            },
            engine: Default::default(),
            epoch: 0,
        };
        let text = stats.to_text();
        assert!(text.contains("strudel_requests_total 1"));
        assert!(text.contains("strudel_route_requests_total{route=\"front\"} 1"));
        assert!(text.contains("strudel_html_cache_hit_rate 0.7500"));
        assert!(text.contains("strudel_request_latency_us{quantile=\"0.5\"} 50"));
    }
}
