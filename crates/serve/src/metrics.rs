//! Request observability: per-route counters, latency histograms, and the
//! `/metrics` text rendition.
//!
//! Everything is lock-free on the hot path: a request records one atomic
//! add into its route's counter and one into a fixed-bucket latency
//! histogram. Quantiles are read from the bucket counts on demand, so
//! `p50`/`p99` are upper bounds at bucket resolution — plenty for
//! operational visibility, free of per-request allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Histogram bucket upper bounds, in microseconds: a 1–2–5 ladder from
/// 1 µs to 10 s, plus an overflow bucket.
const BOUNDS_US: [u64; 22] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    /// Largest observation, so quantiles landing in the overflow bucket
    /// report a real latency instead of a fictitious `u64::MAX` bound.
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The `q`-quantile in microseconds, as the upper bound of the bucket
    /// containing it (0 when empty). `q` is clamped to `[0, 1]`; `q = 0`
    /// on a non-empty histogram reports the first occupied bucket's
    /// bound. Quantiles that land in the overflow bucket report the
    /// largest observed latency rather than an invented bound.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return match BOUNDS_US.get(i) {
                    Some(&bound) => bound,
                    None => self.max_us.load(Ordering::Relaxed),
                };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts in Prometheus exposition order: one
    /// `(Some(bound), cumulative)` pair per finite bucket, then one
    /// `(None, total)` pair for the `+Inf` bucket, which absorbs samples
    /// above the last finite bound.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            out.push((BOUNDS_US.get(i).copied(), seen));
        }
        out
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

/// Counters for one route class (e.g. `page/ArticlePage`, `metrics`).
#[derive(Debug, Default)]
pub struct RouteStats {
    /// Requests served on this route.
    pub requests: AtomicU64,
    /// Request latency distribution.
    pub latency: Histogram,
}

/// The server's metric registry.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    routes: RwLock<HashMap<String, Arc<RouteStats>>>,
    total: RouteStats,
}

impl ServerMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request on `route` taking `us` microseconds.
    pub fn record(&self, route: &str, us: u64) {
        self.total.requests.fetch_add(1, Ordering::Relaxed);
        self.total.latency.record(us);
        if let Some(r) = self.routes.read().unwrap().get(route) {
            r.requests.fetch_add(1, Ordering::Relaxed);
            r.latency.record(us);
            return;
        }
        let r = self
            .routes
            .write()
            .unwrap()
            .entry(route.to_owned())
            .or_default()
            .clone();
        r.requests.fetch_add(1, Ordering::Relaxed);
        r.latency.record(us);
    }

    /// A point-in-time snapshot of every route.
    pub fn snapshot(&self) -> Vec<RouteSnapshot> {
        let mut routes: Vec<RouteSnapshot> = self
            .routes
            .read()
            .unwrap()
            .iter()
            .map(|(name, r)| RouteSnapshot {
                route: name.clone(),
                requests: r.requests.load(Ordering::Relaxed),
                p50_us: r.latency.quantile_us(0.5),
                p99_us: r.latency.quantile_us(0.99),
                mean_us: r.latency.mean_us(),
            })
            .collect();
        routes.sort_by(|a, b| a.route.cmp(&b.route));
        routes
    }

    /// Totals across all routes.
    pub fn totals(&self) -> RouteSnapshot {
        RouteSnapshot {
            route: "total".into(),
            requests: self.total.requests.load(Ordering::Relaxed),
            p50_us: self.total.latency.quantile_us(0.5),
            p99_us: self.total.latency.quantile_us(0.99),
            mean_us: self.total.latency.mean_us(),
        }
    }

    /// Cumulative latency buckets across all routes (see
    /// [`Histogram::cumulative_buckets`]).
    pub fn total_latency_buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.total.latency.cumulative_buckets()
    }

    /// Total latency sum across all routes, microseconds.
    pub fn total_latency_sum_us(&self) -> u64 {
        self.total.latency.sum_us()
    }
}

/// One route's counters, frozen for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteSnapshot {
    /// Route class (page symbol, `front`, `data`, `metrics`, `not_found`).
    pub route: String,
    /// Requests served.
    pub requests: u64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
}

/// Rendered-HTML cache counters, frozen for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to render.
    pub misses: u64,
    /// Entries evicted by delta invalidation or explicit clears.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Hits served from the RCU-published snapshot (no lock taken).
    pub published_hits: u64,
    /// Entries currently servable from the published snapshot.
    pub published_entries: u64,
    /// Snapshot promotions published so far.
    pub promotions: u64,
}

impl CacheSnapshot {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything the `/metrics` endpoint reports, as one struct.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Totals across all routes.
    pub total: RouteSnapshot,
    /// Cumulative latency buckets across all routes: `(bound_us,
    /// cumulative count)`, `None` bound = the `+Inf` overflow bucket.
    pub latency_buckets: Vec<(Option<u64>, u64)>,
    /// Total latency sum across all routes, microseconds.
    pub latency_sum_us: u64,
    /// Per-route breakdown, sorted by route name.
    pub routes: Vec<RouteSnapshot>,
    /// Rendered-HTML cache counters.
    pub html_cache: CacheSnapshot,
    /// The click-time engine's own counters (page-view cache, guard
    /// evaluations).
    pub engine: strudel_schema::dynamic::Metrics,
    /// Number of applied data deltas.
    pub epoch: u64,
    /// Requests that exceeded the slow-request threshold.
    pub slow_requests: u64,
    /// Requests that panicked mid-dispatch and were answered with a 500.
    pub panics: u64,
    /// Connections shed with a 503 because the backlog was full.
    pub shed: u64,
    /// Connections whose socket-timeout setup failed (served anyway).
    pub timeout_config_errors: u64,
    /// Failed `accept` calls (the transport backed off after each).
    pub accept_errors: u64,
    /// Connections currently open at the transport (a gauge).
    pub open_connections: u64,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuse: u64,
    /// Keep-alive connections closed by the idle deadline.
    pub idle_closed: u64,
    /// Whether an earlier write failure poisoned the attached paged
    /// store (reads keep serving; `/readyz` answers 503).
    pub store_poisoned: bool,
    /// Global `strudel-trace` counters, sorted by name; empty while
    /// tracing is disabled.
    pub trace_counters: Vec<(String, u64)>,
    /// Process-wide buffer-pool counters from the paged store; all
    /// zeros when no paged store is in use.
    pub pager: strudel_repo::PagerStats,
}

impl ServerStats {
    /// Renders the stats in the Prometheus text exposition format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("strudel_requests_total {}", self.total.requests));
        for (q, v) in [("0.5", self.total.p50_us), ("0.99", self.total.p99_us)] {
            line(format!(
                "strudel_request_latency_us{{quantile=\"{q}\"}} {v}"
            ));
        }
        line(format!(
            "strudel_request_latency_us_mean {}",
            self.total.mean_us
        ));
        // Standard Prometheus histogram series: overflow samples land in
        // the `+Inf` bucket, never under a fabricated numeric bound.
        for (bound, cumulative) in &self.latency_buckets {
            let le = match bound {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            line(format!(
                "strudel_request_latency_us_bucket{{le=\"{le}\"}} {cumulative}"
            ));
        }
        line(format!(
            "strudel_request_latency_us_sum {}",
            self.latency_sum_us
        ));
        line(format!(
            "strudel_request_latency_us_count {}",
            self.total.requests
        ));
        for r in &self.routes {
            line(format!(
                "strudel_route_requests_total{{route=\"{}\"}} {}",
                r.route, r.requests
            ));
            line(format!(
                "strudel_route_latency_us{{route=\"{}\",quantile=\"0.5\"}} {}",
                r.route, r.p50_us
            ));
            line(format!(
                "strudel_route_latency_us{{route=\"{}\",quantile=\"0.99\"}} {}",
                r.route, r.p99_us
            ));
        }
        line(format!("strudel_html_cache_hits_total {}", self.html_cache.hits));
        line(format!(
            "strudel_html_cache_misses_total {}",
            self.html_cache.misses
        ));
        line(format!(
            "strudel_html_cache_evictions_total {}",
            self.html_cache.evictions
        ));
        line(format!("strudel_html_cache_entries {}", self.html_cache.entries));
        line(format!(
            "strudel_html_cache_published_hits_total {}",
            self.html_cache.published_hits
        ));
        line(format!(
            "strudel_html_cache_published_entries {}",
            self.html_cache.published_entries
        ));
        line(format!(
            "strudel_html_cache_promotions_total {}",
            self.html_cache.promotions
        ));
        let mut rate = String::new();
        write!(rate, "{:.4}", self.html_cache.hit_rate()).unwrap();
        line(format!("strudel_html_cache_hit_rate {rate}"));
        line(format!("strudel_engine_clicks_total {}", self.engine.clicks));
        line(format!(
            "strudel_engine_queries_total {}",
            self.engine.queries_run
        ));
        line(format!(
            "strudel_engine_rows_produced_total {}",
            self.engine.rows_produced
        ));
        line(format!(
            "strudel_engine_view_cache_hits_total {}",
            self.engine.cache_hits
        ));
        line(format!(
            "strudel_engine_view_evictions_total {}",
            self.engine.evictions
        ));
        line(format!(
            "strudel_engine_plan_cache_hits_total {}",
            self.engine.plan_cache_hits
        ));
        line(format!(
            "strudel_engine_plan_cache_misses_total {}",
            self.engine.plan_cache_misses
        ));
        line(format!(
            "strudel_diff_pages_updated_total {}",
            self.engine.diff_pages_updated
        ));
        line(format!(
            "strudel_diff_fallbacks_total {}",
            self.engine.diff_fallbacks
        ));
        line(format!(
            "strudel_diff_rows_added_total {}",
            self.engine.diff_rows_added
        ));
        line(format!(
            "strudel_diff_rows_retracted_total {}",
            self.engine.diff_rows_retracted
        ));
        line(format!("strudel_delta_epoch {}", self.epoch));
        line(format!("strudel_slow_requests_total {}", self.slow_requests));
        line(format!("strudel_panics_total {}", self.panics));
        line(format!("strudel_shed_total {}", self.shed));
        line(format!(
            "strudel_timeout_config_errors_total {}",
            self.timeout_config_errors
        ));
        line(format!(
            "strudel_accept_errors_total {}",
            self.accept_errors
        ));
        line(format!("strudel_open_connections {}", self.open_connections));
        line(format!(
            "strudel_keepalive_reuse_total {}",
            self.keepalive_reuse
        ));
        line(format!("strudel_idle_closed_total {}", self.idle_closed));
        line(format!(
            "strudel_store_poisoned {}",
            u64::from(self.store_poisoned)
        ));
        line(format!("strudel_pager_hits_total {}", self.pager.hits));
        line(format!("strudel_pager_misses_total {}", self.pager.misses));
        line(format!(
            "strudel_pager_evictions_total {}",
            self.pager.evictions
        ));
        line(format!("strudel_pager_pins_total {}", self.pager.pins));
        line(format!(
            "strudel_pager_writebacks_total {}",
            self.pager.writebacks
        ));
        line(format!("strudel_pager_pool_pages {}", self.pager.pool_pages));
        line(format!(
            "strudel_pager_resident_pages {}",
            self.pager.resident
        ));
        for (name, v) in &self.trace_counters {
            line(format!("strudel_trace_counter{{name=\"{name}\"}} {v}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for us in [3, 3, 3, 3, 3, 3, 3, 3, 3, 700] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_us(0.5), 5, "3 µs falls in the (2,5] bucket");
        assert_eq!(h.quantile_us(0.99), 1_000, "700 µs falls in (500,1000]");
        assert_eq!(h.mean_us(), (9 * 3 + 700) / 10);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn overflow_bucket_catches_huge_latencies() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile_us(0.5), u64::MAX);
    }

    #[test]
    fn single_sample_histogram_answers_every_quantile() {
        let h = Histogram::default();
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 50, "q={q}: 42 µs is in (20,50]");
        }
    }

    #[test]
    fn quantile_zero_reports_first_occupied_bucket() {
        let h = Histogram::default();
        h.record(700);
        h.record(3);
        assert_eq!(h.quantile_us(0.0), 5, "first occupied bucket, (2,5]");
    }

    #[test]
    fn overflow_quantiles_report_observed_max_not_a_fictitious_bound() {
        // Regression: a 20 s request (past the 10 s ladder top) used to
        // make every overflow-bucket quantile report u64::MAX.
        let h = Histogram::default();
        h.record(20_000_000);
        assert_eq!(h.quantile_us(0.0), 20_000_000);
        assert_eq!(h.quantile_us(0.5), 20_000_000);
        assert_eq!(h.quantile_us(1.0), 20_000_000);
    }

    #[test]
    fn cumulative_buckets_end_in_the_inf_bucket() {
        let h = Histogram::default();
        h.record(3);
        h.record(3);
        h.record(20_000_000); // overflow
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), BOUNDS_US.len() + 1);
        assert_eq!(buckets[2], (Some(5), 2), "both 3 µs samples by le=5");
        let (last_bound, last_count) = buckets[buckets.len() - 1];
        assert_eq!(last_bound, None, "+Inf bucket");
        assert_eq!(last_count, 3, "+Inf is cumulative over everything");
        assert_eq!(
            buckets[buckets.len() - 2],
            (Some(10_000_000), 2),
            "overflow sample is NOT under the last finite bound"
        );
        assert_eq!(h.sum_us(), 20_000_006);
    }

    #[test]
    fn routes_accumulate_independently() {
        let m = ServerMetrics::new();
        m.record("front", 10);
        m.record("front", 20);
        m.record("page/ArticlePage", 100);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let front = snap.iter().find(|r| r.route == "front").unwrap();
        assert_eq!(front.requests, 2);
        assert_eq!(m.totals().requests, 3);
    }

    #[test]
    fn stats_render_prometheus_text() {
        let m = ServerMetrics::new();
        m.record("front", 42);
        let stats = ServerStats {
            total: m.totals(),
            latency_buckets: m.total_latency_buckets(),
            latency_sum_us: m.total_latency_sum_us(),
            routes: m.snapshot(),
            html_cache: CacheSnapshot {
                hits: 3,
                misses: 1,
                evictions: 0,
                entries: 1,
                published_hits: 2,
                published_entries: 1,
                promotions: 1,
            },
            engine: strudel_schema::dynamic::Metrics {
                diff_pages_updated: 5,
                diff_fallbacks: 1,
                diff_rows_added: 9,
                diff_rows_retracted: 4,
                ..Default::default()
            },
            epoch: 0,
            slow_requests: 2,
            panics: 1,
            shed: 4,
            timeout_config_errors: 3,
            accept_errors: 6,
            open_connections: 12,
            keepalive_reuse: 9,
            idle_closed: 8,
            store_poisoned: false,
            trace_counters: vec![("serve.request".into(), 7)],
            pager: strudel_repo::PagerStats {
                hits: 11,
                misses: 5,
                evictions: 2,
                pins: 16,
                writebacks: 2,
                pool_pages: 8,
                resident: 6,
            },
        };
        let text = stats.to_text();
        assert!(text.contains("strudel_requests_total 1"));
        assert!(text.contains("strudel_slow_requests_total 2"));
        assert!(text.contains("strudel_panics_total 1"));
        assert!(text.contains("strudel_shed_total 4"));
        assert!(text.contains("strudel_timeout_config_errors_total 3"));
        assert!(text.contains("strudel_accept_errors_total 6"));
        assert!(text.contains("strudel_open_connections 12"));
        assert!(text.contains("strudel_keepalive_reuse_total 9"));
        assert!(text.contains("strudel_idle_closed_total 8"));
        assert!(text.contains("strudel_store_poisoned 0"));
        assert!(text.contains("strudel_trace_counter{name=\"serve.request\"} 7"));
        assert!(text.contains("strudel_route_requests_total{route=\"front\"} 1"));
        assert!(text.contains("strudel_html_cache_hit_rate 0.7500"));
        assert!(text.contains("strudel_html_cache_published_hits_total 2"));
        assert!(text.contains("strudel_html_cache_published_entries 1"));
        assert!(text.contains("strudel_html_cache_promotions_total 1"));
        assert!(text.contains("strudel_request_latency_us{quantile=\"0.5\"} 50"));
        assert!(text.contains("strudel_request_latency_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("strudel_request_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("strudel_request_latency_us_sum 42"));
        assert!(text.contains("strudel_request_latency_us_count 1"));
        assert!(text.contains("strudel_pager_hits_total 11"));
        assert!(text.contains("strudel_pager_misses_total 5"));
        assert!(text.contains("strudel_pager_evictions_total 2"));
        assert!(text.contains("strudel_pager_pins_total 16"));
        assert!(text.contains("strudel_pager_writebacks_total 2"));
        assert!(text.contains("strudel_pager_pool_pages 8"));
        assert!(text.contains("strudel_pager_resident_pages 6"));
        assert!(text.contains("strudel_diff_pages_updated_total 5"));
        assert!(text.contains("strudel_diff_fallbacks_total 1"));
        assert!(text.contains("strudel_diff_rows_added_total 9"));
        assert!(text.contains("strudel_diff_rows_retracted_total 4"));
    }

    #[test]
    fn overflow_samples_surface_as_inf_bucket_in_exposition() {
        let m = ServerMetrics::new();
        m.record("slow", 20_000_000); // 20 s: past the 10 s ladder top
        let stats = ServerStats {
            total: m.totals(),
            latency_buckets: m.total_latency_buckets(),
            latency_sum_us: m.total_latency_sum_us(),
            routes: m.snapshot(),
            html_cache: CacheSnapshot::default(),
            engine: Default::default(),
            epoch: 0,
            slow_requests: 0,
            panics: 0,
            shed: 0,
            timeout_config_errors: 0,
            accept_errors: 0,
            open_connections: 0,
            keepalive_reuse: 0,
            idle_closed: 0,
            store_poisoned: false,
            trace_counters: Vec::new(),
            pager: Default::default(),
        };
        let text = stats.to_text();
        assert!(text.contains("strudel_request_latency_us_bucket{le=\"10000000\"} 0"));
        assert!(text.contains("strudel_request_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(
            !text.contains(&u64::MAX.to_string()),
            "no fictitious u64::MAX bound anywhere in the exposition:\n{text}"
        );
    }
}
