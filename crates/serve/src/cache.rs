//! The rendered-page cache: sharded, epoch-fenced, delta-invalidated.
//!
//! Keys are [`PageKey`]s; values are finished HTML plus the page's
//! *dependency set* — the other pages whose content was read while
//! rendering (link text and sort keys come from child pages). Delta
//! invalidation therefore evicts a page when the delta dirtied **it or
//! any of its dependencies**: editing an article's title must evict the
//! section page whose story list shows that title, even though the
//! section's own incremental queries are untouched.
//!
//! Inserts carry the engine epoch they were rendered under and are
//! dropped if a delta landed in between (same fencing protocol as the
//! engine's page-view cache).

use crate::metrics::CacheSnapshot;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use strudel_schema::dynamic::PageKey;
use strudel_schema::invalidate::DirtySet;

/// One cached rendition.
#[derive(Clone, Debug)]
pub struct CachedPage {
    /// The finished HTML.
    pub html: Arc<str>,
    /// Pages whose content this rendition read (children shown by link
    /// text or sort key).
    pub deps: Arc<[PageKey]>,
}

const SHARDS: usize = 16;

/// A concurrent rendered-HTML cache.
#[derive(Debug)]
pub struct HtmlCache {
    shards: Vec<RwLock<HashMap<PageKey, CachedPage>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for HtmlCache {
    fn default() -> Self {
        HtmlCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl HtmlCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, key: &PageKey) -> &RwLock<HashMap<PageKey, CachedPage>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: &PageKey) -> Option<CachedPage> {
        match self.shard_of(key).read().unwrap().get(key) {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a rendition unless `still_current` reports that a delta
    /// landed since it was computed (checked under the shard lock).
    pub fn insert_if(
        &self,
        key: PageKey,
        page: CachedPage,
        still_current: impl FnOnce() -> bool,
    ) {
        let mut shard = self.shard_of(&key).write().unwrap();
        if still_current() {
            shard.insert(key, page);
        }
    }

    /// Evicts every page the delta dirtied, directly or through its
    /// dependency set. Returns the eviction count.
    pub fn invalidate(&self, dirty: &DirtySet) -> usize {
        if dirty.is_empty() {
            return 0;
        }
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            let before = map.len();
            map.retain(|key, page| {
                !dirty.contains(key) && !page.deps.iter().any(|d| dirty.contains(d))
            });
            evicted += before - map.len();
        }
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Drops everything.
    pub fn clear(&self) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            evicted += map.len();
            map.clear();
        }
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sym: &str) -> PageKey {
        PageKey {
            symbol: sym.into(),
            args: vec![],
        }
    }

    fn page(deps: Vec<PageKey>) -> CachedPage {
        CachedPage {
            html: "<html/>".into(),
            deps: deps.into(),
        }
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let c = HtmlCache::new();
        assert!(c.get(&key("A")).is_none());
        c.insert_if(key("A"), page(vec![]), || true);
        assert!(c.get(&key("A")).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn stale_insert_is_dropped() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || false);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_follows_dependencies() {
        let c = HtmlCache::new();
        // Section depends on article; front depends on section.
        c.insert_if(key("Article"), page(vec![]), || true);
        c.insert_if(key("Section"), page(vec![key("Article")]), || true);
        c.insert_if(key("Other"), page(vec![]), || true);
        let mut dirty = DirtySet::default();
        dirty.pages.insert(key("Article"));
        let evicted = c.invalidate(&dirty);
        assert_eq!(evicted, 2, "article + dependent section");
        assert!(c.get(&key("Other")).is_some(), "untouched page survives");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn wholesale_symbol_dirt_evicts_dependents_too() {
        let c = HtmlCache::new();
        c.insert_if(
            key("Front"),
            page(vec![PageKey {
                symbol: "Article".into(),
                args: vec![],
            }]),
            || true,
        );
        let mut dirty = DirtySet::default();
        dirty.symbols.insert("Article".into());
        assert_eq!(c.invalidate(&dirty), 1);
    }
}
