//! The rendered-page cache: sharded, epoch-fenced, delta-invalidated,
//! with an RCU-published warm-click fast path.
//!
//! Keys are [`PageKey`]s; values are finished HTML plus the page's
//! *dependency set* — the other pages whose content was read while
//! rendering (link text and sort keys come from child pages). Delta
//! invalidation therefore evicts a page when the delta dirtied **it or
//! any of its dependencies**: editing an article's title must evict the
//! section page whose story list shows that title, even though the
//! section's own incremental queries are untouched.
//!
//! Inserts carry the engine epoch they were rendered under and are
//! dropped if a delta landed in between (same fencing protocol as the
//! engine's page-view cache).
//!
//! ## Two tiers
//!
//! The authoritative tier is 16 `RwLock`-sharded maps. Above it sits an
//! epoch-published snapshot ([`crate::rcu::Published`]) of the whole
//! map: a *warm click* that hits the published tier takes **no lock at
//! all** — one atomic load and a thread-local pointer. Renders insert
//! into the locked tier; once enough inserts accumulate the owner
//! *promotes* a fresh immutable snapshot ([`HtmlCache::promote_if`],
//! epoch-fenced like inserts). Delta invalidation evicts from the locked
//! tier and republishes immediately, so the published tier never serves
//! a dirtied page once [`HtmlCache::invalidate`] returns.

use crate::metrics::CacheSnapshot;
use crate::rcu::Published;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use strudel_schema::dynamic::PageKey;
use strudel_schema::invalidate::DirtySet;

/// One cached rendition.
#[derive(Clone, Debug)]
pub struct CachedPage {
    /// The finished HTML.
    pub html: Arc<str>,
    /// Pages whose content this rendition read (children shown by link
    /// text or sort key).
    pub deps: Arc<[PageKey]>,
}

const SHARDS: usize = 16;

/// Locked-tier inserts since the last promotion that trigger one.
pub const PROMOTE_EVERY: u64 = 16;

/// A concurrent rendered-HTML cache.
#[derive(Debug)]
pub struct HtmlCache {
    shards: Vec<RwLock<HashMap<PageKey, CachedPage>>>,
    /// The lock-free read tier: an immutable snapshot of the shard maps.
    published: Published<HashMap<PageKey, CachedPage>>,
    /// Serializes snapshot-building (promotions and invalidations), so a
    /// promotion can never capture a half-invalidated map and publish it
    /// after the invalidation's own republish.
    promote_lock: Mutex<()>,
    /// Locked-tier inserts since the last promotion.
    pending: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    published_hits: AtomicU64,
    promotions: AtomicU64,
}

impl Default for HtmlCache {
    fn default() -> Self {
        HtmlCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            published: Published::new(Arc::new(HashMap::new())),
            promote_lock: Mutex::new(()),
            pending: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            published_hits: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }
}

impl HtmlCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, key: &PageKey) -> &RwLock<HashMap<PageKey, CachedPage>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks `key` up, counting the hit or miss. The published snapshot
    /// is consulted first — that path takes no lock.
    pub fn get(&self, key: &PageKey) -> Option<CachedPage> {
        if let Some(p) = self.published.read().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.published_hits.fetch_add(1, Ordering::Relaxed);
            return Some(p.clone());
        }
        match self.shard_of(key).read().unwrap().get(key) {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a rendition unless `still_current` reports that a delta
    /// landed since it was computed (checked under the shard lock).
    pub fn insert_if(
        &self,
        key: PageKey,
        page: CachedPage,
        still_current: impl FnOnce() -> bool,
    ) {
        let mut shard = self.shard_of(&key).write().unwrap();
        if still_current() {
            shard.insert(key, page);
            self.pending.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether enough inserts accumulated that the owner should
    /// [`HtmlCache::promote_if`] a fresh snapshot.
    pub fn needs_promotion(&self) -> bool {
        self.pending.load(Ordering::Relaxed) >= PROMOTE_EVERY
    }

    /// Publishes an immutable snapshot of the locked tier, making every
    /// currently cached page servable lock-free. `still_current` is the
    /// same epoch fence as [`HtmlCache::insert_if`]: when it reports a
    /// delta landed since the caller read its epoch, the stale snapshot
    /// is discarded instead of published. Returns whether it published.
    pub fn promote_if(&self, still_current: impl FnOnce() -> bool) -> bool {
        let _serialize = self.promote_lock.lock().unwrap();
        let snapshot = self.collect_snapshot();
        self.pending.store(0, Ordering::Relaxed);
        let published = self.published.publish_if(Arc::new(snapshot), still_current);
        if published {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
        published
    }

    fn collect_snapshot(&self) -> HashMap<PageKey, CachedPage> {
        let mut map = HashMap::with_capacity(self.len());
        for shard in &self.shards {
            for (k, v) in shard.read().unwrap().iter() {
                map.insert(k.clone(), v.clone());
            }
        }
        map
    }

    /// Evicts every page the delta dirtied, directly or through its
    /// dependency set, then republishes the lock-free snapshot so the
    /// published tier stops serving the dirtied pages before this
    /// returns. Returns the eviction count.
    pub fn invalidate(&self, dirty: &DirtySet) -> usize {
        if dirty.is_empty() {
            return 0;
        }
        let _serialize = self.promote_lock.lock().unwrap();
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            let before = map.len();
            map.retain(|key, page| {
                !dirty.contains(key) && !page.deps.iter().any(|d| dirty.contains(d))
            });
            evicted += before - map.len();
        }
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        self.published.publish(Arc::new(self.collect_snapshot()));
        evicted
    }

    /// Drops everything, including the published snapshot.
    pub fn clear(&self) -> usize {
        let _serialize = self.promote_lock.lock().unwrap();
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            evicted += map.len();
            map.clear();
        }
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        self.published.publish(Arc::new(HashMap::new()));
        evicted
    }

    /// Number of cached pages (locked tier; the published snapshot is a
    /// subset of it).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pages currently servable from the lock-free published snapshot.
    pub fn published_len(&self) -> usize {
        self.published.read().len()
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            published_hits: self.published_hits.load(Ordering::Relaxed),
            published_entries: self.published_len() as u64,
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sym: &str) -> PageKey {
        PageKey {
            symbol: sym.into(),
            args: vec![],
        }
    }

    fn page(deps: Vec<PageKey>) -> CachedPage {
        CachedPage {
            html: "<html/>".into(),
            deps: deps.into(),
        }
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let c = HtmlCache::new();
        assert!(c.get(&key("A")).is_none());
        c.insert_if(key("A"), page(vec![]), || true);
        assert!(c.get(&key("A")).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn stale_insert_is_dropped() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || false);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_follows_dependencies() {
        let c = HtmlCache::new();
        // Section depends on article; front depends on section.
        c.insert_if(key("Article"), page(vec![]), || true);
        c.insert_if(key("Section"), page(vec![key("Article")]), || true);
        c.insert_if(key("Other"), page(vec![]), || true);
        let mut dirty = DirtySet::default();
        dirty.pages.insert(key("Article"));
        let evicted = c.invalidate(&dirty);
        assert_eq!(evicted, 2, "article + dependent section");
        assert!(c.get(&key("Other")).is_some(), "untouched page survives");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn wholesale_symbol_dirt_evicts_dependents_too() {
        let c = HtmlCache::new();
        c.insert_if(
            key("Front"),
            page(vec![PageKey {
                symbol: "Article".into(),
                args: vec![],
            }]),
            || true,
        );
        let mut dirty = DirtySet::default();
        dirty.symbols.insert("Article".into());
        assert_eq!(c.invalidate(&dirty), 1);
    }

    #[test]
    fn promotion_publishes_the_lock_free_tier() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || true);
        assert_eq!(c.published_len(), 0, "nothing published before promotion");
        assert!(c.promote_if(|| true));
        assert_eq!(c.published_len(), 1);
        assert!(c.get(&key("A")).is_some());
        let s = c.stats();
        assert_eq!(s.published_hits, 1, "served from the published tier");
        assert_eq!(s.promotions, 1);
    }

    #[test]
    fn stale_promotion_is_discarded() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || true);
        assert!(!c.promote_if(|| false), "a delta landed: snapshot dropped");
        assert_eq!(c.published_len(), 0);
    }

    #[test]
    fn invalidate_republishes_without_the_dirty_page() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || true);
        c.insert_if(key("B"), page(vec![]), || true);
        assert!(c.promote_if(|| true));
        assert_eq!(c.published_len(), 2);
        let mut dirty = DirtySet::default();
        dirty.pages.insert(key("A"));
        c.invalidate(&dirty);
        assert_eq!(c.published_len(), 1, "published tier re-cut immediately");
        assert!(c.get(&key("A")).is_none());
        assert!(c.get(&key("B")).is_some());
    }

    #[test]
    fn needs_promotion_after_enough_inserts() {
        let c = HtmlCache::new();
        for i in 0..PROMOTE_EVERY {
            assert!(!c.needs_promotion());
            c.insert_if(key(&format!("P{i}")), page(vec![]), || true);
        }
        assert!(c.needs_promotion());
        assert!(c.promote_if(|| true));
        assert!(!c.needs_promotion(), "promotion resets the insert counter");
        assert_eq!(c.published_len(), PROMOTE_EVERY as usize);
    }

    #[test]
    fn clear_empties_the_published_tier_too() {
        let c = HtmlCache::new();
        c.insert_if(key("A"), page(vec![]), || true);
        c.promote_if(|| true);
        assert_eq!(c.clear(), 1);
        assert_eq!(c.published_len(), 0);
        assert!(c.get(&key("A")).is_none());
    }
}
