//! Sharded epoch-snapshot serving: N per-core service shards behind one
//! front.
//!
//! A [`ShardedService`] owns `n` independent [`SiteService`]s. Every
//! request path is routed to one shard by a stable FNV-1a hash of the
//! path ([`crate::router::shard_of_path`]) — the same page always lands
//! on the same shard, across restarts and deltas. Each shard owns its
//! *own* click-time engine (page-view cache + compiled-guard cache) and
//! its own HTML cache with an RCU-published warm-click snapshot, so
//! shards share **no mutable state** on the read path: a warm click
//! touches only its shard's published pointer — no lock, no cross-core
//! cache-line bouncing. This is the share-nothing horizontal-scaling
//! shape the ROADMAP's cross-process consistent-hash router extends.
//!
//! Writes are the opposite: a single writer serializes every
//! [`GraphDelta`] and broadcasts it to all shards, returning only after
//! the last shard has swapped its snapshot — the *epoch barrier*. The
//! optional paged store commits each delta once, durably, before any
//! shard applies it. During the broadcast a shard is either entirely
//! pre-delta or entirely post-delta (each shard's own apply is atomic
//! with respect to its readers), so every response is a consistent
//! rendering of one epoch — never a mix — and once `apply_delta`
//! returns, all shards serve the new epoch.
//!
//! `/metrics` is answered at the front: aggregated totals in the same
//! `strudel_*` rows an unsharded server emits, plus per-shard
//! `strudel_shard_*` rows.

use crate::metrics::{CacheSnapshot, ServerMetrics};
use crate::{
    router, Response, ServeError, ServiceInvalidation, SiteService, WarmupReport,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use strudel_graph::GraphDelta;
use strudel_repo::Database;
use strudel_schema::dynamic::{Metrics, Mode, PageKey};
use strudel_struql::{par, Parallelism, Program};
use strudel_template::TemplateSet;

/// The result of broadcasting one delta to every shard.
#[derive(Clone, Debug)]
pub struct ShardedInvalidation {
    /// Per-shard outcomes, in shard order. A shard that failed mid-apply
    /// and was rebuilt contributes a default (empty) outcome.
    pub shards: Vec<ServiceInvalidation>,
    /// Shards that failed (error or panic) after the store and the
    /// shard-0 gate committed, and were rebuilt wholesale from shard 0's
    /// post-delta snapshot instead of diverging an epoch behind.
    pub rebuilt_shards: Vec<usize>,
}

impl ShardedInvalidation {
    /// HTML-cache entries evicted across all shards.
    pub fn html_evicted(&self) -> usize {
        self.shards.iter().map(|s| s.html_evicted).sum()
    }

    /// Cached page views maintained in place across all shards.
    pub fn updated(&self) -> usize {
        self.shards.iter().map(|s| s.engine.updated).sum()
    }

    /// Cached page views evicted across all shards.
    pub fn evicted(&self) -> usize {
        self.shards.iter().map(|s| s.engine.evicted).sum()
    }
}

/// N per-core service shards behind one hash-routing front (see module
/// docs). All methods take `&self`; wrap it in an [`Arc`] and hand it to
/// [`crate::serve`].
pub struct ShardedService {
    shards: Vec<SiteService>,
    /// Pre-built front route labels (`shard/0`…), so routing a request
    /// never allocates a label.
    shard_routes: Vec<String>,
    /// Front metrics: per-shard request counts and latency, plus the
    /// front-answered routes.
    metrics: ServerMetrics,
    /// The single delta writer.
    writer: Mutex<()>,
    /// Deltas visible on *all* shards (bumped after the epoch barrier).
    deltas: AtomicU64,
    /// Optional durable paged store, committed once per delta before any
    /// shard applies it.
    store: Option<strudel_repo::PagedRepo>,
}

impl ShardedService {
    /// Builds `shards` independent services from loose parts. Every
    /// shard starts from the same database snapshot (an `Arc` clone, not
    /// a copy) and compiles its own guard cache.
    pub fn from_parts(
        db: Arc<Database>,
        program: &Program,
        templates: TemplateSet,
        root_collection: &str,
        mode: Mode,
        shards: usize,
    ) -> Self {
        let n = shards.max(1);
        let shards: Vec<SiteService> = (0..n)
            .map(|_| {
                SiteService::from_parts(db.clone(), program, templates.clone(), root_collection, mode)
            })
            .collect();
        ShardedService {
            shard_routes: (0..n).map(|i| format!("shard/{i}")).collect(),
            shards,
            metrics: ServerMetrics::new(),
            writer: Mutex::new(()),
            deltas: AtomicU64::new(0),
            store: None,
        }
    }

    /// Builds a sharded service from a built [`strudel::Site`].
    pub fn new(site: &strudel::Site, mode: Mode, shards: usize) -> Self {
        Self::from_parts(
            site.database.clone(),
            &site.program,
            site.templates.clone(),
            &site.root_collection,
            mode,
            shards,
        )
    }

    /// Attaches a paged store the delta writer keeps write-through
    /// consistent: each delta commits durably exactly once, before any
    /// shard's in-memory snapshot swaps.
    pub fn with_paged_store(mut self, store: strudel_repo::PagedRepo) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets every shard's per-guard worker budget.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_parallelism(parallelism))
            .collect();
        self
    }

    /// Sets every shard's slow-request threshold (builder form).
    pub fn with_slow_threshold_us(self, us: u64) -> Self {
        for s in &self.shards {
            s.set_slow_threshold_us(us);
        }
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a request path routes to.
    pub fn shard_for(&self, path: &str) -> usize {
        let routed = path.split('?').next().unwrap_or(path);
        router::shard_of_path(routed, self.shards.len())
    }

    /// One shard, for tests and aggregation.
    pub fn shard(&self, i: usize) -> &SiteService {
        &self.shards[i]
    }

    /// The stable URL of a page (all shards agree; asks shard 0).
    pub fn url_of(&self, key: &PageKey) -> String {
        self.shards[0].url_of(key)
    }

    /// Deltas visible on every shard (the barrier epoch).
    pub fn delta_epoch(&self) -> u64 {
        self.deltas.load(Ordering::Acquire)
    }

    /// Serves one request path. `/metrics` and `/debug/trace` are
    /// answered at the front (they aggregate across shards); everything
    /// else routes to its owner shard by path hash.
    pub fn handle(&self, path: &str) -> Response {
        let start = Instant::now();
        let routed = path.split('?').next().unwrap_or(path);
        let (route, response) = match routed {
            "/metrics" => ("metrics", Response::text(self.stats_text())),
            "/healthz" => ("healthz", Response::text("ok\n".into())),
            // Readiness is answered at the front: the store lives here,
            // not on the shards, so only the front sees its poisoning.
            "/readyz" => ("readyz", self.readyz_response()),
            "/debug/trace" => ("debug/trace", Response::text(self.debug_trace_text())),
            _ => {
                let idx = router::shard_of_path(routed, self.shards.len());
                let response = self.shards[idx].handle(path);
                (self.shard_routes[idx].as_str(), response)
            }
        };
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.record(route, us);
        response
    }

    /// Pre-renders every reachable page into its *owner shard's* cache —
    /// each page is rendered once, on the shard that will serve it, then
    /// every shard publishes its warm-click snapshot. BFS level by level
    /// from the roots, fanned across `parallelism` workers.
    pub fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        let start = Instant::now();
        let n = self.shards.len();
        let first = &self.shards[0];
        let mut frontier: Vec<PageKey> = first.engine().roots(first.root_collection())?;
        let mut seen: HashSet<PageKey> = frontier.iter().cloned().collect();
        let mut pages = 0usize;
        let mut levels = 0usize;
        while !frontier.is_empty() {
            let rendered = par::map_chunks(frontier, parallelism.workers(), |chunk| {
                chunk
                    .into_iter()
                    .map(|key| {
                        let idx = router::shard_of_path(&self.url_of(&key), n);
                        self.shards[idx]
                            .render_into_cache(&key)
                            .map(|page| (key, page))
                    })
                    .collect()
            })?;
            levels += 1;
            let mut next = Vec::new();
            for (_key, page) in &rendered {
                for dep in page.deps.iter() {
                    if seen.insert(dep.clone()) {
                        next.push(dep.clone());
                    }
                }
                pages += 1;
            }
            frontier = next;
        }
        for s in &self.shards {
            let epoch = s.engine().epoch();
            s.cache().promote_if(|| s.engine().epoch() == epoch);
        }
        Ok(WarmupReport {
            pages,
            levels,
            elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }

    /// Broadcasts one delta to every shard: the single writer commits it
    /// durably once (if a store is attached), validates it on shard 0,
    /// then applies it to the remaining shards in parallel and returns
    /// only after **all** shards have swapped — the epoch barrier. Any
    /// click served during the broadcast sees one shard's snapshot,
    /// entirely pre- or entirely post-delta; after this returns, every
    /// shard serves the new epoch.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<ShardedInvalidation, ServeError> {
        // The poisoned-lock guard carries no state; a predecessor that
        // panicked mid-broadcast was already repaired below, so later
        // deltas must proceed.
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(store) = &self.store {
            store.apply_delta(delta)?;
        }
        // Shard 0 is the validation gate: deltas are deterministic over
        // identical graphs, so a delta that applies here applies
        // everywhere — an invalid one is rejected before any other
        // shard (or any reader) sees it.
        let first = self.shards[0].apply_delta(delta)?;
        let mut outcomes = vec![first];
        let mut rebuilt_shards = Vec::new();
        if self.shards.len() > 1 {
            let rest: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = self.shards[1..]
                    .iter()
                    .map(|s| scope.spawn(move || s.apply_delta(delta)))
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            for (i, r) in rest.into_iter().enumerate() {
                match r {
                    Ok(Ok(outcome)) => outcomes.push(outcome),
                    // Past the gate the delta is committed — the store
                    // and shard 0 already advanced, so a shard that
                    // errors or panics here must not strand the barrier
                    // an epoch behind (its replies would mix epochs with
                    // its siblings'). Rebuild it wholesale from shard
                    // 0's post-delta snapshot and carry on.
                    Ok(Err(_)) | Err(_) => {
                        let idx = i + 1;
                        self.shards[idx].resync_from(&self.shards[0]);
                        outcomes.push(ServiceInvalidation {
                            engine: Default::default(),
                            html_evicted: 0,
                        });
                        rebuilt_shards.push(idx);
                    }
                }
            }
        }
        self.deltas.fetch_add(1, Ordering::Release);
        Ok(ShardedInvalidation {
            shards: outcomes,
            rebuilt_shards,
        })
    }

    /// Whether an earlier write failure poisoned the attached store.
    pub fn store_poisoned(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.is_poisoned())
    }

    fn readyz_response(&self) -> Response {
        if self.store_poisoned() {
            let mut r = Response::text("store poisoned\n".into());
            r.status = 503;
            r
        } else {
            Response::text("ready\n".into())
        }
    }

    /// Aggregated stats in the unsharded [`crate::ServerStats`] shape:
    /// front request totals/latency, summed cache and engine counters.
    pub fn stats(&self) -> crate::ServerStats {
        let trace_counters = if strudel_trace::enabled() {
            strudel_trace::snapshot().counters
        } else {
            Vec::new()
        };
        let mut html_cache = CacheSnapshot::default();
        let mut engine = Metrics::default();
        let mut slow_requests = 0;
        let mut panics = 0;
        let mut shed = 0;
        let mut timeout_config_errors = 0;
        let mut accept_errors = 0;
        let mut open_connections = 0;
        let mut keepalive_reuse = 0;
        let mut idle_closed = 0;
        for s in &self.shards {
            sum_cache(&mut html_cache, s.cache().stats());
            sum_engine(&mut engine, s.engine().metrics());
            slow_requests += s.slow_requests_total();
            panics += s.panics_total();
            shed += s.shed_total();
            timeout_config_errors += s.timeout_config_errors_total();
            accept_errors += s.accept_errors_total();
            open_connections += s.open_connections();
            keepalive_reuse += s.keepalive_reuse_total();
            idle_closed += s.idle_closed_total();
        }
        crate::ServerStats {
            total: self.metrics.totals(),
            latency_buckets: self.metrics.total_latency_buckets(),
            latency_sum_us: self.metrics.total_latency_sum_us(),
            routes: self.metrics.snapshot(),
            html_cache,
            engine,
            epoch: self.delta_epoch(),
            slow_requests,
            panics,
            shed,
            timeout_config_errors,
            accept_errors,
            open_connections,
            keepalive_reuse,
            idle_closed,
            store_poisoned: self.store_poisoned(),
            trace_counters,
            pager: strudel_repo::pager::global_stats(),
        }
    }

    /// The `/metrics` body: the aggregated `strudel_*` rows an unsharded
    /// server emits, followed by per-shard `strudel_shard_*` rows.
    pub fn stats_text(&self) -> String {
        use std::fmt::Write;
        let mut out = self.stats().to_text();
        let routes = self.metrics.snapshot();
        let _ = writeln!(out, "strudel_shards {}", self.shards.len());
        for (i, s) in self.shards.iter().enumerate() {
            let front = routes.iter().find(|r| r.route == self.shard_routes[i]);
            let (requests, p99) = front.map_or((0, 0), |r| (r.requests, r.p99_us));
            let cache = s.cache().stats();
            let _ = writeln!(out, "strudel_shard_requests_total{{shard=\"{i}\"}} {requests}");
            let _ = writeln!(
                out,
                "strudel_shard_latency_us{{shard=\"{i}\",quantile=\"0.99\"}} {p99}"
            );
            let _ = writeln!(
                out,
                "strudel_shard_epoch{{shard=\"{i}\"}} {}",
                s.engine().epoch()
            );
            let _ = writeln!(
                out,
                "strudel_shard_html_cache_entries{{shard=\"{i}\"}} {}",
                cache.entries
            );
            let _ = writeln!(
                out,
                "strudel_shard_published_entries{{shard=\"{i}\"}} {}",
                cache.published_entries
            );
            let _ = writeln!(
                out,
                "strudel_shard_published_hits_total{{shard=\"{i}\"}} {}",
                cache.published_hits
            );
        }
        out
    }

    /// The `/debug/trace` body: the global trace snapshot once, then
    /// every shard's slow-request log.
    pub fn debug_trace_text(&self) -> String {
        use std::fmt::Write;
        let mut out = strudel_trace::snapshot().render_text();
        for (i, s) in self.shards.iter().enumerate() {
            let slow = s.slow_requests();
            let _ = write!(
                out,
                "\n# shard {i} slow requests (threshold={}us, total={}, showing {})\n",
                s.slow_threshold_us(),
                s.slow_requests_total(),
                slow.len()
            );
            for r in &slow {
                let _ = writeln!(out, "[{}] {} {}us {}", r.trace_id, r.status, r.us, r.path);
            }
        }
        out
    }
}

fn sum_cache(total: &mut CacheSnapshot, s: CacheSnapshot) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.published_hits += s.published_hits;
    total.published_entries += s.published_entries;
    total.promotions += s.promotions;
}

fn sum_engine(total: &mut Metrics, s: Metrics) {
    total.clicks += s.clicks;
    total.queries_run += s.queries_run;
    total.rows_produced += s.rows_produced;
    total.cache_hits += s.cache_hits;
    total.evictions += s.evictions;
    total.plan_cache_hits += s.plan_cache_hits;
    total.plan_cache_misses += s.plan_cache_misses;
    total.diff_pages_updated += s.diff_pages_updated;
    total.diff_fallbacks += s.diff_fallbacks;
    total.diff_rows_added += s.diff_rows_added;
    total.diff_rows_retracted += s.diff_rows_retracted;
}
