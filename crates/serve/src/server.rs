//! The HTTP front end: two interchangeable transports over a shared
//! click service — one [`SiteService`] or a [`ShardedService`].
//!
//! [`Transport::Threads`] (the default, and the portable baseline) is a
//! plain-`std::net` thread pool: one accept thread feeds accepted
//! connections into a *bounded* `mpsc` channel; `workers` threads drain
//! it, each parsing a minimal `GET`/`HEAD` request through the shared
//! [`crate::proto`] grammar, dispatching into the service, and writing
//! exactly one response (`Connection: close`). [`Transport::Epoll`]
//! (Linux) is the event-driven keep-alive reactor in [`crate::event`]:
//! thousands of idle connections cost one fd each, not a thread each.
//! Both transports serve byte-identical bodies — they share the parser,
//! the status responses, and the response encoder.
//!
//! Common semantics, either transport:
//!
//! * When every worker is busy and the backlog is full, new work sheds
//!   with a `503` + `Retry-After` instead of queueing unbounded
//!   ([`ServerConfig::max_backlog`]).
//! * A panic escaping a handler is caught — the request answers 500 and
//!   the worker keeps serving.
//! * Total request-head bytes are capped ([`MAX_REQUEST_BYTES`]) — an
//!   endless request line or header block answers `431`.
//! * A client that stalls mid-request is answered `408` (or dropped),
//!   never dispatched with unread bytes on the socket.
//! * Persistent `accept` failures (an EMFILE storm, say) back off and
//!   count on `/metrics` instead of busy-spinning the accept path.
//!
//! Shutdown is graceful: a flag flips, a loopback self-connection wakes
//! the accept path, and every in-flight request drains before the
//! threads join.
//!
//! [`ShardedService`]: crate::ShardedService

use crate::proto::{self, ParseOutcome};
use crate::{Response, ServeError, SiteService, WarmupReport};
use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use strudel_struql::Parallelism;

/// Upper bound on total request bytes read per connection (request line
/// plus headers). A request that exceeds it answers
/// `431 Request Header Fields Too Large`.
pub const MAX_REQUEST_BYTES: u64 = 16 * 1024;

/// How long the accept path sleeps after a failed `accept` before
/// retrying, so a persistent error (EMFILE, ENFILE) cannot busy-spin a
/// core while it lasts.
pub const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);

/// What the transport needs from a service: request dispatch, optional
/// pre-warming, and failure-mode counters. Implemented by
/// [`SiteService`] (one engine) and [`crate::ShardedService`] (N
/// hash-routed engines) — the transport is identical over either.
pub trait ClickService: Send + Sync + 'static {
    /// Serves one request path.
    fn handle(&self, path: &str) -> Response;
    /// Pre-renders every reachable page before accepting traffic.
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError>;
    /// Records a panic caught by the transport's worker backstop.
    fn note_panic(&self);
    /// Records a connection shed by the full backlog.
    fn note_shed(&self);
    /// Records a failed socket-timeout setup.
    fn note_timeout_config_error(&self, err: &std::io::Error);
    /// Records a failed `accept`.
    fn note_accept_error(&self);
    /// Records a connection opened (the `strudel_open_connections`
    /// gauge increments).
    fn note_conn_opened(&self);
    /// Records a connection closed (the gauge decrements).
    fn note_conn_closed(&self);
    /// Records a request served on an already-used connection
    /// (keep-alive reuse; only the epoll transport reuses).
    fn note_keepalive_reuse(&self);
    /// Records a keep-alive connection closed by the idle deadline.
    fn note_idle_closed(&self);
}

impl ClickService for SiteService {
    fn handle(&self, path: &str) -> Response {
        SiteService::handle(self, path)
    }
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        SiteService::warm(self, parallelism)
    }
    fn note_panic(&self) {
        SiteService::note_panic(self)
    }
    fn note_shed(&self) {
        SiteService::note_shed(self)
    }
    fn note_timeout_config_error(&self, err: &std::io::Error) {
        SiteService::note_timeout_config_error(self, err)
    }
    fn note_accept_error(&self) {
        SiteService::note_accept_error(self)
    }
    fn note_conn_opened(&self) {
        SiteService::note_conn_opened(self)
    }
    fn note_conn_closed(&self) {
        SiteService::note_conn_closed(self)
    }
    fn note_keepalive_reuse(&self) {
        SiteService::note_keepalive_reuse(self)
    }
    fn note_idle_closed(&self) {
        SiteService::note_idle_closed(self)
    }
}

impl ClickService for crate::ShardedService {
    fn handle(&self, path: &str) -> Response {
        crate::ShardedService::handle(self, path)
    }
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        crate::ShardedService::warm(self, parallelism)
    }
    // Transport-level failures have no owning shard; account them on
    // shard 0, whose counters the aggregated stats sum like any other.
    fn note_panic(&self) {
        self.shard(0).note_panic()
    }
    fn note_shed(&self) {
        self.shard(0).note_shed()
    }
    fn note_timeout_config_error(&self, err: &std::io::Error) {
        self.shard(0).note_timeout_config_error(err)
    }
    fn note_accept_error(&self) {
        self.shard(0).note_accept_error()
    }
    fn note_conn_opened(&self) {
        self.shard(0).note_conn_opened()
    }
    fn note_conn_closed(&self) {
        self.shard(0).note_conn_closed()
    }
    fn note_keepalive_reuse(&self) {
        self.shard(0).note_keepalive_reuse()
    }
    fn note_idle_closed(&self) {
        self.shard(0).note_idle_closed()
    }
}

/// Which HTTP front end carries the traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The portable blocking thread pool: one worker thread per
    /// in-flight connection, `Connection: close` on every response.
    /// The bench baseline.
    #[default]
    Threads,
    /// The event-driven epoll reactor ([`crate::event`], Linux only):
    /// HTTP/1.1 keep-alive, idle-connection deadlines, a render pool
    /// for dispatch — idle connections cost an fd, not a thread.
    Epoll,
}

impl Transport {
    /// Whether this transport can run on the current platform
    /// ([`Transport::Epoll`] requires Linux).
    pub fn is_supported(self) -> bool {
        match self {
            Transport::Threads => true,
            Transport::Epoll => strudel_epoll::supported(),
        }
    }
}

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests (the render pool, under the
    /// epoll transport).
    pub workers: usize,
    /// Per-request socket read/write timeout (threads transport), and
    /// the budget a reactor connection has to deliver a complete
    /// request head before it is answered `408` (epoll transport).
    pub timeout: Duration,
    /// Pre-render every reachable page into the HTML cache before
    /// accepting requests, across this many workers
    /// ([`SiteService::warm`]). `None` starts cold (pages render on
    /// first hit).
    pub warm: Option<Parallelism>,
    /// Accepted connections that may wait for a worker. When the backlog
    /// is full the accept path sheds new work with a `503` and a
    /// `Retry-After` header instead of queueing unbounded work.
    pub max_backlog: usize,
    /// The `Retry-After` value (seconds) sent on shed connections.
    pub retry_after_secs: u64,
    /// Which front end carries the traffic.
    pub transport: Transport,
    /// Epoll transport: how long a keep-alive connection may sit idle
    /// between requests before the reactor closes it.
    pub keepalive_timeout: Duration,
    /// Epoll transport: at this many open connections, new ones are
    /// shed with a `503` instead of registered.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            timeout: Duration::from_secs(10),
            warm: None,
            max_backlog: 1024,
            retry_after_secs: 1,
            transport: Transport::Threads,
            keepalive_timeout: Duration::from_secs(5),
            max_connections: 4096,
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub(crate) fn new(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        accept: JoinHandle<()>,
        workers: Vec<JoinHandle<()>>,
    ) -> Self {
        ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            workers,
        }
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept (or the reactor's epoll_wait)
            // with a throwaway connection. The listener may be bound to
            // an unspecified address (0.0.0.0 / ::), which is not
            // connectable — aim at loopback on the bound port instead,
            // and bound the wake so a filtered loopback can't turn
            // shutdown into a hang.
            let ip: IpAddr = if self.addr.ip().is_unspecified() {
                match self.addr {
                    SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
                }
            } else {
                self.addr.ip()
            };
            let wake = SocketAddr::new(ip, self.addr.port());
            let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts serving `service` per `config`. Returns once the socket is
/// bound and the worker pool (or reactor) is up.
pub fn serve<S: ClickService>(
    service: Arc<S>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;

    if let Some(parallelism) = config.warm {
        service
            .warm(parallelism)
            .map_err(|e| std::io::Error::other(format!("warmup failed: {e}")))?;
    }

    match config.transport {
        Transport::Threads => serve_threads(service, config, listener),
        Transport::Epoll => crate::event::serve_epoll(service, config, listener),
    }
}

fn serve_threads<S: ClickService>(
    service: Arc<S>,
    config: ServerConfig,
    listener: TcpListener,
) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.max_backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let timeout = config.timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("strudel-serve-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, never
                    // across a request.
                    let stream = rx.lock().unwrap().recv();
                    match stream {
                        Ok(stream) => {
                            service.note_conn_opened();
                            // Backstop for panics outside the service's own
                            // handler (request parsing, response writing): the
                            // connection drops but the worker survives.
                            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                handle_connection(stream, &*service, timeout)
                            }));
                            if caught.is_err() {
                                service.note_panic();
                            }
                            service.note_conn_closed();
                        }
                        Err(_) => break, // channel closed: shutting down
                    }
                })?,
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_service = Arc::clone(&service);
    let retry_after_secs = config.retry_after_secs;
    let accept = std::thread::Builder::new()
        .name("strudel-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => {
                        // A failed accept with nothing accepted —
                        // typically fd exhaustion. Count it and back
                        // off briefly: the error is persistent for as
                        // long as the cause lasts, and an instant retry
                        // would busy-spin this thread at 100% while
                        // delivering nothing.
                        accept_service.note_accept_error();
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                        continue;
                    }
                };
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Saturated: answer from the accept thread so the
                        // client learns to back off instead of queueing.
                        accept_service.note_shed();
                        shed_connection(stream, retry_after_secs);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            // tx drops here; workers drain the queue and exit.
        })?;

    Ok(ServerHandle::new(addr, stop, accept, workers))
}

/// What reading one request head off a blocking socket produced.
enum HeadRead {
    /// A complete head (possibly with pipelined bytes left unread — the
    /// thread transport answers one request per connection and closes).
    Request(proto::ParsedRequest),
    /// The head outgrew [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The client stalled mid-head (read timeout) with bytes already
    /// buffered: answer `408` rather than dispatching a half request.
    TimedOut,
    /// Nothing useful arrived (clean EOF, instant error): just close.
    Drop,
}

fn read_request_head(stream: &TcpStream) -> HeadRead {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut scratch = [0u8; 2048];
    loop {
        match proto::parse_request(&buf, MAX_REQUEST_BYTES as usize) {
            ParseOutcome::Complete { request, .. } => return HeadRead::Request(request),
            ParseOutcome::TooLarge => return HeadRead::TooLarge,
            ParseOutcome::Incomplete => {}
        }
        match (&mut (&*stream)).read(&mut scratch) {
            Ok(0) => return HeadRead::Drop, // EOF before a full head
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // The per-request socket timeout fired mid-head. The
                // old code dispatched whatever had parsed so far — with
                // the rest of the head still unread on the socket, the
                // response would race a TCP reset. Answer 408 instead.
                return if buf.is_empty() {
                    HeadRead::Drop
                } else {
                    HeadRead::TimedOut
                };
            }
            Err(_) => return HeadRead::Drop,
        }
    }
}

/// Parses one request and writes the service's response. Errors are
/// answered with a 400/408/431 where possible and otherwise dropped — a
/// broken client must never take a worker down.
fn handle_connection<S: ClickService>(stream: TcpStream, service: &S, timeout: Duration) {
    // A failed timeout setup means this connection could hold its worker
    // indefinitely. Serve it anyway, but never silently: the service logs
    // the first failure and counts every one.
    if let Err(e) = stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
    {
        service.note_timeout_config_error(&e);
    }
    let (response, head_only, must_drain) = match read_request_head(&stream) {
        HeadRead::Drop => return,
        HeadRead::TooLarge => (proto::response_431(MAX_REQUEST_BYTES), false, true),
        HeadRead::TimedOut => (proto::response_408(), false, true),
        HeadRead::Request(request) => {
            if request.method != "GET" && request.method != "HEAD" {
                (proto::response_405(), false, false)
            } else if request.path.is_empty() {
                (proto::response_400(), false, false)
            } else {
                (service.handle(&request.path), request.head_only(), false)
            }
        }
    };
    // The thread transport is strictly one request per connection: every
    // response closes, keeping it the clean connection-per-request
    // baseline next to the reactor's keep-alive.
    let bytes = proto::encode_response(&response, head_only, false, None);
    let mut stream = stream;
    if stream.write_all(&bytes).and_then(|()| stream.flush()).is_ok() && must_drain {
        // The client may still be mid-send; drain briefly so closing
        // with unread data doesn't RST the response away.
        drain_before_close(&mut stream, Duration::from_millis(100));
    }
}

/// Answers a connection the backlog has no room for: a `503` with a
/// `Retry-After` header, written from the accept thread under short
/// timeouts so a slow client cannot stall accepting.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let bytes =
        proto::encode_response(&proto::response_503(), false, false, Some(retry_after_secs));
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
    drain_before_close(&mut stream, Duration::from_millis(100));
}

/// Drains whatever request bytes arrived, until EOF or the deadline.
/// Closing with unread data makes TCP reset the connection, which would
/// discard the response sitting in the client's receive buffer — and one
/// 1024-byte read is not enough for a request larger than 1 KiB.
fn drain_before_close(stream: &mut TcpStream, max_wait: Duration) {
    let deadline = Instant::now() + max_wait;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut scratch = [0u8; 1024];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => break, // client closed its half: nothing left unread
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        if Instant::now() >= deadline {
            break;
        }
    }
}
