//! The HTTP front end: a plain-`std::net` thread pool over a shared
//! click service — one [`SiteService`] or a [`ShardedService`].
//!
//! One accept thread feeds accepted connections into a *bounded* `mpsc`
//! channel; `workers` threads drain it, each parsing a minimal `GET`
//! request, dispatching into the service, and writing the response.
//! When every worker is busy and the backlog is full, the accept thread
//! sheds the connection immediately with a `503` and a `Retry-After`
//! header instead of queueing unbounded work ([`ServerConfig::max_backlog`]).
//! A panic escaping a handler is caught — the request answers 500 and the
//! worker keeps serving. Per-request socket timeouts bound how long a
//! slow or stalled client can hold a worker, and total request bytes are
//! capped ([`MAX_REQUEST_BYTES`]) — an endless request line or header
//! block answers `431` instead of growing worker memory without bound.
//! Shutdown is graceful: a flag flips, a loopback self-connection wakes
//! the accept loop, the channel closes, and every worker drains its
//! in-flight request before exiting.
//!
//! [`ShardedService`]: crate::ShardedService

use crate::{Response, ServeError, SiteService, WarmupReport};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use strudel_struql::Parallelism;

/// Upper bound on total request bytes read per connection (request line
/// plus headers). A request that exceeds it answers
/// `431 Request Header Fields Too Large`.
pub const MAX_REQUEST_BYTES: u64 = 16 * 1024;

/// What the transport needs from a service: request dispatch, optional
/// pre-warming, and failure-mode counters. Implemented by
/// [`SiteService`] (one engine) and [`crate::ShardedService`] (N
/// hash-routed engines) — the transport is identical over either.
pub trait ClickService: Send + Sync + 'static {
    /// Serves one request path.
    fn handle(&self, path: &str) -> Response;
    /// Pre-renders every reachable page before accepting traffic.
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError>;
    /// Records a panic caught by the transport's worker backstop.
    fn note_panic(&self);
    /// Records a connection shed by the full backlog.
    fn note_shed(&self);
    /// Records a failed socket-timeout setup.
    fn note_timeout_config_error(&self, err: &std::io::Error);
}

impl ClickService for SiteService {
    fn handle(&self, path: &str) -> Response {
        SiteService::handle(self, path)
    }
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        SiteService::warm(self, parallelism)
    }
    fn note_panic(&self) {
        SiteService::note_panic(self)
    }
    fn note_shed(&self) {
        SiteService::note_shed(self)
    }
    fn note_timeout_config_error(&self, err: &std::io::Error) {
        SiteService::note_timeout_config_error(self, err)
    }
}

impl ClickService for crate::ShardedService {
    fn handle(&self, path: &str) -> Response {
        crate::ShardedService::handle(self, path)
    }
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        crate::ShardedService::warm(self, parallelism)
    }
    // Transport-level failures have no owning shard; account them on
    // shard 0, whose counters the aggregated stats sum like any other.
    fn note_panic(&self) {
        self.shard(0).note_panic()
    }
    fn note_shed(&self) {
        self.shard(0).note_shed()
    }
    fn note_timeout_config_error(&self, err: &std::io::Error) {
        self.shard(0).note_timeout_config_error(err)
    }
}

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Per-request socket read/write timeout.
    pub timeout: Duration,
    /// Pre-render every reachable page into the HTML cache before
    /// accepting requests, across this many workers
    /// ([`SiteService::warm`]). `None` starts cold (pages render on
    /// first hit).
    pub warm: Option<Parallelism>,
    /// Accepted connections that may wait for a worker. When the backlog
    /// is full the accept thread sheds new connections with a `503` and
    /// a `Retry-After` header instead of queueing unbounded work.
    pub max_backlog: usize,
    /// The `Retry-After` value (seconds) sent on shed connections.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            timeout: Duration::from_secs(10),
            warm: None,
            max_backlog: 1024,
            retry_after_secs: 1,
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection. The
            // listener may be bound to an unspecified address (0.0.0.0 /
            // ::), which is not connectable — aim at loopback on the
            // bound port instead, and bound the wake so a filtered
            // loopback can't turn shutdown into a hang.
            let ip: IpAddr = if self.addr.ip().is_unspecified() {
                match self.addr {
                    SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
                }
            } else {
                self.addr.ip()
            };
            let wake = SocketAddr::new(ip, self.addr.port());
            let _ = TcpStream::connect_timeout(&wake, Duration::from_millis(500));
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts serving `service` per `config`. Returns once the socket is
/// bound and the worker pool is up.
pub fn serve<S: ClickService>(
    service: Arc<S>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    if let Some(parallelism) = config.warm {
        service
            .warm(parallelism)
            .map_err(|e| std::io::Error::other(format!("warmup failed: {e}")))?;
    }

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.max_backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let timeout = config.timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("strudel-serve-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, never
                    // across a request.
                    let stream = rx.lock().unwrap().recv();
                    match stream {
                        Ok(stream) => {
                            // Backstop for panics outside the service's own
                            // handler (request parsing, response writing): the
                            // connection drops but the worker survives.
                            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                handle_connection(stream, &*service, timeout)
                            }));
                            if caught.is_err() {
                                service.note_panic();
                            }
                        }
                        Err(_) => break, // channel closed: shutting down
                    }
                })?,
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_service = Arc::clone(&service);
    let retry_after_secs = config.retry_after_secs;
    let accept = std::thread::Builder::new()
        .name("strudel-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Saturated: answer from the accept thread so the
                        // client learns to back off instead of queueing.
                        accept_service.note_shed();
                        shed_connection(stream, retry_after_secs);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                }
            }
            // tx drops here; workers drain the queue and exit.
        })?;

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        workers,
    })
}

/// Parses one `GET` request and writes the service's response. Errors are
/// answered with a 400 where possible and otherwise dropped — a broken
/// client must never take a worker down.
fn handle_connection<S: ClickService>(stream: TcpStream, service: &S, timeout: Duration) {
    // A failed timeout setup means this connection could hold its worker
    // indefinitely. Serve it anyway, but never silently: the service logs
    // the first failure and counts every one.
    if let Err(e) = stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
    {
        service.note_timeout_config_error(&e);
    }
    // Hard cap on request bytes: a hostile client streaming an endless
    // request line or header block hits the `Take` limit instead of
    // growing a worker-side String without bound.
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s.take(MAX_REQUEST_BYTES),
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // A request line that swallowed the whole byte budget without ever
    // reaching a newline is the DoS shape, not a parse error.
    let mut oversized = !request_line.ends_with('\n')
        && request_line.len() as u64 >= MAX_REQUEST_BYTES;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers up to the blank line; bodies are not supported. Only
    // an empty line (CRLF or bare LF) ends the block — the old `n > 2`
    // predicate misread any 2-byte header line ("X\n") as the end of
    // headers, leaving unread bytes to RST the response away.
    let mut line = String::new();
    while !oversized {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF — either the client closed, or the byte budget ran
                // out mid-headers (which would leave unread bytes).
                oversized = reader.get_ref().limit() == 0;
                break;
            }
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) if !line.ends_with('\n') => {
                // Budget exhausted mid-line.
                oversized = true;
                break;
            }
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let response = if oversized {
        Response {
            status: 431,
            content_type: "text/plain; charset=utf-8",
            body: format!("request exceeds {MAX_REQUEST_BYTES} bytes\n"),
        }
    } else if method != "GET" && method != "HEAD" {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".into(),
        }
    } else if path.is_empty() {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request line\n".into(),
        }
    } else {
        service.handle(path)
    };
    let head_only = method == "HEAD" && !oversized;
    if write_response(&stream, &response, head_only).is_ok() && oversized {
        // The client may still be mid-send; drain briefly so closing
        // with unread data doesn't RST the 431 away.
        let mut stream = stream;
        drain_before_close(&mut stream, Duration::from_millis(100));
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Answers a connection the backlog has no room for: a `503` with a
/// `Retry-After` header, written from the accept thread under short
/// timeouts so a slow client cannot stall accepting.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = "server is at capacity, retry shortly\n";
    let _ = write!(
        stream,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nRetry-After: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        retry_after_secs,
        body
    );
    let _ = stream.flush();
    drain_before_close(&mut stream, Duration::from_millis(100));
}

/// Drains whatever request bytes arrived, until EOF or the deadline.
/// Closing with unread data makes TCP reset the connection, which would
/// discard the response sitting in the client's receive buffer — and one
/// 1024-byte read is not enough for a request larger than 1 KiB.
fn drain_before_close(stream: &mut TcpStream, max_wait: Duration) {
    let deadline = Instant::now() + max_wait;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut scratch = [0u8; 1024];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => break, // client closed its half: nothing left unread
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        if Instant::now() >= deadline {
            break;
        }
    }
}

fn write_response(
    mut stream: &TcpStream,
    response: &Response,
    head_only: bool,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    )?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()
}
