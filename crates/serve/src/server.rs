//! The HTTP front end: a plain-`std::net` thread pool over one shared
//! [`SiteService`].
//!
//! One accept thread feeds accepted connections into an `mpsc` channel;
//! `workers` threads drain it, each parsing a minimal `GET` request,
//! dispatching into the service, and writing the response. Per-request
//! socket timeouts bound how long a slow or stalled client can hold a
//! worker. Shutdown is graceful: a flag flips, a self-connection wakes
//! the accept loop, the channel closes, and every worker drains its
//! in-flight request before exiting.

use crate::{Response, SiteService};
use std::io::{BufRead, BufReader, Write};
use strudel_struql::Parallelism;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Per-request socket read/write timeout.
    pub timeout: Duration,
    /// Pre-render every reachable page into the HTML cache before
    /// accepting requests, across this many workers
    /// ([`SiteService::warm`]). `None` starts cold (pages render on
    /// first hit).
    pub warm: Option<Parallelism>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            timeout: Duration::from_secs(10),
            warm: None,
        }
    }
}

/// A running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts serving `service` per `config`. Returns once the socket is
/// bound and the worker pool is up.
pub fn serve(service: Arc<SiteService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    if let Some(parallelism) = config.warm {
        service
            .warm(parallelism)
            .map_err(|e| std::io::Error::other(format!("warmup failed: {e}")))?;
    }

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let timeout = config.timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("strudel-serve-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, never
                    // across a request.
                    let stream = rx.lock().unwrap().recv();
                    match stream {
                        Ok(stream) => handle_connection(stream, &service, timeout),
                        Err(_) => break, // channel closed: shutting down
                    }
                })?,
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("strudel-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // tx drops here; workers drain the queue and exit.
        })?;

    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        workers,
    })
}

/// Parses one `GET` request and writes the service's response. Errors are
/// answered with a 400 where possible and otherwise dropped — a broken
/// client must never take a worker down.
fn handle_connection(stream: TcpStream, service: &SiteService, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers up to the blank line; bodies are not supported.
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 2 => continue,
            _ => break,
        }
    }
    let response = if method != "GET" && method != "HEAD" {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".into(),
        }
    } else if path.is_empty() {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed request line\n".into(),
        }
    } else {
        service.handle(path)
    };
    let _ = write_response(stream, &response, method == "HEAD");
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "",
    }
}

fn write_response(
    mut stream: TcpStream,
    response: &Response,
    head_only: bool,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    )?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()
}
