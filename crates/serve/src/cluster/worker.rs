//! The shard-worker process body, behind the hidden `strudel
//! shard-worker` verb.
//!
//! A worker owns no durable state. It rebuilds its database by
//! replaying the shared paged store read-only
//! ([`strudel_repo::replay_committed`]), serves its shard's routes from
//! an ordinary [`SiteService`] (no store attached — the router is the
//! only writer), and catches up on later deltas when the router calls
//! `GET /internal/catchup?n=<target>`: it re-reads the store's WAL
//! suffix and applies what it hasn't yet. Any failure to catch up —
//! apply error, generation mismatch (a checkpoint happened), unreadable
//! log — ends the process, because a full replay at restart is always
//! correct, while limping on behind the barrier would serve mixed
//! epochs.
//!
//! Readiness is reported by writing the bound address to a file
//! (tmp + rename, so the supervisor never reads a torn write).
//! SIGTERM/SIGINT drain through a [`strudel_epoll::SignalFd`]: stop
//! accepting, finish in-flight requests, exit 0.

use super::fault::ArmedFaults;
use crate::{ClickService, Response, ServeError, ServerConfig, SiteService, Transport, WarmupReport};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use strudel_repo::Database;
use strudel_schema::dynamic::Mode;
use strudel_struql::Parallelism;

/// Everything the `shard-worker` verb parses from its command line.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shards in the cluster (for diagnostics; routing happens at
    /// the router).
    pub of: usize,
    /// The shared paged store directory (read-only from here).
    pub store_dir: PathBuf,
    /// Where to write the bound address once serving.
    pub ready_file: PathBuf,
    /// Click-time evaluation mode.
    pub mode: Mode,
}

/// The worker-side service: an inner [`SiteService`] plus the catch-up
/// endpoint and the armed fault plan.
pub struct WorkerService {
    inner: SiteService,
    store_dir: PathBuf,
    /// WAL deltas this process has applied (replay + catch-ups).
    applied: AtomicU64,
    /// The store generation the startup replay observed; a mismatch on
    /// catch-up means a checkpoint happened and only a full replay is
    /// correct.
    generation: u64,
    faults: ArmedFaults,
    /// Serializes catch-ups (the router retries, and retries must not
    /// interleave).
    catchup: Mutex<()>,
}

impl WorkerService {
    /// Builds the service from a startup replay of the shared store.
    pub fn new(
        site: &strudel::Site,
        opts: &WorkerOptions,
    ) -> Result<WorkerService, ServeError> {
        let replayed = strudel_repo::replay_committed(&opts.store_dir)
            .map_err(|e| ServeError::Io(std::io::Error::other(format!("replaying store: {e}"))))?;
        let db = Database::from_graph(replayed.graph, site.database.level());
        let inner = SiteService::from_parts(
            Arc::new(db),
            &site.program,
            site.templates.clone(),
            &site.root_collection,
            opts.mode,
        );
        Ok(WorkerService {
            inner,
            store_dir: opts.store_dir.clone(),
            applied: AtomicU64::new(replayed.wal_deltas),
            generation: replayed.generation,
            faults: ArmedFaults::from_env(opts.shard),
            catchup: Mutex::new(()),
        })
    }

    /// WAL deltas applied so far (startup replay + catch-ups).
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// The catch-up endpoint body: apply the committed WAL suffix past
    /// what this process already holds, then report the applied count.
    /// The router retries until the count reaches its target. Exits the
    /// process on anything that would leave this replica behind for
    /// good — restart-and-replay is the recovery story.
    fn catch_up(&self, path: &str) -> Response {
        let target: u64 = path
            .split_once("?n=")
            .and_then(|(_, n)| n.parse().ok())
            .unwrap_or(0);
        let _serial = self.catchup.lock().unwrap_or_else(|e| e.into_inner());
        let mut applied = self.applied.load(Ordering::Acquire);
        if applied < target {
            let (generation, deltas) =
                match strudel_repo::committed_wal_deltas(&self.store_dir) {
                    Ok(r) => r,
                    Err(_) => std::process::exit(3),
                };
            if generation != self.generation || (deltas.len() as u64) < applied {
                std::process::exit(3);
            }
            for delta in &deltas[applied as usize..] {
                // The fault hook fires *before* the apply: an injected
                // panic or exit lands mid-delta, after the store and the
                // router committed.
                self.faults.on_delta();
                if self.inner.apply_delta(delta).is_err() {
                    std::process::exit(3);
                }
                applied += 1;
                self.applied.store(applied, Ordering::Release);
            }
        }
        Response::text(format!("applied={applied}\n"))
    }
}

impl ClickService for WorkerService {
    fn handle(&self, path: &str) -> Response {
        let routed = path.split('?').next().unwrap_or(path);
        if routed == "/internal/catchup" {
            return self.catch_up(path);
        }
        if !matches!(routed, "/healthz" | "/readyz" | "/metrics") {
            self.faults.on_request();
        }
        self.inner.handle(path)
    }
    fn warm(&self, parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        self.inner.warm(parallelism)
    }
    fn note_panic(&self) {
        self.inner.note_panic()
    }
    fn note_shed(&self) {
        self.inner.note_shed()
    }
    fn note_timeout_config_error(&self, err: &std::io::Error) {
        self.inner.note_timeout_config_error(err)
    }
    fn note_accept_error(&self) {
        self.inner.note_accept_error()
    }
    fn note_conn_opened(&self) {
        self.inner.note_conn_opened()
    }
    fn note_conn_closed(&self) {
        self.inner.note_conn_closed()
    }
    fn note_keepalive_reuse(&self) {
        self.inner.note_keepalive_reuse()
    }
    fn note_idle_closed(&self) {
        self.inner.note_idle_closed()
    }
}

/// Runs one shard worker to completion: replay, serve, drain on
/// SIGTERM/SIGINT. Blocks until shutdown. The signal mask must be
/// installed before any server thread spawns, which is why the
/// [`strudel_epoll::SignalFd`] is created first.
pub fn run_worker(site: &strudel::Site, opts: WorkerOptions) -> Result<(), String> {
    // Arm faults before anything else so at=start fires pre-ready.
    let faults = ArmedFaults::from_env(opts.shard);
    faults.on_start();

    // Block + claim SIGTERM/SIGINT on the main thread now; every thread
    // the transports spawn inherits the blocked mask, so the signals
    // land only in this signalfd.
    let signals =
        strudel_epoll::SignalFd::new(&[strudel_epoll::SIGTERM, strudel_epoll::SIGINT]).ok();

    let service = Arc::new(WorkerService::new(site, &opts).map_err(|e| e.to_string())?);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        transport: Transport::Epoll,
        ..Default::default()
    };
    let handle = crate::serve(service.clone(), config)
        .map_err(|e| format!("worker {}/{} bind: {e}", opts.shard, opts.of))?;

    // Publish the bound address atomically: tmp + rename, so the
    // supervisor either sees nothing or a complete address.
    let tmp = opts.ready_file.with_extension("tmp");
    std::fs::write(&tmp, format!("{}\n", handle.addr()))
        .and_then(|()| std::fs::rename(&tmp, &opts.ready_file))
        .map_err(|e| format!("writing ready file: {e}"))?;

    match signals {
        Some(fd) => loop {
            if fd.try_take().is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        },
        // No signalfd on this platform: serve until killed.
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    // Drain: stop accepting, finish in-flight requests, then exit 0 so
    // the supervisor sees a clean shutdown, not a crash.
    handle.shutdown();
    Ok(())
}
