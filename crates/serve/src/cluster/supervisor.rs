//! The supervision tree's working parts: per-shard worker slots, the
//! spawn/monitor/restart state machine, and the crash-loop breaker.
//!
//! Each shard has one [`Slot`] walking a four-phase machine:
//!
//! ```text
//! Starting ──ready file + catch-up──▶ Ready
//!    │  ▲                              │
//!    │  └──────backoff elapsed──┐      │ death, hang, failed probe
//!    ▼                          │      ▼
//! (startup timeout: strike)   Backoff ◀┘
//!                               │
//!                               └──strikes ≥ max──▶ Broken
//! ```
//!
//! A death within `min_uptime` of becoming ready is a *strike*; enough
//! consecutive strikes open the circuit breaker (`Broken`) and the
//! supervisor stops burning CPU on a worker that can't boot — its
//! routes stay on the degraded path until an operator intervenes. A
//! worker that lived past `min_uptime` clears the strikes and resets
//! the backoff schedule.

use super::backoff::Backoff;
use super::proxy;
use super::ClusterService;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where a worker slot is in its lifecycle.
#[derive(Debug)]
pub(super) enum Phase {
    /// Spawned; waiting for the ready file and a successful catch-up.
    Starting { since: Instant },
    /// Serving at this address.
    Ready { addr: SocketAddr },
    /// Dead; waiting out the restart delay.
    Backoff { until: Instant },
    /// Crash-looped past the strike limit; the breaker is open.
    Broken,
}

/// One shard's supervised worker.
pub(super) struct Slot {
    pub(super) shard: usize,
    pub(super) state: Mutex<SlotState>,
    /// Mirrors `Phase::Ready` for lock-free routing checks.
    pub(super) up: AtomicBool,
    /// The live child's pid (0 = none), for lock-free kills.
    pub(super) pid: AtomicU32,
    /// Times a replacement worker was spawned.
    pub(super) restarts: AtomicU64,
    /// Mirrors `Phase::Broken`.
    pub(super) broken: AtomicBool,
}

pub(super) struct SlotState {
    pub(super) phase: Phase,
    pub(super) child: Option<Child>,
    pub(super) ready_file: PathBuf,
    pub(super) strikes: u32,
    pub(super) backoff: Backoff,
    /// When the current worker became ready (None before first ready).
    pub(super) ready_at: Option<Instant>,
    pub(super) last_probe: Instant,
    /// Monotone spawn counter naming ready files uniquely per attempt.
    pub(super) spawns: u64,
}

impl Slot {
    pub(super) fn new(shard: usize, backoff: Backoff) -> Slot {
        Slot {
            shard,
            state: Mutex::new(SlotState {
                phase: Phase::Backoff {
                    until: Instant::now(),
                },
                child: None,
                ready_file: PathBuf::new(),
                strikes: 0,
                backoff,
                ready_at: None,
                last_probe: Instant::now(),
                spawns: 0,
            }),
            up: AtomicBool::new(false),
            pid: AtomicU32::new(0),
            restarts: AtomicU64::new(0),
            broken: AtomicBool::new(false),
        }
    }

    /// The worker's address while ready.
    pub(super) fn addr(&self) -> Option<SocketAddr> {
        if !self.up.load(Ordering::Acquire) {
            return None;
        }
        match self.state.lock().unwrap_or_else(|e| e.into_inner()).phase {
            Phase::Ready { addr } => Some(addr),
            _ => None,
        }
    }
}

impl ClusterService {
    /// One supervision pass over every slot: reap deaths, time out
    /// stalled startups, probe ready workers, restart when backoff
    /// elapses. Called from the monitor thread every few tens of ms.
    pub(super) fn tick(&self) {
        for slot in &self.slots {
            let mut st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
            self.reap_if_dead(slot, &mut st);
            match st.phase {
                Phase::Backoff { until } => {
                    if Instant::now() >= until && !self.stopping() {
                        self.spawn_worker(slot, &mut st);
                    }
                }
                Phase::Starting { since } => self.check_startup(slot, &mut st, since),
                Phase::Ready { addr } => self.probe(slot, &mut st, addr),
                Phase::Broken => {}
            }
        }
    }

    /// Handles a worker death discovered by `try_wait`: strike or
    /// forgive depending on uptime, then open the breaker or schedule a
    /// restart.
    fn reap_if_dead(&self, slot: &Slot, st: &mut SlotState) {
        let Some(child) = st.child.as_mut() else {
            return;
        };
        match child.try_wait() {
            Ok(Some(_status)) => {}
            Ok(None) => return,
            Err(_) => return,
        }
        st.child = None;
        slot.pid.store(0, Ordering::Release);
        slot.up.store(false, Ordering::Release);
        self.record_death(slot, st);
    }

    /// Strike-or-forgive accounting for a worker that is now dead, then
    /// the breaker-or-backoff decision.
    fn record_death(&self, slot: &Slot, st: &mut SlotState) {
        let lived_long_enough = st
            .ready_at
            .is_some_and(|t| t.elapsed() >= self.config.min_uptime);
        if lived_long_enough {
            st.strikes = 0;
            st.backoff.reset();
        } else {
            st.strikes += 1;
        }
        st.ready_at = None;
        if st.strikes >= self.config.max_strikes {
            st.phase = Phase::Broken;
            slot.broken.store(true, Ordering::Release);
            return;
        }
        st.phase = Phase::Backoff {
            until: Instant::now() + st.backoff.next_delay(),
        };
    }

    /// Spawns a replacement worker for `slot`.
    fn spawn_worker(&self, slot: &Slot, st: &mut SlotState) {
        st.spawns += 1;
        let ready_file = self
            .run_dir
            .join(format!("worker-{}-{}.addr", slot.shard, st.spawns));
        let _ = std::fs::remove_file(&ready_file);
        let c = &self.config;
        let mut cmd = Command::new(&c.binary);
        cmd.arg("shard-worker")
            .arg(&c.site_dir)
            .arg("--shard")
            .arg(slot.shard.to_string())
            .arg("--of")
            .arg(c.workers.to_string())
            .arg("--store")
            .arg(&c.store_dir)
            .arg("--ready-file")
            .arg(&ready_file)
            .arg("--mode")
            .arg(&c.mode)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        for (k, v) in &c.worker_env {
            cmd.env(k, v);
        }
        match cmd.spawn() {
            Ok(child) => {
                slot.pid.store(child.id(), Ordering::Release);
                slot.restarts.fetch_add(1, Ordering::Release);
                st.child = Some(child);
                st.ready_file = ready_file;
                st.phase = Phase::Starting {
                    since: Instant::now(),
                };
            }
            Err(_) => {
                // Spawn failure is a strike like any other fast death.
                st.strikes += 1;
                if st.strikes >= c.max_strikes {
                    st.phase = Phase::Broken;
                    slot.broken.store(true, Ordering::Release);
                } else {
                    st.phase = Phase::Backoff {
                        until: Instant::now() + st.backoff.next_delay(),
                    };
                }
            }
        }
    }

    /// Advances a `Starting` worker: once the ready file appears and
    /// the worker catches up to the current delta target, it is ready
    /// to take routes. Workers that neither report nor die within the
    /// startup timeout are killed (a hang at boot is a crash).
    fn check_startup(&self, slot: &Slot, st: &mut SlotState, since: Instant) {
        let addr = std::fs::read_to_string(&st.ready_file)
            .ok()
            .and_then(|s| s.trim().parse::<SocketAddr>().ok());
        if let Some(addr) = addr {
            // The worker replayed the store before binding; a delta that
            // committed *during* its replay may still be missing. Gate
            // readiness on an explicit catch-up to the current target so
            // a worker never serves behind the barrier.
            let target = self.delta_target();
            let path = format!("/internal/catchup?n={target}");
            if let Ok(resp) = proxy::fetch(addr, &path, self.config.probe_deadline) {
                if resp.status == 200 && parse_applied(&resp.body) >= Some(target) {
                    st.phase = Phase::Ready { addr };
                    st.ready_at = Some(Instant::now());
                    st.last_probe = Instant::now();
                    slot.up.store(true, Ordering::Release);
                    return;
                }
            }
        }
        if since.elapsed() >= self.config.startup_timeout {
            kill_slot_child(slot, st);
            self.record_death(slot, st);
        }
    }

    /// Liveness-probes a `Ready` worker on its interval; a worker that
    /// cannot answer `/healthz` within the deadline is hung — kill it
    /// and let the death path restart it.
    fn probe(&self, slot: &Slot, st: &mut SlotState, addr: SocketAddr) {
        if st.last_probe.elapsed() < self.config.probe_interval {
            return;
        }
        st.last_probe = Instant::now();
        let healthy = proxy::fetch(addr, "/healthz", self.config.probe_deadline)
            .map(|r| r.status == 200)
            .unwrap_or(false);
        if !healthy {
            // A hung worker is a crash the kernel hasn't noticed yet.
            kill_slot_child(slot, st);
            self.record_death(slot, st);
        }
    }

    /// SIGKILLs shard `i`'s worker, if one is running. Returns whether a
    /// signal was sent. Public as the torture-test hook and the
    /// supervisor's own hang remedy — recovery is identical either way:
    /// restart and replay.
    pub fn kill_worker(&self, shard: usize) -> bool {
        let Some(slot) = self.slots.get(shard) else {
            return false;
        };
        let pid = slot.pid.load(Ordering::Acquire);
        if pid == 0 {
            return false;
        }
        slot.up.store(false, Ordering::Release);
        strudel_epoll::kill_process(pid, strudel_epoll::SIGKILL).is_ok()
    }

    /// Requests a clean drain from every worker (SIGTERM), waits
    /// briefly, then SIGKILLs stragglers and reaps everything.
    pub(super) fn shutdown_workers(&self) {
        for slot in &self.slots {
            let pid = slot.pid.load(Ordering::Acquire);
            if pid != 0 {
                let _ = strudel_epoll::kill_process(pid, strudel_epoll::SIGTERM);
            }
        }
        let deadline = Instant::now() + self.config.drain_timeout;
        for slot in &self.slots {
            let mut st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(child) = st.child.as_mut() {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
                st.child = None;
            }
            slot.pid.store(0, Ordering::Release);
            slot.up.store(false, Ordering::Release);
        }
    }
}

/// Kills and reaps the slot's child synchronously (hang remedy). The
/// caller decides the next phase (strike accounting).
fn kill_slot_child(slot: &Slot, st: &mut SlotState) {
    if let Some(child) = st.child.as_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    st.child = None;
    slot.pid.store(0, Ordering::Release);
    slot.up.store(false, Ordering::Release);
}

/// Extracts `K` from a catch-up body `applied=K`.
pub(super) fn parse_applied(body: &str) -> Option<u64> {
    body.trim().strip_prefix("applied=")?.parse().ok()
}
