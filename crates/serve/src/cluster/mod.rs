//! Supervised multi-process serving: a router parent, N crash-isolated
//! shard worker processes, degraded-mode failover.
//!
//! `strudel serve --cluster N --store DIR` runs this module's
//! [`ClusterService`] as the front: a supervisor/router that spawns one
//! `strudel shard-worker` process per shard, routes each request to its
//! owner worker over loopback by the same stable path hash the
//! in-process [`crate::ShardedService`] uses
//! ([`crate::router::shard_of_path`]), and proxies through
//! [`crate::proto`] with a per-request deadline. No worker holds
//! durable state: each rebuilds its database by replaying the shared
//! paged store read-only, which is what makes workers disposable — the
//! supervisor's whole recovery story is "kill it and let it replay".
//!
//! **Failover.** A crashed, hung, or restarting worker never surfaces
//! as a connection reset. The router keeps a last-known-good cache of
//! every 200 it has proxied; while a shard is down its routes serve
//! from that cache with `X-Strudel-Degraded: stale`, and only a path
//! with no cached rendition answers 503. Kill any worker under load and
//! every client sees either fresh bytes or a marked-stale copy.
//!
//! **Supervision.** Worker health is probed on `/healthz`; crashes
//! restart with exponential backoff + deterministic jitter
//! ([`backoff::Backoff`]); a worker that keeps dying within
//! `min_uptime` of becoming ready trips a crash-loop circuit breaker
//! and stays down ([`supervisor`]).
//!
//! **Writes.** The barrier-epoch semantics of the in-process sharded
//! service survive the process boundary. The router is the only
//! writer: a delta validates and commits once in the shared store
//! (WAL + copy-on-write pages — the cross-process form of the shard-0
//! validation gate: rejection happens before any worker sees the
//! delta), then fans out as `GET /internal/catchup?n=<target>` —
//! worker 0 first, the rest in parallel — and the router retries each
//! live worker until it reports the target count. A worker that fails
//! mid-apply is killed and replays the WAL to catch up, so a response
//! can never mix epochs: every live worker is at the barrier, and a
//! worker behind it is not routed to.
//!
//! Torture-testing hooks: [`fault::FaultPlan`] (env-driven exit / panic
//! / stall at the Nth request, Nth delta, or startup) and
//! [`ClusterService::kill_worker`].

pub mod backoff;
pub mod fault;
pub mod proxy;
mod supervisor;
mod worker;

pub use fault::{FaultAction, FaultPlan, FaultTrigger, FAULT_PLAN_ENV};
pub use worker::{run_worker, WorkerOptions, WorkerService};

use crate::metrics::ServerMetrics;
use crate::{router, ClickService, Response, ServeError, WarmupReport};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};
use strudel_graph::GraphDelta;
use strudel_struql::Parallelism;
use supervisor::Slot;

/// Everything that shapes a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Shard worker processes.
    pub workers: usize,
    /// The `strudel` binary to spawn workers from.
    pub binary: PathBuf,
    /// The site directory workers load templates and the site query from.
    pub site_dir: PathBuf,
    /// The shared paged store directory (router writes, workers replay).
    pub store_dir: PathBuf,
    /// Evaluation mode flag passed to workers (`naive|context|lookahead`).
    pub mode: String,
    /// Extra environment for workers (fault plans ride here, explicitly —
    /// the supervisor never forwards its own ambient environment hooks).
    pub worker_env: Vec<(String, String)>,
    /// End-to-end deadline for one proxied request.
    pub request_deadline: Duration,
    /// Deadline for supervision probes (`/healthz`, readiness catch-up).
    pub probe_deadline: Duration,
    /// How often a ready worker is liveness-probed.
    pub probe_interval: Duration,
    /// How long a spawned worker may take to report ready.
    pub startup_timeout: Duration,
    /// A death within this long of becoming ready counts a strike.
    pub min_uptime: Duration,
    /// Consecutive strikes that trip the crash-loop breaker.
    pub max_strikes: u32,
    /// First restart delay (doubles per strike, jittered).
    pub backoff_base: Duration,
    /// Restart delay ceiling.
    pub backoff_cap: Duration,
    /// How long shutdown waits for SIGTERMed workers before SIGKILL.
    pub drain_timeout: Duration,
}

impl ClusterConfig {
    /// A config with production defaults for the tunables.
    pub fn new(
        workers: usize,
        binary: PathBuf,
        site_dir: PathBuf,
        store_dir: PathBuf,
    ) -> ClusterConfig {
        ClusterConfig {
            workers: workers.max(1),
            binary,
            site_dir,
            store_dir,
            mode: "context".into(),
            worker_env: Vec::new(),
            request_deadline: Duration::from_secs(5),
            probe_deadline: Duration::from_secs(2),
            probe_interval: Duration::from_millis(500),
            startup_timeout: Duration::from_secs(30),
            min_uptime: Duration::from_secs(2),
            max_strikes: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(3),
            drain_timeout: Duration::from_secs(3),
        }
    }
}

/// The router/supervisor front (see module docs). Implements
/// [`ClickService`], so either transport can carry it unchanged.
pub struct ClusterService {
    config: ClusterConfig,
    /// The shared store; the router is its only writer.
    store: strudel_repo::PagedRepo,
    /// Ready files live here, under the store directory.
    run_dir: PathBuf,
    slots: Vec<Slot>,
    /// Committed WAL deltas every live worker must have applied — the
    /// cross-process barrier epoch.
    target: AtomicU64,
    /// Serializes delta writers.
    writer: Mutex<()>,
    /// Pre-built per-shard route labels.
    shard_routes: Vec<String>,
    metrics: ServerMetrics,
    /// Last-known-good responses per shard: path → the latest fresh 200.
    lkg: Vec<Mutex<HashMap<String, Response>>>,
    degraded_total: AtomicU64,
    unavailable_total: AtomicU64,
    proxy_errors_total: AtomicU64,
    // Transport counters (the ClickService note_* sinks).
    panics: AtomicU64,
    shed: AtomicU64,
    timeout_config_errors: AtomicU64,
    accept_errors: AtomicU64,
    open_connections: AtomicU64,
    keepalive_reuse: AtomicU64,
    idle_closed: AtomicU64,
    stop: AtomicBool,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ClusterService {
    /// Starts the cluster: spawns every worker, runs the monitor
    /// thread, and returns once each slot is ready (or its breaker
    /// tripped). Fails only if *no* worker comes up — a cluster with
    /// some broken shards still serves the rest, degraded.
    pub fn start(
        store: strudel_repo::PagedRepo,
        config: ClusterConfig,
    ) -> Result<Arc<ClusterService>, ServeError> {
        let run_dir = config.store_dir.join("cluster");
        std::fs::create_dir_all(&run_dir)?;
        let (_, deltas) = strudel_repo::committed_wal_deltas(&config.store_dir)
            .map_err(|e| ServeError::Io(std::io::Error::other(format!("reading WAL: {e}"))))?;
        let n = config.workers;
        let slots = (0..n)
            .map(|i| {
                Slot::new(
                    i,
                    backoff::Backoff::new(config.backoff_base, config.backoff_cap, i as u64 + 1),
                )
            })
            .collect();
        let service = Arc::new(ClusterService {
            store,
            run_dir,
            slots,
            target: AtomicU64::new(deltas.len() as u64),
            writer: Mutex::new(()),
            shard_routes: (0..n).map(|i| format!("shard/{i}")).collect(),
            metrics: ServerMetrics::new(),
            lkg: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            degraded_total: AtomicU64::new(0),
            unavailable_total: AtomicU64::new(0),
            proxy_errors_total: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeout_config_errors: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            keepalive_reuse: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            monitor: Mutex::new(None),
            config,
        });

        // The monitor holds only a Weak: dropping the last user Arc ends
        // supervision, and Drop below reaps the children.
        let weak: Weak<ClusterService> = Arc::downgrade(&service);
        let monitor = std::thread::Builder::new()
            .name("cluster-monitor".into())
            .spawn(move || loop {
                let Some(svc) = weak.upgrade() else { break };
                if svc.stopping() {
                    break;
                }
                svc.tick();
                drop(svc);
                std::thread::sleep(Duration::from_millis(25));
            })?;
        *service.monitor.lock().unwrap() = Some(monitor);

        // Wait for the fleet: every slot ready or broken.
        let deadline = Instant::now()
            + service.config.startup_timeout
            + service.config.backoff_cap * service.config.max_strikes;
        loop {
            let ready = service.ready_workers();
            let broken = service.broken_workers();
            if ready + broken == service.config.workers || Instant::now() >= deadline {
                if ready == 0 {
                    service.shutdown();
                    return Err(ServeError::Io(std::io::Error::other(
                        "no cluster worker became ready",
                    )));
                }
                return Ok(service);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    pub(super) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The barrier epoch: committed WAL deltas every live worker holds.
    pub fn delta_target(&self) -> u64 {
        self.target.load(Ordering::Acquire)
    }

    /// Workers currently ready.
    pub fn ready_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.up.load(Ordering::Acquire))
            .count()
    }

    /// Workers whose crash-loop breaker is open.
    pub fn broken_workers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.broken.load(Ordering::Acquire))
            .count()
    }

    /// Restarts (spawns beyond the first) of shard `i`'s worker.
    pub fn worker_restarts(&self, shard: usize) -> u64 {
        self.slots[shard].restarts.load(Ordering::Acquire).saturating_sub(1)
    }

    /// The address shard `i`'s worker serves on, while ready.
    pub fn worker_addr(&self, shard: usize) -> Option<std::net::SocketAddr> {
        self.slots.get(shard).and_then(|s| s.addr())
    }

    /// Stops supervision and drains the workers (SIGTERM, bounded wait,
    /// SIGKILL stragglers). Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(t) = self.monitor.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = t.join();
        }
        self.shutdown_workers();
    }

    /// Applies a delta cluster-wide: commit once in the shared store
    /// (validation and durability), bump the barrier target, then catch
    /// every live worker up — worker 0 first, mirroring the in-process
    /// shard-0 gate ordering, then the rest in parallel. A worker that
    /// cannot reach the target is killed; its restart replays the WAL,
    /// which contains the delta. Returns the workers that were caught
    /// up synchronously.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<ClusterDeltaOutcome, ServeError> {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.store.apply_delta(delta)?;
        let target = self.target.fetch_add(1, Ordering::AcqRel) + 1;
        let mut caught_up = vec![false; self.slots.len()];
        caught_up[0] = self.catch_up_worker(0, target);
        if self.slots.len() > 1 {
            let rest: Vec<bool> = std::thread::scope(|scope| {
                let handles: Vec<_> = (1..self.slots.len())
                    .map(|i| scope.spawn(move || self.catch_up_worker(i, target)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or(false))
                    .collect()
            });
            caught_up[1..].copy_from_slice(&rest);
        }
        Ok(ClusterDeltaOutcome { target, caught_up })
    }

    /// Drives one worker to the barrier target. `false` means the
    /// worker is down or was killed for failing — either way its routes
    /// degrade until a replacement replays past the target.
    fn catch_up_worker(&self, shard: usize, target: u64) -> bool {
        const ATTEMPTS: u32 = 3;
        for _ in 0..ATTEMPTS {
            let Some(addr) = self.slots[shard].addr() else {
                return false;
            };
            let path = format!("/internal/catchup?n={target}");
            match proxy::fetch(addr, &path, self.config.request_deadline) {
                Ok(resp) if resp.status == 200 => {
                    if supervisor::parse_applied(&resp.body) >= Some(target) {
                        return true;
                    }
                    // Applied but behind: the WAL read raced the commit.
                    std::thread::sleep(Duration::from_millis(10));
                }
                // A non-200 (the worker's panic backstop answered 500) or
                // a transport error (crash, stall past the deadline):
                // this worker failed mid-apply. Kill it — the replay at
                // restart is the one recovery that is always correct.
                _ => {
                    self.kill_worker(shard);
                    return false;
                }
            }
        }
        self.kill_worker(shard);
        false
    }

    /// Serves one request: route by path hash, proxy to the owner
    /// worker, fall back to the last-known-good copy (marked stale)
    /// when the worker can't answer.
    fn dispatch(&self, path: &str) -> (&str, Response) {
        let routed = path.split('?').next().unwrap_or(path);
        match routed {
            "/metrics" => ("metrics", Response::text(self.stats_text())),
            "/healthz" => ("healthz", Response::text("ok\n".into())),
            "/readyz" => ("readyz", self.readyz_response()),
            _ => {
                let shard = router::shard_of_path(routed, self.slots.len());
                (self.shard_routes[shard].as_str(), self.proxy_to(shard, routed))
            }
        }
    }

    fn proxy_to(&self, shard: usize, routed: &str) -> Response {
        if let Some(addr) = self.slots[shard].addr() {
            match proxy::fetch(addr, routed, self.config.request_deadline) {
                Ok(parsed) => {
                    let response = Response {
                        status: parsed.status,
                        content_type: static_content_type(&parsed.content_type),
                        body: parsed.body,
                        degraded: parsed.degraded,
                    };
                    if response.status == 200 && !response.degraded {
                        self.lkg[shard]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(routed.to_owned(), response.clone());
                    }
                    return response;
                }
                Err(_) => {
                    self.proxy_errors_total.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Degraded path: the worker is down or unreachable. Serve the
        // last fresh copy, marked stale — never a reset.
        if let Some(mut cached) = self.lkg[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(routed)
            .cloned()
        {
            cached.degraded = true;
            self.degraded_total.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.unavailable_total.fetch_add(1, Ordering::Relaxed);
        let mut r = Response::text("shard temporarily unavailable, retry shortly\n".into());
        r.status = 503;
        r
    }

    fn readyz_response(&self) -> Response {
        let ready = self.ready_workers();
        let poisoned = self.store.is_poisoned();
        if ready == self.slots.len() && !poisoned {
            Response::text("ready\n".into())
        } else {
            let mut r = Response::text(format!(
                "workers {}/{} ready{}\n",
                ready,
                self.slots.len(),
                if poisoned { ", store poisoned" } else { "" }
            ));
            r.status = 503;
            r
        }
    }

    /// Aggregated stats in the standard [`crate::ServerStats`] shape.
    /// Engine and cache sections are zero — those live in the workers,
    /// behind their own `/metrics`.
    pub fn stats(&self) -> crate::ServerStats {
        crate::ServerStats {
            total: self.metrics.totals(),
            latency_buckets: self.metrics.total_latency_buckets(),
            latency_sum_us: self.metrics.total_latency_sum_us(),
            routes: self.metrics.snapshot(),
            html_cache: Default::default(),
            engine: Default::default(),
            epoch: self.delta_target(),
            slow_requests: 0,
            panics: self.panics.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeout_config_errors: self.timeout_config_errors.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            keepalive_reuse: self.keepalive_reuse.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            store_poisoned: self.store.is_poisoned(),
            trace_counters: Vec::new(),
            pager: strudel_repo::pager::global_stats(),
        }
    }

    /// The `/metrics` body: the standard rows plus the cluster rows.
    pub fn stats_text(&self) -> String {
        use std::fmt::Write;
        let mut out = self.stats().to_text();
        let _ = writeln!(out, "strudel_cluster_workers {}", self.slots.len());
        let _ = writeln!(out, "strudel_cluster_delta_epoch {}", self.delta_target());
        let _ = writeln!(
            out,
            "strudel_cluster_degraded_total {}",
            self.degraded_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "strudel_cluster_unavailable_total {}",
            self.unavailable_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "strudel_cluster_proxy_errors_total {}",
            self.proxy_errors_total.load(Ordering::Relaxed)
        );
        for (i, slot) in self.slots.iter().enumerate() {
            let _ = writeln!(
                out,
                "strudel_cluster_worker_up{{shard=\"{i}\"}} {}",
                u64::from(slot.up.load(Ordering::Acquire))
            );
            let _ = writeln!(
                out,
                "strudel_cluster_worker_restarts_total{{shard=\"{i}\"}} {}",
                self.worker_restarts(i)
            );
            let _ = writeln!(
                out,
                "strudel_cluster_worker_broken{{shard=\"{i}\"}} {}",
                u64::from(slot.broken.load(Ordering::Acquire))
            );
        }
        out
    }

    /// Crawls the site through the workers to prime the router's
    /// last-known-good cache: BFS over intra-site links from `/`. After
    /// this, degraded mode can serve every reachable page.
    fn crawl_warm(&self) -> Result<WarmupReport, ServeError> {
        const MAX_PAGES: usize = 10_000;
        let start = Instant::now();
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<(String, usize)> = VecDeque::new();
        let mut pages = 0usize;
        let mut levels = 0usize;
        seen.insert("/".into());
        queue.push_back(("/".into(), 0));
        while let Some((path, level)) = queue.pop_front() {
            if pages >= MAX_PAGES {
                break;
            }
            let shard = router::shard_of_path(&path, self.slots.len());
            let response = self.proxy_to(shard, &path);
            if response.status != 200 {
                continue;
            }
            pages += 1;
            levels = levels.max(level + 1);
            for href in extract_hrefs(&response.body) {
                if seen.insert(href.clone()) {
                    queue.push_back((href, level + 1));
                }
            }
        }
        Ok(WarmupReport {
            pages,
            levels,
            elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What [`ClusterService::apply_delta`] did.
#[derive(Clone, Debug)]
pub struct ClusterDeltaOutcome {
    /// The barrier target after this delta.
    pub target: u64,
    /// Per shard: whether the worker confirmed the target synchronously
    /// (`false` = down or killed; it replays on restart).
    pub caught_up: Vec<bool>,
}

impl ClickService for ClusterService {
    fn handle(&self, path: &str) -> Response {
        let start = Instant::now();
        let (route, response) = self.dispatch(path);
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.metrics.record(route, us);
        response
    }
    fn warm(&self, _parallelism: Parallelism) -> Result<WarmupReport, ServeError> {
        self.crawl_warm()
    }
    fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }
    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
    fn note_timeout_config_error(&self, _err: &std::io::Error) {
        self.timeout_config_errors.fetch_add(1, Ordering::Relaxed);
    }
    fn note_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }
    fn note_conn_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }
    fn note_conn_closed(&self) {
        let _ = self.open_connections.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }
    fn note_keepalive_reuse(&self) {
        self.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }
    fn note_idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Maps a proxied `Content-Type` back onto the static strings
/// [`Response`] carries (this server only ever emits these two).
fn static_content_type(ct: &str) -> &'static str {
    match ct {
        "text/html; charset=utf-8" => "text/html; charset=utf-8",
        _ => "text/plain; charset=utf-8",
    }
}

/// Intra-site links (`href="/..."`) in a rendered page body. Router-
/// reserved endpoints (`/metrics`, health, debug) are not pages and are
/// never worth a last-known-good copy.
fn extract_hrefs(body: &str) -> Vec<String> {
    const RESERVED: [&str; 4] = ["/metrics", "/healthz", "/readyz", "/debug"];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(i) = rest.find("href=\"") {
        rest = &rest[i + 6..];
        let Some(end) = rest.find('"') else { break };
        let href = &rest[..end];
        if href.starts_with('/') && !RESERVED.iter().any(|r| href.starts_with(r)) {
            out.push(href.split('#').next().unwrap_or(href).to_owned());
        }
        rest = &rest[end..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrefs_are_extracted_intra_site_only() {
        let body = r##"<a href="/page/A">a</a> <a href="http://x/">x</a>
                       <a href="/data/n1#frag">n</a>"##;
        assert_eq!(extract_hrefs(body), vec!["/page/A", "/data/n1"]);
    }

    #[test]
    fn content_types_map_onto_the_static_set() {
        assert_eq!(
            static_content_type("text/html; charset=utf-8"),
            "text/html; charset=utf-8"
        );
        assert_eq!(
            static_content_type("application/json"),
            "text/plain; charset=utf-8"
        );
    }
}
