//! The router's loopback HTTP client: one request, one connection, one
//! deadline.
//!
//! Connection pooling is deliberately absent. The router ↔ worker hop is
//! loopback (connect cost is a couple of syscalls), and per-request
//! connections mean a worker crash can never poison a pooled socket —
//! the next request simply connects to the restarted worker. Every
//! stage (connect, write, read) charges against one overall deadline,
//! so a stalled worker costs the router a bounded wait, not a thread.

use crate::proto::{self, ParsedResponse, ResponseOutcome};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Fetches `path` from the worker at `addr` with GET, within `deadline`
/// end to end. Any error — connect refused, timeout, a torn or
/// malformed response — comes back as `io::Error`; the caller decides
/// between degraded service and a kill.
pub fn fetch(
    addr: SocketAddr,
    path: &str,
    deadline: Duration,
) -> std::io::Result<ParsedResponse> {
    let start = Instant::now();
    let remaining = |start: Instant| -> std::io::Result<Duration> {
        let left = deadline.saturating_sub(start.elapsed());
        if left.is_zero() {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "proxy deadline exhausted",
            ))
        } else {
            Ok(left)
        }
    };

    let mut stream = TcpStream::connect_timeout(&addr, remaining(start)?)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(remaining(start)?))?;
    stream.write_all(&proto::encode_request("GET", path, false))?;

    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        stream.set_read_timeout(Some(remaining(start)?))?;
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // Peer closed without completing the response.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        match proto::parse_response(&buf, false) {
            ResponseOutcome::Complete { response, .. } => return Ok(response),
            ResponseOutcome::Incomplete => continue,
            ResponseOutcome::Malformed => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "malformed response from worker",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn fetch_round_trips_against_a_scripted_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut req = Vec::new();
            let mut chunk = [0u8; 1024];
            loop {
                let n = s.read(&mut chunk).unwrap();
                req.extend_from_slice(&chunk[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            let body = "<p>w</p>";
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            String::from_utf8_lossy(&req).into_owned()
        });
        let resp = fetch(addr, "/page/X", Duration::from_secs(2)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "<p>w</p>");
        let seen = peer.join().unwrap();
        assert!(seen.starts_with("GET /page/X HTTP/1.1\r\n"), "{seen}");
        assert!(seen.contains("Connection: close"), "{seen}");
    }

    #[test]
    fn a_stalled_peer_times_out_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            // Accept, then say nothing until the client gives up.
            let (s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(600));
            drop(s);
        });
        let start = Instant::now();
        let err = fetch(addr, "/", Duration::from_millis(150)).unwrap_err();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "deadline respected"
        );
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "{err:?}"
        );
        peer.join().unwrap();
    }

    #[test]
    fn refused_connections_error_immediately() {
        // Bind then drop to find a port with nothing listening.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(fetch(addr, "/", Duration::from_millis(500)).is_err());
    }
}
