//! Deterministic fault injection for cluster torture tests.
//!
//! A worker process reads `STRUDEL_FAULT_PLAN` at startup and arms the
//! clauses addressed to its shard. The plan makes crash scenarios
//! reproducible: "shard 1 exits on its 5th request", "shard 0 panics
//! applying its 2nd delta", "shard 2 stalls 1500ms on request 3" — the
//! exact mid-request, mid-delta, and at-startup windows the supervisor
//! must survive.
//!
//! Grammar (plans separated by `|`, clauses inside a plan by `;`):
//!
//! ```text
//! shard=1;exit;at=req:5
//! shard=0;panic;at=delta:2
//! shard=2;stall=1500;at=req:3
//! shard=3;exit;at=start
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The environment variable a worker reads its fault plan from.
pub const FAULT_PLAN_ENV: &str = "STRUDEL_FAULT_PLAN";

/// What the fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The process exits (code 3) — a crash without unwinding.
    Exit,
    /// The thread panics — exercises the in-process backstops first.
    Panic,
    /// The thread sleeps this long — a hang, as the supervisor sees it.
    Stall(Duration),
}

/// When the fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Before the worker reports ready (crash-loop breaker fodder).
    Start,
    /// On the Nth site request this worker serves (1-based; health and
    /// internal probes don't count).
    Request(u64),
    /// While applying the Nth catch-up delta since this process started
    /// serving (1-based).
    Delta(u64),
}

/// One parsed fault clause, addressed to one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The shard whose worker arms this fault.
    pub shard: usize,
    /// What happens.
    pub action: FaultAction,
    /// When it happens.
    pub trigger: FaultTrigger,
}

impl FaultPlan {
    /// Parses a `|`-separated plan list; malformed plans are skipped
    /// (a torture harness typo should not change which faults fire
    /// silently, but the worker also must not refuse to boot).
    pub fn parse_all(spec: &str) -> Vec<FaultPlan> {
        spec.split('|').filter_map(Self::parse_one).collect()
    }

    fn parse_one(plan: &str) -> Option<FaultPlan> {
        let mut shard = None;
        let mut action = None;
        let mut trigger = None;
        for clause in plan.split(';') {
            let clause = clause.trim();
            if let Some(v) = clause.strip_prefix("shard=") {
                shard = v.parse().ok();
            } else if clause == "exit" {
                action = Some(FaultAction::Exit);
            } else if clause == "panic" {
                action = Some(FaultAction::Panic);
            } else if let Some(ms) = clause.strip_prefix("stall=") {
                action = Some(FaultAction::Stall(Duration::from_millis(ms.parse().ok()?)));
            } else if clause == "at=start" {
                trigger = Some(FaultTrigger::Start);
            } else if let Some(n) = clause.strip_prefix("at=req:") {
                trigger = Some(FaultTrigger::Request(n.parse().ok()?));
            } else if let Some(n) = clause.strip_prefix("at=delta:") {
                trigger = Some(FaultTrigger::Delta(n.parse().ok()?));
            } else if !clause.is_empty() {
                return None;
            }
        }
        Some(FaultPlan {
            shard: shard?,
            action: action?,
            trigger: trigger?,
        })
    }
}

/// The faults one worker process armed for itself, with the request and
/// delta counters the triggers compare against.
#[derive(Debug)]
pub struct ArmedFaults {
    plans: Vec<FaultPlan>,
    requests: AtomicU64,
    deltas: AtomicU64,
}

impl ArmedFaults {
    /// Arms the plans in [`FAULT_PLAN_ENV`] addressed to `shard`; an
    /// absent variable arms nothing.
    pub fn from_env(shard: usize) -> Self {
        let plans = std::env::var(FAULT_PLAN_ENV)
            .map(|s| FaultPlan::parse_all(&s))
            .unwrap_or_default()
            .into_iter()
            .filter(|p| p.shard == shard)
            .collect();
        ArmedFaults {
            plans,
            requests: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
        }
    }

    /// An explicit plan set (tests).
    pub fn new(plans: Vec<FaultPlan>) -> Self {
        ArmedFaults {
            plans,
            requests: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
        }
    }

    /// Fires any `at=start` fault. Call before reporting ready.
    pub fn on_start(&self) {
        for p in &self.plans {
            if p.trigger == FaultTrigger::Start {
                fire(p.action);
            }
        }
    }

    /// Counts one site request and fires any `at=req:N` fault due.
    pub fn on_request(&self) {
        if self.plans.is_empty() {
            return;
        }
        let n = self.requests.fetch_add(1, Ordering::AcqRel) + 1;
        for p in &self.plans {
            if p.trigger == FaultTrigger::Request(n) {
                fire(p.action);
            }
        }
    }

    /// Counts one catch-up delta and fires any `at=delta:N` fault due.
    /// Call *before* applying, so the fault lands mid-apply.
    pub fn on_delta(&self) {
        if self.plans.is_empty() {
            return;
        }
        let n = self.deltas.fetch_add(1, Ordering::AcqRel) + 1;
        for p in &self.plans {
            if p.trigger == FaultTrigger::Delta(n) {
                fire(p.action);
            }
        }
    }
}

fn fire(action: FaultAction) {
    match action {
        FaultAction::Exit => std::process::exit(3),
        FaultAction::Panic => panic!("injected cluster fault"),
        FaultAction::Stall(d) => std::thread::sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_documented_grammar_parses() {
        let plans = FaultPlan::parse_all(
            "shard=1;exit;at=req:5|shard=0;panic;at=delta:2|shard=2;stall=1500;at=req:3|shard=3;exit;at=start",
        );
        assert_eq!(
            plans,
            vec![
                FaultPlan {
                    shard: 1,
                    action: FaultAction::Exit,
                    trigger: FaultTrigger::Request(5),
                },
                FaultPlan {
                    shard: 0,
                    action: FaultAction::Panic,
                    trigger: FaultTrigger::Delta(2),
                },
                FaultPlan {
                    shard: 2,
                    action: FaultAction::Stall(Duration::from_millis(1500)),
                    trigger: FaultTrigger::Request(3),
                },
                FaultPlan {
                    shard: 3,
                    action: FaultAction::Exit,
                    trigger: FaultTrigger::Start,
                },
            ]
        );
    }

    #[test]
    fn malformed_plans_are_dropped_not_misread() {
        assert!(FaultPlan::parse_all("shard=0;exit").is_empty(), "no trigger");
        assert!(FaultPlan::parse_all("exit;at=start").is_empty(), "no shard");
        assert!(FaultPlan::parse_all("shard=0;exit;at=req:x").is_empty());
        assert!(FaultPlan::parse_all("shard=0;explode;at=start").is_empty());
        assert_eq!(
            FaultPlan::parse_all("garbage|shard=1;exit;at=start").len(),
            1,
            "good plans survive bad neighbors"
        );
    }

    #[test]
    fn request_triggers_fire_only_at_their_count() {
        // A stall of zero is an observable no-op — the counter paths run
        // without killing the test process.
        let faults = ArmedFaults::new(vec![FaultPlan {
            shard: 0,
            action: FaultAction::Stall(Duration::from_millis(0)),
            trigger: FaultTrigger::Request(3),
        }]);
        for _ in 0..5 {
            faults.on_request();
        }
        assert_eq!(faults.requests.load(Ordering::Acquire), 5);
        faults.on_delta();
        assert_eq!(faults.deltas.load(Ordering::Acquire), 1, "counted, no delta plan fires");
    }
}
