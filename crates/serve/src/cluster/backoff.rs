//! Restart pacing for crashed workers: exponential backoff with
//! deterministic jitter.
//!
//! The jitter stream is seeded per shard, so a torture run replays the
//! same restart schedule every time — randomness would make the e2e
//! kill tests flaky — while still de-synchronizing shards that died
//! together (each shard's seed differs, so their delays drift apart
//! instead of thundering back in lockstep).

use std::time::Duration;

/// Exponential backoff: `base * 2^attempt`, capped, with ±25%
/// deterministic jitter from a per-instance xorshift stream.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh schedule. `seed` individualizes the jitter stream (use
    /// the shard index); zero is mapped to a fixed non-zero seed since
    /// xorshift has a zero fixed point.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    /// The next delay: doubles each call until the cap, jittered ±25%.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .as_micros() as u64;
        // xorshift64: deterministic, cheap, good enough to spread
        // restart instants.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        // Map to [75%, 125%] of the raw delay.
        let jittered = raw / 2 + (x % raw.max(1)) / 2 + raw / 4;
        Duration::from_micros(jittered)
    }

    /// Resets the schedule after a worker proved stable (lived past the
    /// supervisor's minimum uptime).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Restart attempts since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_until_the_cap_and_jitter_stays_bounded() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(3);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_raw = 0u128;
        for attempt in 0..8u32 {
            let d = b.next_delay().as_micros();
            let raw = base
                .saturating_mul(1 << attempt)
                .min(cap)
                .as_micros();
            assert!(d >= raw * 3 / 4, "attempt {attempt}: {d} < 75% of {raw}");
            assert!(d <= raw * 5 / 4 + 1, "attempt {attempt}: {d} > 125% of {raw}");
            assert!(raw >= prev_raw);
            prev_raw = raw;
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_differ_across_seeds() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(1);
        let run = |seed| {
            let mut b = Backoff::new(base, cap, seed);
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn reset_restarts_the_exponential() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(3), 1);
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(125 + 1));
    }
}
