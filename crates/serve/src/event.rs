//! The event-driven keep-alive transport: one epoll reactor thread
//! owns every connection; a render pool runs the click handlers.
//!
//! The thread-pool transport ([`crate::server`]) spends a thread per
//! in-flight connection and closes after every response, so N browsers
//! holding connections open cost N threads and every click pays a TCP
//! handshake. This transport inverts both costs:
//!
//! * **One reactor thread** multiplexes all sockets through
//!   `epoll_wait` (via the safe [`strudel_epoll`] bindings — this crate
//!   keeps its `forbid(unsafe_code)`). An idle keep-alive connection is
//!   one registered fd and a couple hundred bytes of state; thousands
//!   of them cost no threads at all.
//! * **HTTP/1.1 keep-alive**: after a response, the connection goes
//!   back to reading and the next request skips the handshake.
//!   Pipelined requests already buffered are parsed immediately.
//! * **A render pool** ([`ServerConfig::workers`] threads) runs
//!   [`ClickService::handle`], so a slow page render never stalls the
//!   event loop. Completions come back over a queue and an `eventfd`
//!   wakeup. When the pool's bounded queue is full, the request sheds
//!   with `503` + `Retry-After`, exactly like the thread transport's
//!   backlog.
//!
//! Per-connection lifecycle: `Reading` (accumulate + incrementally
//! parse a head) → `Dispatched` (render pool owns it) → `Writing`
//! (flush the encoded response) → back to `Reading` (keep-alive) or
//! `Draining` (sink the client's unread bytes briefly so closing
//! doesn't RST the response away) or closed. Deadlines bound every
//! state: an idle keep-alive connection closes after
//! [`ServerConfig::keepalive_timeout`] (counted on `/metrics`), a
//! partial head older than [`ServerConfig::timeout`] answers `408`
//! (slow-loris), a stalled response write is cut off, and a failed
//! `accept` deregisters the listener for
//! [`crate::server::ACCEPT_ERROR_BACKOFF`] instead of spinning.

use crate::server::ClickService;

#[cfg(target_os = "linux")]
mod imp {
    use super::ClickService;
    use crate::proto::{self, ParseOutcome};
    use crate::server::{ServerConfig, ServerHandle, ACCEPT_ERROR_BACKOFF, MAX_REQUEST_BYTES};
    use crate::Response;
    use std::collections::VecDeque;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, RawFd};
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};
    use strudel_epoll::{Epoll, Event, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

    /// Reactor tick: the longest `epoll_wait` blocks before deadlines
    /// (idle close, 408, drain, accept re-arm) are swept.
    const TICK_MS: i32 = 50;
    /// How long a closing connection drains unread request bytes.
    const DRAIN_WINDOW: Duration = Duration::from_millis(100);
    /// Token of the listening socket.
    const LISTENER: u64 = u64::MAX;
    /// Token of the wakeup eventfd.
    const WAKEUP: u64 = u64::MAX - 1;
    /// Connection tokens are `generation << 32 | slot`; the generation
    /// keeps 31 bits so no token can collide with the two above.
    const GEN_MASK: u32 = 0x7fff_ffff;

    fn token_for(idx: usize, gen: u32) -> u64 {
        (((gen & GEN_MASK) as u64) << 32) | idx as u64
    }

    /// A request handed to the render pool.
    struct Job {
        token: u64,
        path: String,
        head_only: bool,
        keep_alive: bool,
    }

    /// A rendered response coming back from the pool.
    struct Completion {
        token: u64,
        bytes: Vec<u8>,
        keep_alive: bool,
    }

    enum State {
        /// Accumulating request bytes; parse on every read.
        Reading,
        /// The render pool owns the request; no socket interest (errors
        /// and hangups are still delivered and close the connection).
        Dispatched,
        /// Flushing `out`.
        Writing,
        /// Response flushed, close pending: sink the client's unread
        /// bytes until EOF or the deadline so close doesn't RST.
        Draining(Instant),
    }

    struct Conn {
        stream: TcpStream,
        fd: RawFd,
        gen: u32,
        state: State,
        /// Unparsed request bytes.
        buf: Vec<u8>,
        /// Encoded response being written.
        out: Vec<u8>,
        out_pos: usize,
        /// Whether the connection survives the current response.
        keep_alive_after: bool,
        /// Whether the current response is followed by a drain (the
        /// request was cut short, so unread bytes may be in flight).
        drain_after: bool,
        /// Client closed its sending half.
        eof: bool,
        /// Requests served on this connection.
        served: u64,
        /// Last byte of progress in either direction.
        last_activity: Instant,
        /// When the first byte of the pending request arrived.
        request_started: Option<Instant>,
        /// Currently registered epoll interest.
        interest: u32,
    }

    struct Reactor<S: ClickService> {
        epoll: Epoll,
        wakeup: Arc<EventFd>,
        listener: TcpListener,
        listener_fd: RawFd,
        /// When a failed accept deregistered the listener, the instant
        /// to re-register it.
        accept_rearm: Option<Instant>,
        service: Arc<S>,
        conns: Vec<Option<Conn>>,
        /// Free slots in `conns`.
        free: Vec<usize>,
        /// Per-slot generation, bumped on close so stale events and
        /// completions for a recycled slot are ignored.
        generations: Vec<u32>,
        open: usize,
        jobs: mpsc::SyncSender<Job>,
        completions: Arc<Mutex<VecDeque<Completion>>>,
        stop: Arc<AtomicBool>,
        request_timeout: Duration,
        keepalive_timeout: Duration,
        max_connections: usize,
        retry_after_secs: u64,
    }

    pub(crate) fn serve_epoll<S: ClickService>(
        service: Arc<S>,
        config: ServerConfig,
        listener: TcpListener,
    ) -> io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wakeup = Arc::new(EventFd::new()?);
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER)?;
        epoll.add(wakeup.as_raw_fd(), EPOLLIN, WAKEUP)?;

        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<Job>(config.max_backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let completions = Arc::new(Mutex::new(VecDeque::new()));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let completions = Arc::clone(&completions);
            let wakeup = Arc::clone(&wakeup);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("strudel-render-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue.
                        let job = rx.lock().unwrap().recv();
                        let Ok(job) = job else { break };
                        // Backstop: the service catches its own render
                        // panics, so anything escaping here is a bug in
                        // the dispatch plumbing — answer 500, count it,
                        // keep the worker.
                        let rendered = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            service.handle(&job.path)
                        }));
                        let (response, keep_alive) = match rendered {
                            Ok(r) => (r, job.keep_alive),
                            Err(_) => {
                                service.note_panic();
                                (
                                    Response {
                                        status: 500,
                                        content_type: "text/plain; charset=utf-8",
                                        body: "internal error\n".into(),
                                        degraded: false,
                                    },
                                    false,
                                )
                            }
                        };
                        let bytes =
                            proto::encode_response(&response, job.head_only, keep_alive, None);
                        completions.lock().unwrap().push_back(Completion {
                            token: job.token,
                            bytes,
                            keep_alive,
                        });
                        wakeup.notify();
                    })?,
            );
        }

        let listener_fd = listener.as_raw_fd();
        let mut reactor = Reactor {
            epoll,
            wakeup,
            listener,
            listener_fd,
            accept_rearm: None,
            service,
            conns: Vec::new(),
            free: Vec::new(),
            generations: Vec::new(),
            open: 0,
            jobs: tx,
            completions,
            stop: Arc::clone(&stop),
            request_timeout: config.timeout,
            keepalive_timeout: config.keepalive_timeout,
            max_connections: config.max_connections.max(1),
            retry_after_secs: config.retry_after_secs,
        };
        let reactor_thread = std::thread::Builder::new()
            .name("strudel-serve-reactor".into())
            .spawn(move || reactor.run())?;

        Ok(ServerHandle::new(addr, stop, reactor_thread, workers))
    }

    impl<S: ClickService> Reactor<S> {
        fn run(&mut self) {
            let mut events = vec![Event::default(); 256];
            while !self.stop.load(Ordering::SeqCst) {
                self.tick(&mut events);
            }
            self.shutdown_drain(&mut events);
            // Dropping the reactor drops the job sender; the render
            // workers drain the queue and exit.
        }

        fn tick(&mut self, events: &mut [Event]) {
            let n = self.epoll.wait(events, TICK_MS).unwrap_or(0);
            for ev in events.iter().take(n) {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKEUP => self.wakeup.drain(),
                    token => self.conn_event(token, ev.events),
                }
            }
            self.drain_completions();
            self.sweep();
        }

        /// After stop flips: keep ticking briefly so responses already
        /// dispatched to the render pool still reach their clients,
        /// then close everything.
        fn shutdown_drain(&mut self, events: &mut [Event]) {
            let _ = self.epoll.del(self.listener_fd);
            self.accept_rearm = None;
            let deadline = Instant::now() + self.request_timeout.min(Duration::from_secs(2));
            while Instant::now() < deadline {
                let busy = self.conns.iter().flatten().any(|c| {
                    matches!(c.state, State::Dispatched | State::Writing)
                });
                if !busy {
                    break;
                }
                self.tick(events);
            }
            for idx in 0..self.conns.len() {
                if self.conns[idx].is_some() {
                    self.close(idx);
                }
            }
        }

        // ---- accept path -------------------------------------------------

        fn accept_ready(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.open >= self.max_connections {
                            self.service.note_shed();
                            self.shed(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        self.register(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Persistent accept failure (EMFILE and friends).
                        // Level-triggered epoll would report the listener
                        // ready every tick, so counting and continuing
                        // becomes a busy spin; deregister it and re-arm
                        // after a beat instead.
                        self.service.note_accept_error();
                        let _ = self.epoll.del(self.listener_fd);
                        self.accept_rearm = Some(Instant::now() + ACCEPT_ERROR_BACKOFF);
                        break;
                    }
                }
            }
        }

        /// Best-effort `503` to a connection there is no room for,
        /// written from the reactor under a short timeout.
        fn shed(&self, mut stream: TcpStream) {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let bytes = proto::encode_response(
                &proto::response_503(),
                false,
                false,
                Some(self.retry_after_secs),
            );
            let _ = stream.write_all(&bytes);
        }

        fn register(&mut self, stream: TcpStream) {
            // Keep-alive turnarounds are small writes on both sides; with
            // Nagle on, each click eats a delayed-ACK stall (~40ms).
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let idx = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let gen = self.generations[idx];
            let interest = EPOLLIN | EPOLLRDHUP;
            if self.epoll.add(fd, interest, token_for(idx, gen)).is_err() {
                self.free.push(idx);
                return;
            }
            self.service.note_conn_opened();
            self.open += 1;
            self.conns[idx] = Some(Conn {
                stream,
                fd,
                gen,
                state: State::Reading,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                keep_alive_after: false,
                drain_after: false,
                eof: false,
                served: 0,
                last_activity: Instant::now(),
                request_started: None,
                interest,
            });
        }

        fn close(&mut self, idx: usize) {
            let Some(conn) = self.conns[idx].take() else {
                return;
            };
            let _ = self.epoll.del(conn.fd);
            self.generations[idx] = conn.gen.wrapping_add(1) & GEN_MASK;
            self.free.push(idx);
            self.open -= 1;
            self.service.note_conn_closed();
            // conn.stream drops here, closing the socket.
        }

        // ---- connection events -------------------------------------------

        /// Looks up the live connection a token refers to, if any.
        fn resolve(&self, token: u64) -> Option<usize> {
            let idx = (token & 0xffff_ffff) as usize;
            let gen = (token >> 32) as u32;
            let conn = self.conns.get(idx)?.as_ref()?;
            (conn.gen & GEN_MASK == gen).then_some(idx)
        }

        fn conn_event(&mut self, token: u64, bits: u32) {
            let Some(idx) = self.resolve(token) else {
                return; // stale event for a recycled slot
            };
            if bits & (EPOLLERR | EPOLLHUP) != 0 {
                self.close(idx);
                return;
            }
            if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                self.readable(idx);
            }
            if self.conns[idx].is_some() && bits & EPOLLOUT != 0 {
                self.writable(idx);
            }
        }

        fn set_interest(&mut self, idx: usize, interest: u32) {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.interest == interest {
                return;
            }
            let (fd, token) = (conn.fd, token_for(idx, conn.gen));
            conn.interest = interest;
            if self.epoll.modify(fd, interest, token).is_err() {
                self.close(idx);
            }
        }

        fn readable(&mut self, idx: usize) {
            let mut scratch = [0u8; 4096];
            loop {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                match conn.state {
                    State::Reading => {}
                    State::Draining(_) => {
                        match (&conn.stream).read(&mut scratch) {
                            Ok(0) => self.close(idx), // client done: clean close
                            Ok(_) => continue,        // discard and keep draining
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                            Err(_) => self.close(idx),
                        }
                        return;
                    }
                    // Dispatched/Writing don't ask for EPOLLIN; a stray
                    // readable event is ignored (bytes stay in the
                    // kernel buffer until we come back to Reading).
                    _ => return,
                }
                match (&conn.stream).read(&mut scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.buf.is_empty() {
                            conn.request_started = Some(Instant::now());
                        }
                        conn.last_activity = Instant::now();
                        conn.buf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            self.process_buffer(idx);
        }

        /// Parses the read buffer and advances the state machine:
        /// dispatch a complete request, answer protocol errors inline,
        /// or keep reading.
        fn process_buffer(&mut self, idx: usize) {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if !matches!(conn.state, State::Reading) {
                return;
            }
            match proto::parse_request(&conn.buf, MAX_REQUEST_BYTES as usize) {
                ParseOutcome::Incomplete => {
                    if conn.eof {
                        // EOF mid-head (or a clean close between
                        // requests): nothing to answer.
                        self.close(idx);
                    }
                }
                ParseOutcome::TooLarge => {
                    self.queue_response(idx, &proto::response_431(MAX_REQUEST_BYTES), false, true, None);
                }
                ParseOutcome::Complete { request, consumed } => {
                    conn.buf.drain(..consumed);
                    if request.method != "GET" && request.method != "HEAD" {
                        self.queue_response(idx, &proto::response_405(), false, false, None);
                    } else if request.path.is_empty() {
                        self.queue_response(idx, &proto::response_400(), false, false, None);
                    } else {
                        let head_only = request.head_only();
                        let keep_alive = request.keep_alive;
                        self.dispatch(idx, request.path, head_only, keep_alive);
                    }
                }
            }
        }

        fn dispatch(&mut self, idx: usize, path: String, head_only: bool, keep_alive: bool) {
            let token = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                if conn.served > 0 {
                    self.service.note_keepalive_reuse();
                }
                conn.served += 1;
                conn.state = State::Dispatched;
                conn.request_started = None;
                token_for(idx, conn.gen)
            };
            // While dispatched the socket needs no read/write interest;
            // errors and hangups are delivered regardless.
            self.set_interest(idx, 0);
            match self.jobs.try_send(Job {
                token,
                path,
                head_only,
                keep_alive,
            }) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(_)) => {
                    // Render pool saturated: shed exactly like the
                    // thread transport's full backlog.
                    self.service.note_shed();
                    let retry = self.retry_after_secs;
                    if let Some(conn) = self.conns[idx].as_mut() {
                        conn.state = State::Reading; // let queue_response take over
                    }
                    self.queue_response(idx, &proto::response_503(), false, true, Some(retry));
                }
                Err(mpsc::TrySendError::Disconnected(_)) => self.close(idx),
            }
        }

        /// Encodes `response` and starts writing it. `keep_alive` says
        /// whether the connection survives the response; `drain` adds a
        /// drain window before the close (for responses cutting off an
        /// unfinished request).
        fn queue_response(
            &mut self,
            idx: usize,
            response: &Response,
            keep_alive: bool,
            drain: bool,
            retry_after_secs: Option<u64>,
        ) {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            conn.out = proto::encode_response(response, false, keep_alive, retry_after_secs);
            conn.out_pos = 0;
            conn.keep_alive_after = keep_alive;
            conn.drain_after = drain;
            conn.state = State::Writing;
            self.try_write(idx);
        }

        fn writable(&mut self, idx: usize) {
            let Some(conn) = self.conns[idx].as_ref() else {
                return;
            };
            if matches!(conn.state, State::Writing) {
                self.try_write(idx);
            }
        }

        fn try_write(&mut self, idx: usize) {
            loop {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                if conn.out_pos >= conn.out.len() {
                    break;
                }
                match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        self.close(idx);
                        return;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.set_interest(idx, EPOLLOUT);
                        return;
                    }
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                }
            }
            self.after_write(idx);
        }

        /// The response is fully flushed: drain, keep alive, or close.
        fn after_write(&mut self, idx: usize) {
            let (drain_after, survive) = {
                let Some(conn) = self.conns[idx].as_mut() else {
                    return;
                };
                conn.out = Vec::new();
                conn.out_pos = 0;
                (conn.drain_after, conn.keep_alive_after && !conn.eof)
            };
            if drain_after {
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.state = State::Draining(Instant::now() + DRAIN_WINDOW);
                }
                self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
                return;
            }
            if !survive {
                self.close(idx);
                return;
            }
            // Keep-alive: back to reading. Bytes of the next request may
            // already be buffered (pipelining) — parse them right away
            // rather than waiting for another readable event. Inline
            // error responses close, and real requests leave through the
            // render pool, so this cannot recurse deeply.
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.state = State::Reading;
                conn.last_activity = Instant::now();
                conn.request_started =
                    (!conn.buf.is_empty()).then(Instant::now);
            }
            self.set_interest(idx, EPOLLIN | EPOLLRDHUP);
            self.process_buffer(idx);
        }

        // ---- completions and deadlines -----------------------------------

        fn drain_completions(&mut self) {
            loop {
                let Some(done) = self.completions.lock().unwrap().pop_front() else {
                    break;
                };
                let Some(idx) = self.resolve(done.token) else {
                    continue; // connection died while rendering
                };
                let Some(conn) = self.conns[idx].as_mut() else {
                    continue;
                };
                if !matches!(conn.state, State::Dispatched) {
                    continue;
                }
                conn.out = done.bytes;
                conn.out_pos = 0;
                conn.keep_alive_after = done.keep_alive;
                conn.drain_after = false;
                conn.state = State::Writing;
                self.try_write(idx);
            }
        }

        /// Enforces every deadline once per tick.
        fn sweep(&mut self) {
            let now = Instant::now();
            if let Some(rearm) = self.accept_rearm {
                if now >= rearm
                    && self
                        .epoll
                        .add(self.listener_fd, EPOLLIN, LISTENER)
                        .is_ok()
                {
                    self.accept_rearm = None;
                    self.accept_ready();
                }
            }
            for idx in 0..self.conns.len() {
                let Some(conn) = self.conns[idx].as_ref() else {
                    continue;
                };
                match conn.state {
                    State::Reading if conn.buf.is_empty() => {
                        // Idle between requests: the keep-alive deadline.
                        if now.duration_since(conn.last_activity) >= self.keepalive_timeout {
                            self.service.note_idle_closed();
                            self.close(idx);
                        }
                    }
                    State::Reading => {
                        // Partial head aging out: the slow-loris guard.
                        let started = conn.request_started.unwrap_or(conn.last_activity);
                        if now.duration_since(started) >= self.request_timeout {
                            self.queue_response(idx, &proto::response_408(), false, true, None);
                        }
                    }
                    State::Writing => {
                        if now.duration_since(conn.last_activity) >= self.request_timeout {
                            self.close(idx);
                        }
                    }
                    State::Draining(deadline) => {
                        if now >= deadline {
                            self.close(idx);
                        }
                    }
                    // The render pool owns dispatched requests; render
                    // time is the service's business, not a transport
                    // deadline.
                    State::Dispatched => {}
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::ClickService;
    use crate::server::{ServerConfig, ServerHandle};
    use std::net::TcpListener;
    use std::sync::Arc;

    pub(crate) fn serve_epoll<S: ClickService>(
        _service: Arc<S>,
        _config: ServerConfig,
        _listener: TcpListener,
    ) -> std::io::Result<ServerHandle> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "the epoll transport requires Linux; use --transport threads",
        ))
    }
}

pub(crate) use imp::serve_epoll;
