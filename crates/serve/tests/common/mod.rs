//! Shared test support: the transport matrix.
//!
//! Serve's end-to-end suites run against every transport the platform
//! supports, so the thread pool and the epoll reactor are held to the
//! same observable behavior. `STRUDEL_TEST_TRANSPORT=threads|epoll`
//! restricts a run to one transport (CI uses this for the epoll-only
//! matrix leg).

use strudel_serve::Transport;

/// The transports this test run covers.
pub fn transports() -> Vec<Transport> {
    match std::env::var("STRUDEL_TEST_TRANSPORT").as_deref() {
        Ok("threads") => vec![Transport::Threads],
        Ok("epoll") => {
            assert!(
                Transport::Epoll.is_supported(),
                "STRUDEL_TEST_TRANSPORT=epoll on a platform without epoll"
            );
            vec![Transport::Epoll]
        }
        Ok(other) => panic!("unknown STRUDEL_TEST_TRANSPORT '{other}' (threads|epoll)"),
        Err(_) => {
            let mut all = vec![Transport::Threads];
            if Transport::Epoll.is_supported() {
                all.push(Transport::Epoll);
            }
            all
        }
    }
}
