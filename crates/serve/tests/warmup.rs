//! Parallel cold-cache warmup: `SiteService::warm` pre-renders every
//! reachable page, across workers, with byte-identical output to cold
//! click-time rendering.

use std::sync::Arc;

use strudel::sites::news_site;
use strudel_schema::dynamic::Mode;
use strudel_serve::{serve, ServerConfig, SiteService};
use strudel_struql::Parallelism;
use strudel_workload::news::{generate, NewsConfig};

fn service() -> SiteService {
    let corpus = generate(&NewsConfig {
        articles: 30,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().unwrap();
    SiteService::new(&site, Mode::Context)
}

/// Every page URL reachable from the roots, via the service's own router.
fn all_urls(service: &SiteService) -> Vec<String> {
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = service.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    urls
}

#[test]
fn warm_prerenders_every_reachable_page() {
    let svc = service();
    let report = svc.warm(Parallelism::Threads(4)).unwrap();
    assert!(report.pages >= 10, "warmed a real site: {report:?}");
    assert!(report.levels >= 2, "roots plus at least one child level");
    assert_eq!(svc.cache().len(), report.pages);

    // Every subsequent page fetch is a cache hit: no new misses.
    let urls = all_urls(&svc);
    let misses_after_warm = svc.cache().stats().misses;
    for url in urls.iter().filter(|u| u.starts_with("/page/")) {
        assert_eq!(svc.handle(url).status, 200, "{url}");
    }
    assert_eq!(
        svc.cache().stats().misses,
        misses_after_warm,
        "warmed pages never miss"
    );
}

#[test]
fn warmed_pages_match_cold_rendering_bytes() {
    let cold = service();
    let warm = service();
    warm.warm(Parallelism::Threads(4)).unwrap();
    // Also exercise the sequential path for the same comparison.
    let seq = service();
    seq.warm(Parallelism::Sequential).unwrap();

    for url in all_urls(&cold) {
        let reference = cold.handle(&url);
        assert_eq!(reference.status, 200, "{url}");
        assert_eq!(warm.handle(&url).body, reference.body, "{url}");
        assert_eq!(seq.handle(&url).body, reference.body, "{url}");
    }
}

#[test]
fn warm_is_idempotent() {
    let svc = service();
    let first = svc.warm(Parallelism::Threads(2)).unwrap();
    let cached = svc.cache().len();
    let second = svc.warm(Parallelism::Threads(2)).unwrap();
    assert_eq!(first.pages, second.pages);
    assert_eq!(svc.cache().len(), cached);
}

#[test]
fn server_config_warm_starts_hot() {
    let svc = Arc::new(service());
    let server = serve(
        svc.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            warm: Some(Parallelism::Threads(4)),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!svc.cache().is_empty(), "server started with a warm cache");
    server.shutdown();
}
