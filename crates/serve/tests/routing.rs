//! URL routing round-trip properties: every page key a site can produce —
//! and plenty it can't — must survive `PageKey → URL → PageKey` intact,
//! including keys whose values need percent-encoding.

use strudel_graph::{FileKind, Graph, Oid, Value};
use strudel_prng::{choose, Rng, SeedableRng, SmallRng};
use strudel_schema::dynamic::{DynTarget, DynamicSite, Mode, PageKey};
use strudel_serve::router::{page_path, parse_page_path};
use strudel_workload::{news, org};

/// Every page reachable from the roots by BFS over page links.
fn crawl(engine: &DynamicSite, root_collection: &str) -> Vec<PageKey> {
    let mut seen: Vec<PageKey> = engine.roots(root_collection).unwrap();
    let mut queue = seen.clone();
    while let Some(key) = queue.pop() {
        let view = engine.visit(&key).unwrap();
        for (_, target) in &view.edges {
            if let DynTarget::Page(child) = target {
                if !seen.contains(child) {
                    seen.push(child.clone());
                    queue.push(child.clone());
                }
            }
        }
    }
    seen
}

#[test]
fn every_news_page_round_trips() {
    let corpus = news::generate(&news::NewsConfig {
        articles: 40,
        ..Default::default()
    });
    let site = strudel::sites::news_site(&corpus.pages).build().unwrap();
    let engine = DynamicSite::new(site.database.clone(), &site.program, Mode::Context);
    let pages = crawl(&engine, "FrontRoot");
    assert!(pages.len() > 40, "front + sections + articles: {}", pages.len());
    let db = engine.database();
    for key in &pages {
        let url = page_path(key, db.graph());
        assert_eq!(
            parse_page_path(&url, db.graph()).as_ref(),
            Some(key),
            "{url}"
        );
    }
}

#[test]
fn every_org_page_round_trips() {
    let data = org::generate(&org::OrgConfig {
        people: 60,
        ..Default::default()
    });
    let site = strudel::sites::org_site(
        &data.people_csv,
        &data.departments_csv,
        &data.projects_rec,
        &data.demos_rec,
        &data.legacy_html,
    )
    .build()
    .unwrap();
    let engine = DynamicSite::new(site.database.clone(), &site.program, Mode::Context);
    let pages = crawl(&engine, &site.root_collection);
    assert!(pages.len() > 60, "{}", pages.len());
    let db = engine.database();
    for key in &pages {
        let url = page_path(key, db.graph());
        assert_eq!(parse_page_path(&url, db.graph()).as_ref(), Some(key), "{url}");
    }
}

/// A value of a random type, biased toward strings that need escaping.
fn arb_value(rng: &mut SmallRng, graph: &Graph) -> Value {
    const HOSTILE: [&str; 10] = [
        "plain",
        "with space",
        "slash/inside",
        "query?x=1&y=2",
        "per%25cent and %",
        "dot..dot",
        "ünïcode ✓ — naïve",
        "\"quoted\" <tags>",
        "",
        "colon:colon",
    ];
    match rng.gen_range(0..8usize) {
        0 => Value::Node(Oid::from_index(rng.gen_range(0..graph.node_count()))),
        1 => Value::Int(rng.gen_range(-1_000_000i64..1_000_000)),
        2 => Value::Float(rng.gen_f64() * 2e6 - 1e6),
        3 => Value::Bool(rng.gen_bool(0.5)),
        4 => Value::string(*choose(rng, &HOSTILE)),
        5 => Value::url(format!("http://example.org/{}", rng.gen_range(0..100u32))),
        6 => {
            let kind = *choose(
                rng,
                &[FileKind::Text, FileKind::PostScript, FileKind::Image, FileKind::Html],
            );
            Value::file(kind, format!("dir with space/f{}.x", rng.gen_range(0..50u32)))
        }
        _ => Value::string(format!("s{}", rng.gen_range(0..10_000u32))),
    }
}

#[test]
fn arbitrary_keys_round_trip() {
    let mut graph = Graph::new();
    graph.add_named_node("plain");
    graph.add_named_node("with space");
    graph.add_named_node("naïve/ünïcode%name");
    graph.add_node();
    graph.add_node();

    let mut rng = SmallRng::seed_from_u64(0x5eed_9000);
    const SYMBOLS: [&str; 4] = ["ArticlePage", "Page With Space", "P%cent", "Ünï"];
    for case in 0..256 {
        let symbol = (*choose(&mut rng, &SYMBOLS)).to_string();
        let n_args = rng.gen_range(0..4usize);
        let args: Vec<Value> = (0..n_args).map(|_| arb_value(&mut rng, &graph)).collect();
        let key = PageKey { symbol, args };
        let url = page_path(&key, &graph);
        assert!(
            url.is_ascii() && !url.contains(' '),
            "URLs are ascii, space-free: {url}"
        );
        assert_eq!(
            parse_page_path(&url, &graph),
            Some(key.clone()),
            "case {case}: {url}"
        );
    }
}

#[test]
fn hostile_paths_do_not_panic() {
    let mut graph = Graph::new();
    graph.add_named_node("a");
    let mut rng = SmallRng::seed_from_u64(0x5eed_9001);
    const ALPHABET: [char; 16] = [
        '/', '%', ':', '.', 'a', 'Z', '0', '?', '#', '&', '=', ' ', 'é', '\\', '~', '-',
    ];
    for _ in 0..512 {
        let len = rng.gen_range(0..40usize);
        let path: String = (0..len).map(|_| *choose(&mut rng, &ALPHABET)).collect();
        // Must never panic, whatever it returns.
        let _ = parse_page_path(&path, &graph);
        let _ = parse_page_path(&format!("/page/{path}"), &graph);
        let _ = strudel_serve::router::parse_data_path(&format!("/data/{path}"), &graph);
    }
}

/// A random string over a hostile alphabet: embedded NULs, lone and
/// doubled percent signs, multi-byte UTF-8, escape-looking substrings.
fn arb_hostile_string(rng: &mut SmallRng) -> String {
    const PIECES: [&str; 14] = [
        "%", "%%", "%41", "%%41", "%2", "%g1", "\0", "a", "Z9", " ",
        "é", "日本", "\u{10348}", ":",
    ];
    let len = rng.gen_range(0..12usize);
    (0..len).map(|_| *choose(rng, &PIECES)).collect()
}

#[test]
fn pct_encode_decode_round_trips_seeded_hostile_strings() {
    use strudel_serve::router::{pct_decode, pct_encode};
    let mut rng = SmallRng::seed_from_u64(0x5eed_9002);
    for case in 0..2048 {
        let s = arb_hostile_string(&mut rng);
        let encoded = pct_encode(&s);
        assert!(
            encoded.bytes().all(|b| matches!(
                b,
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b'%'
            )),
            "case {case}: encoding emits only unreserved bytes and escapes: {encoded:?}"
        );
        assert_eq!(
            pct_decode(&encoded).as_deref(),
            Some(s.as_str()),
            "case {case}: {encoded:?}"
        );
    }
}

#[test]
fn pct_decode_never_panics_on_garbage() {
    use strudel_serve::router::pct_decode;
    let mut rng = SmallRng::seed_from_u64(0x5eed_9003);
    const ALPHABET: [char; 12] =
        ['%', '0', '4', '1', 'f', 'F', 'g', 'a', '\0', 'é', '~', '.'];
    for _ in 0..4096 {
        let len = rng.gen_range(0..16usize);
        let s: String = (0..len).map(|_| *choose(&mut rng, &ALPHABET)).collect();
        // Any outcome is fine; panicking or looping is not.
        if let Some(decoded) = pct_decode(&s) {
            // Decoding is only "successful" for well-formed escapes, so
            // re-encoding the result must round-trip back to it.
            use strudel_serve::router::pct_encode;
            assert_eq!(pct_decode(&pct_encode(&decoded)).as_deref(), Some(decoded.as_str()));
        }
    }
}

#[test]
fn pct_decode_edge_cases() {
    use strudel_serve::router::{pct_decode, pct_encode};
    // Lone and truncated escapes are rejected, not mis-decoded.
    assert_eq!(pct_decode("%"), None);
    assert_eq!(pct_decode("a%"), None);
    assert_eq!(pct_decode("%4"), None);
    // An overlong-looking "%%41" is a malformed first escape.
    assert_eq!(pct_decode("%%41"), None);
    // Embedded NUL survives a round trip (it is a valid Rust string byte).
    assert_eq!(pct_encode("\0"), "%00");
    assert_eq!(pct_decode("%00").as_deref(), Some("\0"));
    // Escapes that decode to invalid UTF-8 are rejected.
    assert_eq!(pct_decode("%c3"), None, "truncated 2-byte sequence");
    assert_eq!(pct_decode("%ed%a0%80"), None, "surrogate half");
}
