//! Failure-mode regression tests: a panicking handler must cost one
//! request (500 + counter), never a worker; a saturated backlog must shed
//! with a `503` + `Retry-After`, never queue unbounded work; and both
//! outcomes must be visible on `/metrics`. Each scenario runs against
//! every supported transport (thread pool and epoll reactor).

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use strudel::sites::news_site;
use strudel_schema::dynamic::Mode;
use strudel_serve::{serve, FaultProbe, ServerConfig, SiteService};
use strudel_workload::news::{generate, NewsConfig};

fn service() -> Arc<SiteService> {
    let corpus = generate(&NewsConfig {
        articles: 8,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().unwrap();
    Arc::new(SiteService::new(&site, Mode::Context))
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    // A shed connection may be answered and closed before the request is
    // even written; tolerate the failed write and read what was sent.
    // `Connection: close` keeps `read_to_string` prompt on the reactor.
    let _ = write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn a_panicking_handler_costs_one_request_not_the_server() {
    for transport in common::transports() {
        let svc = service();
        let server = serve(
            svc.clone(),
            ServerConfig {
                workers: 2,
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));

        svc.arm_probe("/boom", FaultProbe::Panic);
        for _ in 0..3 {
            let r = get(addr, "/boom");
            assert!(r.starts_with("HTTP/1.1 500"), "panic answers 500: {r}");
        }
        svc.clear_probes();
        assert_eq!(svc.panics_total(), 3, "every panic counted ({transport:?})");

        // Both workers took a panic; both must still be serving.
        for _ in 0..4 {
            assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        }
        assert!(get(addr, "/boom").starts_with("HTTP/1.1 404"), "probe cleared");

        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("strudel_panics_total 3"),
            "panics exposed on /metrics: {metrics}"
        );
        server.shutdown();
    }
}

#[test]
fn a_saturated_backlog_sheds_with_retry_after() {
    for transport in common::transports() {
        let svc = service();
        let server = serve(
            svc.clone(),
            ServerConfig {
                workers: 1,
                max_backlog: 1,
                retry_after_secs: 7,
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));

        // Stall the single worker, fill the one backlog slot, then watch
        // further connections bounce straight off the accept path.
        svc.arm_probe("/stall", FaultProbe::Stall(Duration::from_millis(900)));
        let stalled: Vec<_> = (0..2)
            .map(|_| {
                let h = std::thread::spawn(move || get(addr, "/stall"));
                std::thread::sleep(Duration::from_millis(150));
                h
            })
            .collect();

        let mut shed = 0;
        for _ in 0..4 {
            let r = get(addr, "/");
            if r.starts_with("HTTP/1.1 503") {
                assert!(r.contains("Retry-After: 7"), "shed names a retry delay: {r}");
                assert!(r.contains("Connection: close"), "{r}");
                shed += 1;
            }
        }
        assert!(shed >= 1, "worker stalled + backlog full must shed ({transport:?})");
        assert!(svc.shed_total() >= shed, "sheds counted");

        // The stalled requests still complete (the probe path is a 404),
        // and once the stall drains the server answers normally again.
        for h in stalled {
            let r = h.join().unwrap();
            assert!(r.starts_with("HTTP/1.1 404"), "stalled request served: {r}");
        }
        svc.clear_probes();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("strudel_shed_total"),
            "sheds exposed on /metrics: {metrics}"
        );
        server.shutdown();
    }
}

#[test]
fn an_oversized_shed_request_still_receives_its_503() {
    for transport in common::transports() {
        let svc = service();
        let server = serve(
            svc.clone(),
            ServerConfig {
                workers: 1,
                max_backlog: 1,
                retry_after_secs: 3,
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));

        // Stall the single worker and fill the backlog, as in the shed
        // test above — but send >1 KiB of request. The old shed path
        // drained at most one 1 KiB read before closing, so the unread
        // tail made the kernel RST the connection and discard the 503 in
        // flight.
        svc.arm_probe("/stall", FaultProbe::Stall(Duration::from_millis(900)));
        let stalled: Vec<_> = (0..2)
            .map(|_| {
                let h = std::thread::spawn(move || get(addr, "/stall"));
                std::thread::sleep(Duration::from_millis(150));
                h
            })
            .collect();

        let mut shed = 0;
        for _ in 0..4 {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = write!(s, "GET / HTTP/1.1\r\nConnection: close\r\n");
            let filler = format!("X-Pad: {}\r\n", "p".repeat(1015));
            for _ in 0..4 {
                let _ = s.write_all(filler.as_bytes());
            }
            let _ = s.write_all(b"\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            // Every connection must yield a complete HTTP response — an
            // empty read here is the RST the drain exists to prevent.
            assert!(out.starts_with("HTTP/1.1"), "response lost to a reset: {out:?}");
            if out.starts_with("HTTP/1.1 503") {
                assert!(out.contains("Retry-After: 3"), "{out}");
                shed += 1;
            }
        }
        assert!(shed >= 1, "worker stalled + backlog full must shed ({transport:?})");

        for h in stalled {
            let _ = h.join();
        }
        svc.clear_probes();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }
}

#[test]
fn timeout_config_errors_are_counted_not_swallowed() {
    let svc = service();
    assert_eq!(svc.timeout_config_errors_total(), 0);
    let err = std::io::Error::other("setsockopt failed");
    svc.note_timeout_config_error(&err);
    svc.note_timeout_config_error(&err);
    assert_eq!(svc.timeout_config_errors_total(), 2);
    let text = svc.stats().to_text();
    assert!(
        text.contains("strudel_timeout_config_errors_total 2"),
        "{text}"
    );
}

#[test]
fn a_stalled_header_read_answers_408_not_a_dispatch() {
    // A client that opens a connection, sends half a request head, and
    // then stalls past the request timeout must get a 408 — the old
    // thread-transport reader fell through and dispatched the half
    // request as if it were complete.
    for transport in common::transports() {
        let svc = service();
        let server = serve(
            svc.clone(),
            ServerConfig {
                workers: 2,
                timeout: Duration::from_millis(300),
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        let mut s = TcpStream::connect(addr).unwrap();
        // Half a head: no terminating blank line, then silence.
        write!(s, "GET / HTTP/1.1\r\nHost: local").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(
            out.starts_with("HTTP/1.1 408"),
            "stalled head answers 408 ({transport:?}): {out:?}"
        );
        assert!(out.contains("Connection: close"), "{out}");

        // The stalled connection cost nothing: the server still serves.
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }
}

#[test]
fn a_poisoned_store_degrades_readiness_but_keeps_serving_reads() {
    use strudel_graph::{GraphDelta, Oid, Value};
    use strudel_repo::vfs::{FaultMode, FaultVfs};
    use strudel_repo::{PagedRepo, PagerConfig};

    for transport in common::transports() {
        let dir = std::env::temp_dir().join(format!(
            "strudel-poison-{}-{:?}-{transport:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let corpus = generate(&NewsConfig {
            articles: 8,
            ..Default::default()
        });
        let site = news_site(&corpus.pages).build().unwrap();
        let vfs = Arc::new(FaultVfs::new());
        let store = PagedRepo::bulk_load_with(
            vfs.clone(),
            &dir,
            PagerConfig::default(),
            site.database.graph(),
        )
        .unwrap();
        let svc =
            Arc::new(SiteService::new(&site, Mode::Context).with_paged_store(store));
        let server = serve(
            svc.clone(),
            ServerConfig {
                workers: 2,
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        assert!(get(addr, "/readyz").starts_with("HTTP/1.1 200"), "healthy at first");

        // The next store write fails mid-commit: the WAL/page write that
        // a checkpoint-shaped delta needs dies under live traffic.
        let mut delta = GraphDelta::new();
        delta.add_edge(Oid::from_index(0), "note", Value::string("poison probe"));
        vfs.arm_fault(vfs.op_count(), FaultMode::Fail);
        let err = svc.apply_delta(&delta);
        assert!(err.is_err(), "the failed commit surfaces as an error");
        assert!(svc.store_poisoned(), "the store is poisoned, not limping");

        // Contract: reads keep serving — a poisoned store must never
        // become a 500 loop — while readiness flips so a supervisor can
        // recycle this replica at leisure.
        for _ in 0..5 {
            assert!(
                get(addr, "/").starts_with("HTTP/1.1 200"),
                "reads keep serving ({transport:?})"
            );
        }
        let readyz = get(addr, "/readyz");
        assert!(
            readyz.starts_with("HTTP/1.1 503"),
            "poisoned readiness is 503 ({transport:?}): {readyz}"
        );
        let metrics = get(addr, "/metrics");
        assert!(
            metrics.contains("strudel_store_poisoned 1"),
            "poison visible on /metrics: {metrics}"
        );

        // Later writes refuse cleanly (no panic, no partial commit) and
        // reads still serve after each refusal.
        let mut delta = GraphDelta::new();
        delta.add_edge(Oid::from_index(1), "note", Value::string("after poison"));
        assert!(svc.apply_delta(&delta).is_err(), "writes stay refused");
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
