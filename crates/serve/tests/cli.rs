//! Integration tests driving the `strudel` CLI binary against the demo
//! site directory.

use std::path::PathBuf;
use std::process::Command;

fn demo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/site-demo")
}

fn strudel(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_strudel"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn build_writes_the_site() {
    let out = std::env::temp_dir().join(format!("strudel-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let dir = demo_dir();
    let result = strudel(&["build", dir.to_str().unwrap(), "-o", out.to_str().unwrap()]);
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("static Proved"), "{stdout}");
    assert!(stdout.contains("5 pages"), "{stdout}");
    assert!(out.join("HomePage.html").exists());
    let home = std::fs::read_to_string(out.join("HomePage.html")).unwrap();
    assert!(home.contains("YearPage_1998_.html"));
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn check_reports_statistics() {
    let dir = demo_dir();
    let result = strudel(&["check", dir.to_str().unwrap()]);
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("ok: 1 sources"), "{stdout}");
}

#[test]
fn schema_emits_dot() {
    let dir = demo_dir();
    let result = strudel(&["schema", dir.to_str().unwrap()]);
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("digraph site_schema"));
    assert!(stdout.contains("YearPage"));
}

#[test]
fn stats_prints_the_t1_row() {
    let dir = demo_dir();
    let result = strudel(&["stats", dir.to_str().unwrap()]);
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("query-lines"));
    assert!(stdout.contains("site-demo"));
}

#[test]
fn check_reports_reachability() {
    let dir = demo_dir();
    let result = strudel(&["check", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("every site node is reachable"), "{stdout}");
}

#[test]
fn guide_reports_discovered_schema() {
    let dir = demo_dir();
    let result = strudel(&["guide", dir.to_str().unwrap()]);
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("collection Publications"), "{stdout}");
    // booktitle appears on one of the two entries only.
    assert!(stdout.contains("booktitle"), "{stdout}");
    assert!(stdout.contains("optional"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let dir = demo_dir();
    let result = strudel(&["frobnicate", dir.to_str().unwrap()]);
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_site_dir_fails_cleanly() {
    let result = strudel(&["build", "/nonexistent/site"]);
    assert!(!result.status.success());
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("site.struql"), "{stderr}");
}
