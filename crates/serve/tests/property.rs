//! Seeded randomized deltas against a live service.
//!
//! The property: after any mixed insert/delete delta, the live service
//! (which invalidates incrementally and keeps serving from its caches)
//! must answer every crawled URL with bytes identical to a service built
//! from scratch on the post-delta database. A stale cache entry that
//! invalidation failed to evict, a half-applied snapshot, or a crash in
//! `dirty_pages` all fail this loop. Deltas are generated from
//! `strudel-prng`, so every failure reproduces from its seed.

use std::collections::HashSet;
use std::sync::Arc;

use strudel_graph::{ddl, Graph, GraphDelta, Oid, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::{Database, IndexLevel};
use strudel_schema::dynamic::Mode;
use strudel_serve::SiteService;
use strudel_template::TemplateSet;

const QUERY: &str = r#"
    create RootPage()
    where Articles(x)
    create ArticlePage(x)
    link RootPage() -> "story" -> ArticlePage(x)
    collect Roots(RootPage()), ArticlePages(ArticlePage(x))
    { where x -> "title" -> t
      link ArticlePage(x) -> "title" -> t }
    { where x -> "body" -> b
      link ArticlePage(x) -> "body" -> b }
"#;

fn base_graph() -> Graph {
    ddl::parse(
        r#"
        object a1 in Articles { title : "First"; body : "alpha"; }
        object a2 in Articles { title : "Second"; body : "beta"; }
        object a3 in Articles { title : "Third"; body : "gamma"; }
        object a4 in Articles { title : "Fourth"; body : "delta"; }
    "#,
    )
    .unwrap()
}

fn build_service(graph: Graph) -> SiteService {
    let db = Arc::new(Database::from_graph(graph, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    let mut templates = TemplateSet::new();
    templates
        .add_template("article", "<html><h1><SFMT title></h1><p><SFMT body></p></html>")
        .unwrap();
    templates
        .add_template("root", "<html><SFMT story UL ORDER=ascend KEY=title></html>")
        .unwrap();
    templates.assign_object("RootPage", "root");
    templates.assign_collection("ArticlePages", "article");
    SiteService::from_parts(db, &program, templates, "Roots", Mode::Context)
}

/// A random, always-applicable mixed delta over the current graph.
/// Removals are drawn from edges/members that exist and deduplicated so
/// the delta never fails to apply; one op flavor is the self-cancelling
/// create-link-unlink sequence that used to crash `dirty_pages`.
fn random_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let mut next_oid = g.node_count();
    let mut removed_edges: HashSet<(Oid, String, String)> = HashSet::new();
    let mut uncollected: HashSet<String> = HashSet::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..5u32) {
            0 => {
                // A brand-new article.
                let oid = Oid::from_index(next_oid);
                next_oid += 1;
                delta.add_node(None);
                delta.add_edge(
                    oid,
                    "title",
                    Value::string(format!("New {}", rng.gen_range(0..1000u32)).as_str()),
                );
                if rng.gen_bool(0.5) {
                    delta.add_edge(oid, "body", Value::string("fresh"));
                }
                delta.collect("Articles", Value::Node(oid));
            }
            1 => {
                // A new attribute on an existing node.
                let oid = Oid::from_index(rng.gen_range(0..g.node_count()));
                let label = *strudel_prng::choose(rng, &["title", "body", "note"]);
                delta.add_edge(
                    oid,
                    label,
                    Value::string(format!("v{}", rng.gen_range(0..1000u32)).as_str()),
                );
            }
            2 => {
                // Remove one existing edge (at most once per delta).
                let mut candidates = Vec::new();
                for idx in 0..g.node_count() {
                    let oid = Oid::from_index(idx);
                    for e in g.edges(oid) {
                        candidates.push((oid, g.label_name(e.label).to_string(), e.to.clone()));
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (oid, label, to) = strudel_prng::choose(rng, &candidates).clone();
                if removed_edges.insert((oid, label.clone(), format!("{to:?}"))) {
                    delta.remove_edge(oid, &label, to);
                }
            }
            3 => {
                // Drop one article from the collection.
                let members = g.members_str("Articles");
                if members.is_empty() {
                    continue;
                }
                let member = strudel_prng::choose(rng, members).clone();
                if uncollected.insert(format!("{member:?}")) {
                    delta.uncollect("Articles", member);
                }
            }
            _ => {
                // The self-cancelling sequence: create, link, unlink.
                let oid = Oid::from_index(next_oid);
                next_oid += 1;
                let title = Value::string("Ephemeral");
                delta.add_node(None);
                delta.add_edge(oid, "title", title.clone());
                delta.collect("Articles", Value::Node(oid));
                delta.remove_edge(oid, "title", title);
                delta.uncollect("Articles", Value::Node(oid));
            }
        }
    }
    delta
}

/// Every URL reachable from `/` by following `/page/…` hrefs.
fn crawl(service: &SiteService) -> Vec<String> {
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = service.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    urls
}

#[test]
fn random_mixed_deltas_keep_live_service_equal_to_fresh_build() {
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graph = base_graph();
        let live = build_service(graph.clone());
        // Pre-warm so later rounds exercise cached pages, not just misses.
        for url in crawl(&live) {
            live.handle(&url);
        }

        for round in 0..6 {
            let delta = random_delta(&mut rng, &graph);
            delta.apply(&mut graph).expect("generated deltas always apply");
            live.apply_delta(&delta)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));

            let fresh = build_service(graph.clone());
            let live_urls = crawl(&live);
            let fresh_urls = crawl(&fresh);
            assert_eq!(
                live_urls, fresh_urls,
                "seed {seed} round {round}: reachable URL sets diverged"
            );
            for url in &live_urls {
                let a = live.handle(url);
                let b = fresh.handle(url);
                assert_eq!(
                    (a.status, a.body),
                    (b.status, b.body),
                    "seed {seed} round {round}: {url} diverged after {:?}",
                    delta.ops()
                );
            }
        }
    }
}
