//! Delta-driven cache invalidation at the service level: editing article
//! X evicts X's rendition (and the pages whose link text shows X), while
//! untouched pages keep serving straight from the rendered-HTML cache —
//! asserted through the cache hit/miss counters.

use std::sync::Arc;
use strudel_graph::{ddl, GraphDelta, Value};
use strudel_repo::{Database, IndexLevel};
use strudel_schema::dynamic::{Mode, PageKey};
use strudel_serve::SiteService;
use strudel_template::TemplateSet;

const QUERY: &str = r#"
    create RootPage()
    where Articles(x)
    create ArticlePage(x)
    link RootPage() -> "story" -> ArticlePage(x)
    collect Roots(RootPage()), ArticlePages(ArticlePage(x))
    { where x -> "title" -> t
      link ArticlePage(x) -> "title" -> t }
    { where x -> "body" -> b
      link ArticlePage(x) -> "body" -> b }
"#;

fn service() -> SiteService {
    let g = ddl::parse(
        r#"
        object a1 in Articles { title : "First post"; body : "alpha"; }
        object a2 in Articles { title : "Second post"; body : "beta"; }
        object a3 in Articles { title : "Third post"; body : "gamma"; }
    "#,
    )
    .unwrap();
    let db = Arc::new(Database::from_graph(g, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    let mut templates = TemplateSet::new();
    templates
        .add_template("article", "<html><h1><SFMT title></h1><p><SFMT body></p></html>")
        .unwrap();
    templates
        .add_template("root", "<html><SFMT story UL ORDER=ascend KEY=title></html>")
        .unwrap();
    templates.assign_object("RootPage", "root");
    templates.assign_collection("ArticlePages", "article");
    SiteService::from_parts(db, &program, templates, "Roots", Mode::Context)
}

fn article_key(service: &SiteService, name: &str) -> PageKey {
    let db = service.engine().database();
    PageKey {
        symbol: "ArticlePage".into(),
        args: vec![Value::Node(db.graph().node_by_name(name).unwrap())],
    }
}

#[test]
fn delta_evicts_dirty_article_but_not_neighbors() {
    let service = service();
    let x = article_key(&service, "a1");
    let y = article_key(&service, "a2");
    let x_url = service.url_of(&x);
    let y_url = service.url_of(&y);

    // Cold: both render and cache.
    let x_before = service.handle(&x_url);
    assert_eq!(x_before.status, 200);
    assert!(x_before.body.contains("<h1>First post</h1>"), "{}", x_before.body);
    assert_eq!(service.handle(&y_url).status, 200);
    let warm = service.cache().stats();
    assert_eq!((warm.hits, warm.misses, warm.entries), (0, 2, 2));

    // Warm: second fetches are pure cache hits.
    service.handle(&x_url);
    service.handle(&y_url);
    assert_eq!(service.cache().stats().hits, 2);

    // Edit X's title through a delta.
    let db = service.engine().database();
    let a1 = db.graph().node_by_name("a1").unwrap();
    drop(db);
    let mut delta = GraphDelta::new();
    delta.remove_edge(a1, "title", Value::string("First post"));
    delta.add_edge(a1, "title", Value::string("First post, revised"));
    let outcome = service.apply_delta(&delta).unwrap();
    assert!(outcome.engine.dirty.contains(&x), "{:?}", outcome.engine.dirty);
    assert!(!outcome.engine.dirty.contains(&y));
    // X evicted; the root's rendition shows X's title (KEY + link text),
    // so it would have been evicted too had it been cached — here only X
    // and Y are cached, so exactly one rendition goes.
    assert_eq!(outcome.html_evicted, 1);
    assert_eq!(service.cache().len(), 1);

    // X re-renders with the new content (a miss)...
    let stats = service.cache().stats();
    let x_after = service.handle(&x_url);
    assert!(x_after.body.contains("First post, revised"), "{}", x_after.body);
    assert_eq!(service.cache().stats().misses, stats.misses + 1);
    assert_eq!(service.cache().stats().hits, stats.hits);

    // ...while untouched Y still serves from cache (a hit).
    let y_after = service.handle(&y_url);
    assert!(y_after.body.contains("Second post"));
    assert_eq!(service.cache().stats().hits, stats.hits + 1);
}

#[test]
fn root_rendition_depends_on_listed_articles() {
    let service = service();
    let root = PageKey {
        symbol: "RootPage".into(),
        args: vec![],
    };
    let root_url = service.url_of(&root);
    let first = service.handle(&root_url);
    assert_eq!(first.status, 200);
    assert!(first.body.contains("First post"), "link text: {}", first.body);

    // Editing a1's title dirties ArticlePage(a1); the root page *listed*
    // that title, so its rendition must go too (dependency eviction).
    let db = service.engine().database();
    let a1 = db.graph().node_by_name("a1").unwrap();
    drop(db);
    let mut delta = GraphDelta::new();
    delta.remove_edge(a1, "title", Value::string("First post"));
    delta.add_edge(a1, "title", Value::string("Zeroth post"));
    let outcome = service.apply_delta(&delta).unwrap();
    assert!(outcome.html_evicted >= 1, "root rendition evicted");

    let second = service.handle(&root_url);
    assert!(second.body.contains("Zeroth post"), "{}", second.body);
    assert!(!second.body.contains("First post"));
}

#[test]
fn unrelated_delta_keeps_everything_cached() {
    let service = service();
    let x_url = service.url_of(&article_key(&service, "a1"));
    service.handle(&x_url);

    let db = service.engine().database();
    let a1 = db.graph().node_by_name("a1").unwrap();
    drop(db);
    let mut delta = GraphDelta::new();
    delta.add_edge(a1, "internal-note", Value::string("draft"));
    let outcome = service.apply_delta(&delta).unwrap();
    assert!(outcome.engine.dirty.is_empty());
    assert_eq!(outcome.html_evicted, 0);

    let before = service.cache().stats().hits;
    service.handle(&x_url);
    assert_eq!(service.cache().stats().hits, before + 1, "still cached");
}

#[test]
fn self_cancelling_mixed_delta_served_live() {
    // Regression: a delta that creates an article, links it, and then
    // removes the link again produces delete facts whose oids the
    // pre-delta graph never issued. `invalidate::dirty_pages` used to
    // unify those facts against the old database and index out of
    // bounds, crashing the live server's apply_delta path.
    let service = service();
    let x = article_key(&service, "a1");
    let x_url = service.url_of(&x);
    let before = service.handle(&x_url);
    assert_eq!(before.status, 200);

    let db = service.engine().database();
    let a4 = strudel_graph::Oid::from_index(db.graph().node_count());
    drop(db);
    let mut delta = GraphDelta::new();
    delta.add_node(Some("a4"));
    delta.add_edge(a4, "title", Value::string("Ghost post"));
    delta.collect("Articles", Value::Node(a4));
    delta.remove_edge(a4, "title", Value::string("Ghost post"));
    delta.uncollect("Articles", Value::Node(a4));

    let outcome = service.apply_delta(&delta).unwrap();
    // The net effect is an uncollected, attribute-less node: no existing
    // article's page may be dirtied by it.
    assert!(!outcome.engine.dirty.contains(&x), "{:?}", outcome.engine.dirty);

    // The service keeps serving the same content afterwards.
    let after = service.handle(&x_url);
    assert_eq!(after.status, 200);
    assert_eq!(before.body, after.body);
}

#[test]
fn self_cancelling_delta_with_path_only_guard_served_live() {
    // The sharpest form of the same regression, live: a site query whose
    // guards carry no collection atom. The phantom delete fact's seeds
    // reach `graph.edges()` with the never-issued oid directly, so the
    // unguarded `dirty_pages` panics inside `apply_delta` instead of
    // serving.
    let g = ddl::parse(
        r#"
        object a1 in Articles { title : "First post"; }
        object a2 in Articles { title : "Second post"; }
    "#,
    )
    .unwrap();
    let db = Arc::new(Database::from_graph(g, IndexLevel::Full));
    let program = strudel_struql::parse(
        r#"
        create RootPage()
        where x -> "title" -> t
        create TitlePage(x)
        link RootPage() -> "entry" -> TitlePage(x),
             TitlePage(x) -> "title" -> t
        collect Roots(RootPage()), TitlePages(TitlePage(x))
    "#,
    )
    .unwrap();
    let mut templates = TemplateSet::new();
    templates
        .add_template("entry", "<html><h1><SFMT title></h1></html>")
        .unwrap();
    templates
        .add_template("root", "<html><SFMT entry UL ORDER=ascend KEY=title></html>")
        .unwrap();
    templates.assign_object("RootPage", "root");
    templates.assign_collection("TitlePages", "entry");
    let service = SiteService::from_parts(db, &program, templates, "Roots", Mode::Context);

    let x_url = {
        let db = service.engine().database();
        let a1 = db.graph().node_by_name("a1").unwrap();
        drop(db);
        service.url_of(&PageKey {
            symbol: "TitlePage".into(),
            args: vec![Value::Node(a1)],
        })
    };
    let before = service.handle(&x_url);
    assert_eq!(before.status, 200);

    let db = service.engine().database();
    let ghost = strudel_graph::Oid::from_index(db.graph().node_count());
    drop(db);
    let mut delta = GraphDelta::new();
    delta.add_node(None);
    delta.add_edge(ghost, "title", Value::string("Ghost post"));
    delta.remove_edge(ghost, "title", Value::string("Ghost post"));

    service.apply_delta(&delta).unwrap();
    let after = service.handle(&x_url);
    assert_eq!(after.status, 200);
    assert_eq!(before.body, after.body);
}

#[test]
fn rejected_delta_leaves_service_intact() {
    // Atomicity: a delta that fails mid-application (valid first op,
    // impossible second op) must not swap in a half-applied snapshot —
    // the epoch, the database, and both caches stay exactly as they were.
    let service = service();
    let x = article_key(&service, "a1");
    let x_url = service.url_of(&x);
    let before = service.handle(&x_url);
    assert_eq!(before.status, 200);
    let epoch_before = service.engine().epoch();
    let db_before = service.engine().database();
    let nodes_before = db_before.graph().node_count();
    let edges_before = db_before.graph().edge_count();
    drop(db_before);
    let cached_before = service.cache().len();

    let db = service.engine().database();
    let a1 = db.graph().node_by_name("a1").unwrap();
    drop(db);
    let mut delta = GraphDelta::new();
    delta.add_edge(a1, "note", Value::string("applied first"));
    delta.remove_edge(a1, "no-such-label", Value::string("never existed"));
    assert!(service.apply_delta(&delta).is_err(), "delta must be rejected");

    assert_eq!(service.engine().epoch(), epoch_before, "no epoch bump");
    let db_after = service.engine().database();
    assert_eq!(db_after.graph().node_count(), nodes_before);
    assert_eq!(
        db_after.graph().edge_count(),
        edges_before,
        "the first op must not leak into the served snapshot"
    );
    assert!(
        db_after.graph().attr_str(a1, "note").next().is_none(),
        "half-applied edge absent"
    );
    drop(db_after);
    assert_eq!(service.cache().len(), cached_before, "nothing evicted");

    // And the page still serves byte-identical content, from cache.
    let hits = service.cache().stats().hits;
    let after = service.handle(&x_url);
    assert_eq!(before.body, after.body);
    assert_eq!(service.cache().stats().hits, hits + 1);
}

#[test]
fn metrics_report_epoch_and_hit_rate() {
    let service = service();
    let x_url = service.url_of(&article_key(&service, "a1"));
    service.handle(&x_url);
    service.handle(&x_url);
    service.handle("/metrics");
    let stats = service.stats();
    assert_eq!(stats.epoch, 0);
    assert!((stats.html_cache.hit_rate() - 0.5).abs() < 1e-9);
    let text = stats.to_text();
    assert!(text.contains("strudel_route_requests_total{route=\"page/ArticlePage\"} 2"));
}
