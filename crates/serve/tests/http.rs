//! End-to-end HTTP: a real server on an ephemeral port, hammered by
//! concurrent client threads, checked for identical bodies, correct
//! status codes, live metrics, and a graceful shutdown that drains
//! in-flight requests. Every test runs against each transport the
//! platform supports (thread pool and epoll reactor), so the two can
//! never drift in observable behavior.

mod common;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strudel::sites::news_site;
use strudel_schema::dynamic::Mode;
use strudel_serve::server::MAX_REQUEST_BYTES;
use strudel_serve::{serve, ServerConfig, SiteService, Transport};
use strudel_workload::news::{generate, NewsConfig};

fn start_at(
    addr: &str,
    workers: usize,
    transport: Transport,
) -> (Arc<SiteService>, strudel_serve::ServerHandle) {
    let corpus = generate(&NewsConfig {
        articles: 30,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().unwrap();
    let service = Arc::new(SiteService::new(&site, Mode::Context));
    let server = serve(
        service.clone(),
        ServerConfig {
            addr: addr.into(),
            workers,
            transport,
            ..Default::default()
        },
    )
    .unwrap();
    (service, server)
}

fn start(workers: usize, transport: Transport) -> (Arc<SiteService>, strudel_serve::ServerHandle) {
    start_at("127.0.0.1:0", workers, transport)
}

/// One-shot request: `Connection: close` makes `read_to_string` see EOF
/// on either transport (the reactor would otherwise hold the connection
/// open for keep-alive).
fn request(addr: SocketAddr, line: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "{line}\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn get(addr: SocketAddr, path: &str) -> String {
    request(addr, &format!("GET {path} HTTP/1.1"))
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

/// Every `/page/…` href reachable from the index, breadth-first.
fn crawl_urls(addr: SocketAddr, limit: usize) -> Vec<String> {
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() && urls.len() < limit {
        let html = get(addr, &urls[i]);
        for part in html.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    urls
}

#[test]
fn concurrent_clients_get_identical_pages() {
    for transport in common::transports() {
        let (service, server) = start(4, transport);
        let addr = server.addr();
        let urls = Arc::new(crawl_urls(addr, 24));
        assert!(urls.len() >= 10, "crawl found pages: {}", urls.len());

        // Reference bodies fetched serially.
        let reference: Arc<Vec<String>> = Arc::new(
            urls.iter()
                .map(|u| {
                    let response = get(addr, u);
                    assert!(response.starts_with("HTTP/1.1 200"), "{u}: {response}");
                    body_of(&response).to_string()
                })
                .collect(),
        );

        // Eight client threads re-fetch every URL; all bodies must match
        // the serial reference byte for byte (shared engine + cache).
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let urls = Arc::clone(&urls);
                let reference = Arc::clone(&reference);
                std::thread::spawn(move || {
                    for (i, u) in urls.iter().enumerate() {
                        let response = get(addr, u);
                        assert!(response.starts_with("HTTP/1.1 200"), "thread {t}: {u}");
                        assert_eq!(body_of(&response), reference[i], "thread {t}: {u}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let stats = service.stats();
        // 1 serial pass + 8 threads = 9 fetches per URL, plus the crawl.
        assert!(
            stats.total.requests >= (urls.len() * 9) as u64,
            "all requests counted ({transport:?}): {}",
            stats.total.requests
        );
        assert!(stats.html_cache.hits > 0, "warm fetches hit the cache");
        server.shutdown();
    }
}

#[test]
fn metrics_endpoint_speaks_prometheus() {
    for transport in common::transports() {
        let (_service, server) = start(2, transport);
        let addr = server.addr();
        get(addr, "/");
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("text/plain"));
        let body = body_of(&metrics);
        for needle in [
            "strudel_requests_total",
            "strudel_request_latency_us{quantile=\"0.5\"}",
            "strudel_request_latency_us{quantile=\"0.99\"}",
            "strudel_html_cache_hits_total",
            "strudel_html_cache_hit_rate",
            "strudel_delta_epoch",
            "strudel_open_connections",
            "strudel_keepalive_reuse_total",
            "strudel_idle_closed_total",
            "strudel_accept_errors_total",
        ] {
            assert!(
                body.contains(needle),
                "missing {needle} ({transport:?}) in:\n{body}"
            );
        }
        server.shutdown();
    }
}

#[test]
fn bad_requests_get_errors_not_crashes() {
    for transport in common::transports() {
        let (_service, server) = start(2, transport);
        let addr = server.addr();

        assert!(get(addr, "/no/such/route").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/page/NoSuchSymbol").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/page/%zz%bad%escape").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/data/o:999999").starts_with("HTTP/1.1 404"));

        // 405s name the allowed methods (RFC 9110 §15.5.6).
        let post = request(addr, "POST / HTTP/1.1");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        assert!(post.contains("Allow: GET, HEAD\r\n"), "{post}");
        let put = request(addr, "PUT /page/X HTTP/1.1");
        assert!(put.contains("Allow: GET, HEAD\r\n"), "{put}");

        // HEAD gets headers (with the true length) and no body.
        let head = request(addr, "HEAD / HTTP/1.1");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body_of(&head), "");
        assert!(!head.contains("Content-Length: 0"));

        // A garbage request line must not take a worker down.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x00\xffgarbage\r\n\r\n").unwrap();
        drop(s);

        // The server still answers afterwards.
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }
}

#[test]
fn debug_endpoints_serve_real_data() {
    for transport in common::transports() {
        let (service, server) = start(2, transport);
        let addr = server.addr();
        // Make tracing live and the slow log catch everything (loopback
        // requests still take ≥ 1 µs), then serve some traffic.
        strudel_trace::set_enabled(true);
        service.set_slow_threshold_us(1);
        let urls = crawl_urls(addr, 8);
        for u in &urls {
            get(addr, u);
        }

        // /debug/trace: the span table has real serve.request aggregates
        // and the slow log lists the requests we just made.
        let trace = get(addr, "/debug/trace");
        assert!(trace.starts_with("HTTP/1.1 200"), "{trace}");
        let body = body_of(&trace);
        assert!(body.contains("# strudel-trace snapshot"), "{body}");
        assert!(body.contains("serve.request"), "span recorded: {body}");
        assert!(body.contains("engine.compute"), "engine spans nested: {body}");
        assert!(body.contains("# slow requests"), "{body}");
        assert!(body.contains(" /page/"), "slow log lists page paths: {body}");

        // /metrics now carries the slow counter and trace counters.
        let metrics = body_of(&get(addr, "/metrics")).to_string();
        assert!(metrics.contains("strudel_slow_requests_total"), "{metrics}");
        assert!(
            metrics.contains("strudel_trace_counter{name=\"engine.cache."),
            "{metrics}"
        );

        // /debug/explain: per-edge plans with estimates next to actuals.
        let explain = get(addr, "/debug/explain");
        assert!(explain.starts_with("HTTP/1.1 200"), "{explain}");
        let body = body_of(&explain);
        assert!(body.contains("# explain /page/"), "{body}");
        assert!(body.contains("est/row"), "estimate column present: {body}");

        // …and for one specific page, via the same segment syntax.
        let page = urls.iter().find(|u| u.starts_with("/page/")).unwrap();
        let one = get(addr, &page.replace("/page/", "/debug/explain/"));
        assert!(one.starts_with("HTTP/1.1 200"), "{one}");
        assert!(body_of(&one).contains("edge -"), "{one}");

        // Unknown pages are 404s, not crashes.
        assert!(get(addr, "/debug/explain/NoSuchSymbol").starts_with("HTTP/1.1 404"));

        strudel_trace::set_enabled(false);
        server.shutdown();
    }
}

#[test]
fn oversized_requests_get_431_not_a_hung_worker() {
    for transport in common::transports() {
        let (_service, server) = start(2, transport);
        let addr = server.addr();

        // A request line past the byte budget: the reader must stop at
        // the cap and answer, not buffer the line forever.
        let mut s = TcpStream::connect(addr).unwrap();
        let line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_BYTES as usize));
        s.write_all(line.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 431"), "oversized line ({transport:?}): {out}");
        assert!(out.contains("Connection: close"), "{out}");
        drop(s);

        // A normal request line followed by unbounded headers hits the
        // same budget; the 431 must survive the unread tail
        // (drain-before-close).
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET / HTTP/1.1\r\n").unwrap();
        let filler = format!("X-Filler: {}\r\n", "b".repeat(1000));
        for _ in 0..(MAX_REQUEST_BYTES as usize / filler.len() + 2) {
            if s.write_all(filler.as_bytes()).is_err() {
                break; // server may close early; the response read decides
            }
        }
        let _ = s.write_all(b"\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 431"), "oversized headers ({transport:?}): {out}");

        // Neither oversized request took the worker down.
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown();
    }
}

#[test]
fn a_two_byte_header_line_does_not_end_the_headers() {
    for transport in common::transports() {
        let (_service, server) = start(2, transport);
        let addr = server.addr();
        let reference = get(addr, "/");

        // "A\n" is a two-byte header line the old `n > 2` predicate
        // misread as the end of the headers; the bytes after it then sat
        // unread in the socket when the server closed, risking an RST
        // that discards the response. Pad generously so the misread is
        // observable.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET / HTTP/1.1\r\nA\n").unwrap();
        let filler = format!("X-Pad: {}\r\n", "p".repeat(500));
        for _ in 0..8 {
            s.write_all(filler.as_bytes()).unwrap();
        }
        write!(s, "Connection: close\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert_eq!(body_of(&out), body_of(&reference), "full body delivered");
        server.shutdown();
    }
}

#[test]
fn shutdown_wakes_a_wildcard_bind() {
    for transport in common::transports() {
        // `stop_and_join` wakes the accept path with a connect;
        // connecting to 0.0.0.0 is invalid on some platforms, so the
        // wake must target loopback at the bound port. A hang here is
        // the regression.
        let (_service, server) = start_at("0.0.0.0:0", 2, transport);
        let port = server.addr().port();
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown hung waking a wildcard bind ({transport:?}): {:?}",
            t0.elapsed()
        );
    }
}

#[test]
fn shutdown_under_load_joins_cleanly() {
    for transport in common::transports() {
        let (_service, server) = start(4, transport);
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));

        // Keep real requests in flight while the server shuts down;
        // clients tolerate refusals/resets — the server must just join
        // promptly.
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        if let Ok(mut s) = TcpStream::connect(addr) {
                            let _ =
                                write!(s, "GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
                            let mut out = String::new();
                            let _ = s.read_to_string(&mut out);
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(80));

        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown under load hung ({transport:?}): {:?}",
            t0.elapsed()
        );
        stop.store(true, Ordering::Release);
        for c in clients {
            c.join().unwrap();
        }
    }
}

#[test]
fn shutdown_joins_all_threads() {
    for transport in common::transports() {
        let (_service, server) = start(4, transport);
        let addr = server.addr();
        assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
        server.shutdown(); // joins accept + workers; must not hang or panic
        assert!(
            TcpStream::connect(addr)
                .map(|mut s| {
                    let _ = write!(s, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
                    let mut out = String::new();
                    let _ = s.read_to_string(&mut out);
                    out.is_empty()
                })
                .unwrap_or(true),
            "no responses after shutdown ({transport:?})"
        );
    }
}
