//! Seeded randomized deltas against a live, differentially maintained
//! service with a Kleene-closure guard.
//!
//! The property: after any mixed insert/retract delta — including
//! retractions of `rel` edges feeding the `rel*` closure — the live
//! service (which maintains dirty cached pages in place and double-
//! buffers its database) must:
//!
//! * answer every crawled URL with bytes identical to a service built
//!   from scratch on the post-delta graph;
//! * serve engine page views row-equal to a cold engine's (the per-row
//!   oracle); and
//! * hold a database whose statically materialized site graph is
//!   equivalent (`graphs_equivalent`) to one materialized from the
//!   locally accumulated graph — catching any drift in the standby
//!   twin's catch-up lineage.
//!
//! Deltas are generated from `strudel-prng`, so every failure reproduces
//! from its seed.

use std::collections::HashSet;
use std::sync::Arc;

use strudel_graph::{ddl, Graph, GraphDelta, Oid, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::{Database, IndexLevel};
use strudel_schema::dynamic::Mode;
use strudel_schema::incremental::graphs_equivalent;
use strudel_serve::SiteService;
use strudel_struql::Evaluator;
use strudel_template::TemplateSet;

const QUERY: &str = r#"
    create RootPage()
    where Articles(x)
    create ArticlePage(x)
    link RootPage() -> "story" -> ArticlePage(x)
    collect Roots(RootPage()), ArticlePages(ArticlePage(x))
    { where x -> "title" -> t
      link ArticlePage(x) -> "title" -> t }
    { where x -> "rel"* -> y, Articles(y), y -> "title" -> t
      link ArticlePage(x) -> "related" -> t }
"#;

fn base_graph() -> Graph {
    let g = ddl::parse(
        r#"
        object a1 in Articles { title : "First"; }
        object a2 in Articles { title : "Second"; }
        object a3 in Articles { title : "Third"; }
        object a4 in Articles { title : "Fourth"; }
    "#,
    )
    .unwrap();
    let mut g = g;
    let a1 = g.node_by_name("a1").unwrap();
    let a2 = g.node_by_name("a2").unwrap();
    let a3 = g.node_by_name("a3").unwrap();
    g.add_edge_str(a1, "rel", Value::Node(a2));
    g.add_edge_str(a2, "rel", Value::Node(a3));
    g
}

fn build_service(graph: Graph) -> SiteService {
    let db = Arc::new(Database::from_graph(graph, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    let mut templates = TemplateSet::new();
    // Maintained views preserve the edge *set* but may append fresh rows
    // at the end, so rendition must not depend on derivation order:
    // every list is sorted.
    templates
        .add_template(
            "article",
            "<html><h1><SFMT title></h1><SFMT related UL ORDER=ascend></html>",
        )
        .unwrap();
    templates
        .add_template("root", "<html><SFMT story UL ORDER=ascend KEY=title></html>")
        .unwrap();
    templates.assign_object("RootPage", "root");
    templates.assign_collection("ArticlePages", "article");
    SiteService::from_parts(db, &program, templates, "Roots", Mode::Context)
}

/// A random, always-applicable mixed delta: new articles, retitles,
/// `rel` edges added between existing articles (cycles allowed), `rel`
/// retractions feeding the Kleene closure, and membership removals.
fn random_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let mut next_oid = g.node_count();
    let mut removed: HashSet<(Oid, String, String)> = HashSet::new();
    let mut uncollected: HashSet<String> = HashSet::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..6u32) {
            0 => {
                // A brand-new related article.
                let oid = Oid::from_index(next_oid);
                next_oid += 1;
                delta.add_node(None);
                delta.add_edge(
                    oid,
                    "title",
                    Value::string(format!("New {}", rng.gen_range(0..1000u32)).as_str()),
                );
                let other = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(oid, "rel", Value::Node(other));
                delta.collect("Articles", Value::Node(oid));
            }
            1 => {
                // A new rel edge between existing nodes (cycles allowed).
                let from = Oid::from_index(rng.gen_range(0..g.node_count()));
                let to = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(from, "rel", Value::Node(to));
            }
            2 => {
                // Retract one existing rel edge: paths through it must
                // disappear from every rel* cone, exactly.
                let mut candidates = Vec::new();
                for idx in 0..g.node_count() {
                    let oid = Oid::from_index(idx);
                    for e in g.edges(oid) {
                        if g.label_name(e.label) == "rel" {
                            candidates.push((oid, e.to.clone()));
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (oid, to) = strudel_prng::choose(rng, &candidates).clone();
                if removed.insert((oid, "rel".into(), format!("{to:?}"))) {
                    delta.remove_edge(oid, "rel", to);
                }
            }
            3 => {
                // Retitle an existing node.
                let oid = Oid::from_index(rng.gen_range(0..g.node_count()));
                delta.add_edge(
                    oid,
                    "title",
                    Value::string(format!("Re {}", rng.gen_range(0..1000u32)).as_str()),
                );
            }
            4 => {
                // Retract any one existing edge.
                let mut candidates = Vec::new();
                for idx in 0..g.node_count() {
                    let oid = Oid::from_index(idx);
                    for e in g.edges(oid) {
                        candidates.push((oid, g.label_name(e.label).to_string(), e.to.clone()));
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (oid, label, to) = strudel_prng::choose(rng, &candidates).clone();
                if removed.insert((oid, label.clone(), format!("{to:?}"))) {
                    delta.remove_edge(oid, &label, to);
                }
            }
            _ => {
                // Drop one article from the collection.
                let members = g.members_str("Articles");
                if members.is_empty() {
                    continue;
                }
                let member = strudel_prng::choose(rng, members).clone();
                if uncollected.insert(format!("{member:?}")) {
                    delta.uncollect("Articles", member);
                }
            }
        }
    }
    delta
}

/// Every URL reachable from `/` by following `/page/…` hrefs.
fn crawl(service: &SiteService) -> Vec<String> {
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = service.handle(&urls[i]).body;
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    urls
}

fn sorted_view(
    v: strudel_schema::dynamic::PageView,
) -> Vec<(String, strudel_schema::dynamic::DynTarget)> {
    let mut edges = v.edges;
    edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    edges
}

#[test]
fn random_kleene_deltas_keep_maintained_service_equal_to_fresh_build() {
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graph = base_graph();
        let live = build_service(graph.clone());
        // Pre-warm so later rounds exercise maintained pages, not misses.
        for url in crawl(&live) {
            live.handle(&url);
        }

        for round in 0..6 {
            let delta = random_delta(&mut rng, &graph);
            delta.apply(&mut graph).expect("generated deltas always apply");
            live.apply_delta(&delta)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));

            let fresh = build_service(graph.clone());

            // Byte-equality over everything reachable.
            let live_urls = crawl(&live);
            let fresh_urls = crawl(&fresh);
            assert_eq!(
                live_urls, fresh_urls,
                "seed {seed} round {round}: reachable URL sets diverged"
            );
            for url in &live_urls {
                let a = live.handle(url);
                let b = fresh.handle(url);
                assert_eq!(
                    (a.status, a.body),
                    (b.status, b.body),
                    "seed {seed} round {round}: {url} diverged after {:?}",
                    delta.ops()
                );
            }

            // Per-row oracle: maintained page views carry exactly the
            // rows a cold engine derives.
            for key in live.engine().roots("ArticlePages").unwrap() {
                assert_eq!(
                    sorted_view(live.engine().visit(&key).unwrap()),
                    sorted_view(fresh.engine().visit(&key).unwrap()),
                    "seed {seed} round {round}: page {key:?} rows diverged"
                );
            }

            // Lineage oracle: the live database has only ever seen
            // twin catch-ups and swaps; its statically materialized site
            // must be equivalent to one built from the local graph.
            let program = strudel_struql::parse(QUERY).unwrap();
            let live_db = live.engine().database();
            let via_live = Evaluator::new(&live_db).eval(&program).unwrap();
            let reference_db = Database::from_graph(graph.clone(), IndexLevel::Full);
            let via_local = Evaluator::new(&reference_db).eval(&program).unwrap();
            assert!(
                graphs_equivalent(&via_live.graph, &via_local.graph),
                "seed {seed} round {round}: materialized sites diverged"
            );
        }
        let m = live.stats().engine;
        assert!(
            m.diff_pages_updated > 0,
            "seed {seed}: maintenance never engaged: {m:?}"
        );
    }
}
