//! The sharded service must be observationally identical to the single
//! service it replaced.
//!
//! Two properties, both seeded and byte-exact:
//!
//! 1. **Routing is invisible.** For any shard count, every crawled URL
//!    answers with bytes identical to the unsharded service — before and
//!    after every random delta. A shard that misses an invalidation, or
//!    a router that sends a URL to a shard with a stale snapshot, fails
//!    this loop.
//! 2. **Deltas are atomic per response.** While client threads hammer a
//!    fixed URL set, the writer applies a delta. Every response observed
//!    concurrently must byte-equal either the pre-delta render or the
//!    post-delta render of that URL — never a mix of the two epochs.

mod common;

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use strudel_graph::{ddl, Graph, GraphDelta, Oid, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::{Database, IndexLevel};
use strudel_schema::dynamic::Mode;
use strudel_serve::{ShardedService, SiteService};
use strudel_template::TemplateSet;

const QUERY: &str = r#"
    create RootPage()
    where Articles(x)
    create ArticlePage(x)
    link RootPage() -> "story" -> ArticlePage(x)
    collect Roots(RootPage()), ArticlePages(ArticlePage(x))
    { where x -> "title" -> t
      link ArticlePage(x) -> "title" -> t }
    { where x -> "body" -> b
      link ArticlePage(x) -> "body" -> b }
"#;

fn base_graph() -> Graph {
    ddl::parse(
        r#"
        object a1 in Articles { title : "First"; body : "alpha"; }
        object a2 in Articles { title : "Second"; body : "beta"; }
        object a3 in Articles { title : "Third"; body : "gamma"; }
        object a4 in Articles { title : "Fourth"; body : "delta"; }
        object a5 in Articles { title : "Fifth"; body : "epsilon"; }
        object a6 in Articles { title : "Sixth"; body : "zeta"; }
    "#,
    )
    .unwrap()
}

fn templates() -> TemplateSet {
    let mut templates = TemplateSet::new();
    templates
        .add_template("article", "<html><h1><SFMT title></h1><p><SFMT body></p></html>")
        .unwrap();
    templates
        .add_template("root", "<html><SFMT story UL ORDER=ascend KEY=title></html>")
        .unwrap();
    templates.assign_object("RootPage", "root");
    templates.assign_collection("ArticlePages", "article");
    templates
}

fn build_single(graph: Graph) -> SiteService {
    let db = Arc::new(Database::from_graph(graph, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    SiteService::from_parts(db, &program, templates(), "Roots", Mode::Context)
}

fn build_sharded(graph: Graph, shards: usize) -> ShardedService {
    let db = Arc::new(Database::from_graph(graph, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    ShardedService::from_parts(db, &program, templates(), "Roots", Mode::Context, shards)
}

/// A random, always-applicable mixed delta (same generator family as
/// `property.rs`: inserts, attribute edits, edge/member removals).
fn random_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let mut next_oid = g.node_count();
    let mut removed_edges: HashSet<(Oid, String, String)> = HashSet::new();
    let mut uncollected: HashSet<String> = HashSet::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..4u32) {
            0 => {
                let oid = Oid::from_index(next_oid);
                next_oid += 1;
                delta.add_node(None);
                delta.add_edge(
                    oid,
                    "title",
                    Value::string(format!("New {}", rng.gen_range(0..1000u32)).as_str()),
                );
                delta.add_edge(oid, "body", Value::string("fresh"));
                delta.collect("Articles", Value::Node(oid));
            }
            1 => {
                let oid = Oid::from_index(rng.gen_range(0..g.node_count()));
                let label = *strudel_prng::choose(rng, &["title", "body", "note"]);
                delta.add_edge(
                    oid,
                    label,
                    Value::string(format!("v{}", rng.gen_range(0..1000u32)).as_str()),
                );
            }
            2 => {
                let mut candidates = Vec::new();
                for idx in 0..g.node_count() {
                    let oid = Oid::from_index(idx);
                    for e in g.edges(oid) {
                        candidates.push((oid, g.label_name(e.label).to_string(), e.to.clone()));
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (oid, label, to) = strudel_prng::choose(rng, &candidates).clone();
                if removed_edges.insert((oid, label.clone(), format!("{to:?}"))) {
                    delta.remove_edge(oid, &label, to);
                }
            }
            _ => {
                let members = g.members_str("Articles");
                if members.is_empty() {
                    continue;
                }
                let member = strudel_prng::choose(rng, members).clone();
                if uncollected.insert(format!("{member:?}")) {
                    delta.uncollect("Articles", member);
                }
            }
        }
    }
    delta
}

/// A delta that only rewrites titles/bodies of existing articles, so the
/// reachable URL set is stable across its application — the shape the
/// concurrent pre-or-post property needs.
fn mutation_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        let oid = Oid::from_index(rng.gen_range(0..g.node_count()));
        let label = *strudel_prng::choose(rng, &["title", "body"]);
        delta.add_edge(
            oid,
            label,
            Value::string(format!("rev{}", rng.gen_range(0..1000u32)).as_str()),
        );
    }
    delta
}

/// Every URL reachable from `/` by following `/page/…` hrefs, via any
/// `handle`-shaped service.
fn crawl(handle: impl Fn(&str) -> String) -> Vec<String> {
    let mut urls = vec!["/".to_string()];
    let mut i = 0;
    while i < urls.len() {
        let body = handle(&urls[i]);
        for part in body.split("href=\"").skip(1) {
            if let Some(end) = part.find('"') {
                let href = &part[..end];
                if href.starts_with("/page/") && !urls.iter().any(|u| u == href) {
                    urls.push(href.to_string());
                }
            }
        }
        i += 1;
    }
    urls
}

#[test]
fn sharded_service_byte_equals_unsharded_across_deltas() {
    for seed in 0..3u64 {
        for shards in [1usize, 2, 4] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut graph = base_graph();
            let single = build_single(graph.clone());
            let sharded = build_sharded(graph.clone(), shards);

            for round in 0..5 {
                let single_urls = crawl(|u| single.handle(u).body);
                let sharded_urls = crawl(|u| sharded.handle(u).body);
                assert_eq!(
                    single_urls, sharded_urls,
                    "seed {seed} shards {shards} round {round}: URL sets diverged"
                );
                for url in &single_urls {
                    let a = single.handle(url);
                    let b = sharded.handle(url);
                    assert_eq!(
                        (a.status, a.body),
                        (b.status, b.body),
                        "seed {seed} shards {shards} round {round}: {url}"
                    );
                }

                let delta = random_delta(&mut rng, &graph);
                delta.apply(&mut graph).expect("generated deltas always apply");
                single
                    .apply_delta(&delta)
                    .unwrap_or_else(|e| panic!("seed {seed} round {round} single: {e}"));
                sharded
                    .apply_delta(&delta)
                    .unwrap_or_else(|e| panic!("seed {seed} round {round} sharded: {e}"));
                assert_eq!(
                    sharded.delta_epoch(),
                    (round + 1) as u64,
                    "barrier epoch advances once per delta"
                );
            }
        }
    }
}

#[test]
fn sharded_service_serves_over_http_with_shard_metrics() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use strudel_serve::{serve, ServerConfig};

    for transport in common::transports() {
        let sharded = Arc::new(build_sharded(base_graph(), 4));
        let reference: Vec<(String, String)> = crawl(|u| sharded.handle(u).body)
            .into_iter()
            .map(|u| {
                let body = sharded.handle(&u).body;
                (u, body)
            })
            .collect();

        let server = serve(
            Arc::clone(&sharded),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                transport,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let get = |path: &str| {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        for (url, body) in &reference {
            let response = get(url);
            assert!(response.starts_with("HTTP/1.1 200"), "{url}: {response}");
            assert_eq!(
                response.split("\r\n\r\n").nth(1).unwrap_or(""),
                body,
                "{url} ({transport:?})"
            );
        }

        let metrics = get("/metrics");
        for needle in [
            "strudel_shards 4",
            "strudel_shard_requests_total{shard=\"0\"}",
            "strudel_shard_requests_total{shard=\"3\"}",
            "strudel_shard_epoch{shard=\"1\"}",
            "strudel_shard_published_entries{shard=\"2\"}",
            "strudel_requests_total",
        ] {
            assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
        }
        server.shutdown();
    }
}

#[test]
fn concurrent_clicks_see_pre_or_post_delta_never_a_mix() {
    for seed in 0..3u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graph = base_graph();
        let sharded = Arc::new(build_sharded(graph.clone(), 3));
        let urls: Arc<Vec<String>> = Arc::new(crawl(|u| sharded.handle(u).body));
        assert!(urls.len() > 4, "crawl found the article pages");

        for round in 0..4 {
            // Title/body rewrites keep the URL set fixed, so pre/post
            // renders of the same URL are directly comparable.
            let delta = mutation_delta(&mut rng, &graph);
            let pre: Vec<String> = urls.iter().map(|u| sharded.handle(u).body).collect();
            delta.apply(&mut graph).expect("mutation deltas always apply");
            let oracle = build_single(graph.clone());
            let post: Vec<String> = urls.iter().map(|u| oracle.handle(u).body).collect();

            let stop = Arc::new(AtomicBool::new(false));
            let readers: Vec<_> = (0..4)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    let urls = Arc::clone(&urls);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut observed: Vec<(usize, String)> = Vec::new();
                        let mut pass = 0usize;
                        while !stop.load(Ordering::Acquire) || pass < 2 {
                            for (i, u) in urls.iter().enumerate() {
                                observed.push((i, sharded.handle(u).body));
                            }
                            pass += 1;
                            if pass > 10_000 {
                                break; // safety valve; the writer is fast
                            }
                        }
                        (t, observed)
                    })
                })
                .collect();

            // Let the readers get going, then swap epochs underneath them.
            std::thread::yield_now();
            sharded
                .apply_delta(&delta)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
            stop.store(true, Ordering::Release);

            for r in readers {
                let (t, observed) = r.join().unwrap();
                for (i, body) in observed {
                    assert!(
                        body == pre[i] || body == post[i],
                        "seed {seed} round {round} reader {t}: {} served bytes \
                         belonging to neither epoch:\n{body}",
                        urls[i]
                    );
                }
            }

            // Once the writer returns, every shard must serve post.
            for (i, u) in urls.iter().enumerate() {
                assert_eq!(
                    sharded.handle(u).body,
                    post[i],
                    "seed {seed} round {round}: {u} settled on the new epoch"
                );
            }
        }
    }
}

#[test]
fn a_shard_panicking_mid_apply_is_rebuilt_not_left_an_epoch_behind() {
    let mut rng = SmallRng::seed_from_u64(7);
    let graph = base_graph();
    let single = build_single(graph.clone());
    let sharded = build_sharded(graph.clone(), 3);

    // Shard 2 panics applying the delta — after the store would have
    // committed and after shard 0 (the validation gate) swapped. Before
    // the rebuild path existed this stranded shard 2 an epoch behind its
    // siblings, serving mixed-epoch responses forever.
    let delta = mutation_delta(&mut rng, &graph);
    sharded.shard(2).arm_delta_fault();
    let outcome = sharded.apply_delta(&delta).expect("the broadcast survives");
    assert_eq!(outcome.rebuilt_shards, vec![2], "the panicked shard was rebuilt");
    single.apply_delta(&delta).unwrap();

    // Every shard — including the rebuilt one, asked directly — now
    // byte-equals the never-faulted oracle.
    for url in crawl(|u| single.handle(u).body) {
        let want = single.handle(&url);
        for i in 0..3 {
            let got = sharded.shard(i).handle(&url);
            assert_eq!(
                (got.status, &got.body),
                (want.status, &want.body),
                "shard {i} on {url}"
            );
        }
    }

    // The repaired fleet takes later deltas cleanly.
    let delta = mutation_delta(&mut rng, &graph);
    let outcome = sharded.apply_delta(&delta).unwrap();
    assert!(outcome.rebuilt_shards.is_empty(), "no faults, no rebuilds");
    single.apply_delta(&delta).unwrap();
    for url in crawl(|u| single.handle(u).body) {
        assert_eq!(sharded.handle(&url).body, single.handle(&url).body, "{url}");
    }
}
