//! Keep-alive conformance for the epoll reactor: responses on a reused
//! connection byte-equal fresh-connection responses, pipelined requests
//! all answer, idle connections close on deadline (and count), slow-loris
//! clients get a 408 without degrading fast clicks, and hundreds of idle
//! connections cost file descriptors, not threads.
//!
//! The whole suite is epoll-specific and self-skips where the transport
//! is unsupported (non-Linux) or excluded via `STRUDEL_TEST_TRANSPORT`.

mod common;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strudel::sites::news_site;
use strudel_schema::dynamic::Mode;
use strudel_serve::{serve, ServerConfig, SiteService, Transport};
use strudel_workload::news::{generate, NewsConfig};

/// Whether this run covers the epoll transport at all.
fn epoll_enabled() -> bool {
    common::transports().contains(&Transport::Epoll)
}

fn start(config: ServerConfig) -> (Arc<SiteService>, strudel_serve::ServerHandle) {
    let corpus = generate(&NewsConfig {
        articles: 12,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().unwrap();
    let service = Arc::new(SiteService::new(&site, Mode::Context));
    let server = serve(service.clone(), config).unwrap();
    (service, server)
}

fn epoll_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        transport: Transport::Epoll,
        ..Default::default()
    }
}

/// One complete HTTP response off a (possibly kept-alive) connection:
/// status line + headers up to the blank line, then exactly
/// `Content-Length` body bytes.
fn read_response(reader: &mut BufReader<TcpStream>) -> Option<(String, String)> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None; // EOF
        }
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).ok()?;
    Some((head, String::from_utf8_lossy(&body).into_owned()))
}

/// One-shot fresh-connection request (`Connection: close`).
fn get_fresh(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn status_of(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

#[test]
fn sequential_requests_on_one_connection_byte_equal_fresh_connections() {
    if !epoll_enabled() {
        return;
    }
    let (_service, server) = start(epoll_config());
    let addr = server.addr();
    let paths = ["/", "/metrics", "/", "/no/such/route", "/"];

    // Reference: every path over its own fresh connection.
    let fresh: Vec<(String, String)> = paths
        .iter()
        .map(|p| {
            let r = get_fresh(addr, p);
            (status_of(&r).to_string(), body_of(&r).to_string())
        })
        .collect();

    // Same paths over ONE kept-alive connection.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for (i, p) in paths.iter().enumerate() {
        write!(writer, "GET {p} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let (head, body) = read_response(&mut reader).expect("connection stayed open");
        assert!(
            head.contains("Connection: keep-alive"),
            "request {i} keeps the connection: {head}"
        );
        assert_eq!(head.lines().next().unwrap(), fresh[i].0, "status for {p}");
        // /metrics bodies move between requests (counters tick); the
        // stable routes must be byte-identical to the fresh fetch.
        if *p != "/metrics" {
            assert_eq!(body, fresh[i].1, "reused-connection body for {p}");
        }
    }
    server.shutdown();
}

#[test]
fn pipelined_requests_all_answer_in_order() {
    if !epoll_enabled() {
        return;
    }
    let (_service, server) = start(epoll_config());
    let addr = server.addr();
    let reference = body_of(&get_fresh(addr, "/")).to_string();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // Six requests in one burst, no waiting between them.
    let mut burst = String::new();
    for _ in 0..6 {
        burst.push_str("GET / HTTP/1.1\r\nHost: localhost\r\n\r\n");
    }
    writer.write_all(burst.as_bytes()).unwrap();
    for i in 0..6 {
        let (head, body) = read_response(&mut reader)
            .unwrap_or_else(|| panic!("pipelined response {i} arrived"));
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, reference, "pipelined response {i} body");
    }
    server.shutdown();
}

#[test]
fn idle_connections_close_on_deadline_and_count() {
    if !epoll_enabled() {
        return;
    }
    let (service, server) = start(ServerConfig {
        keepalive_timeout: Duration::from_millis(200),
        ..epoll_config()
    });
    let addr = server.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let (head, _) = read_response(&mut reader).unwrap();
    assert!(head.contains("Connection: keep-alive"), "{head}");

    // Then go quiet past the idle deadline: the reactor must close us.
    let t0 = Instant::now();
    assert!(
        read_response(&mut reader).is_none(),
        "idle connection closed by the server"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "closed by the deadline, not a test timeout: {:?}",
        t0.elapsed()
    );
    assert!(service.idle_closed_total() >= 1, "idle close counted");
    let metrics = get_fresh(addr, "/metrics");
    assert!(metrics.contains("strudel_idle_closed_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn keepalive_reuse_is_counted_and_connection_close_is_honored() {
    if !epoll_enabled() {
        return;
    }
    let (service, server) = start(epoll_config());
    let addr = server.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..3 {
        write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        read_response(&mut reader).unwrap();
    }
    assert_eq!(service.keepalive_reuse_total(), 2, "3 requests = 2 reuses");

    // An explicit `Connection: close` ends the reuse run.
    write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let (head, _) = read_response(&mut reader).unwrap();
    assert!(head.contains("Connection: close"), "{head}");
    assert!(read_response(&mut reader).is_none(), "server closed after close");

    // An HTTP/1.0 request (no keep-alive by default) also closes.
    let s10 = TcpStream::connect(addr).unwrap();
    let mut w10 = s10.try_clone().unwrap();
    let mut r10 = BufReader::new(s10);
    write!(w10, "GET / HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let (head, _) = read_response(&mut r10).unwrap();
    assert!(head.contains("Connection: close"), "{head}");
    assert!(read_response(&mut r10).is_none(), "1.0 closes after one response");
    server.shutdown();
}

#[test]
fn slow_loris_clients_get_408_without_degrading_fast_clicks() {
    if !epoll_enabled() {
        return;
    }
    let (_service, server) = start(ServerConfig {
        timeout: Duration::from_millis(400),
        ..epoll_config()
    });
    let addr = server.addr();
    assert!(get_fresh(addr, "/").starts_with("HTTP/1.1 200"));

    // Eight clients drip one header byte at a time and never finish.
    let loris: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let partial = b"GET / HTTP/1.1\r\nX-Slow: ";
                for b in partial {
                    if s.write_all(&[*b]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                // Stall entirely; the server must cut us off with a 408.
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                out
            })
        })
        .collect();

    // Meanwhile fast clicks keep answering promptly — the reactor is not
    // blocked inside any loris connection.
    for _ in 0..10 {
        let t0 = Instant::now();
        let r = get_fresh(addr, "/");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "fast click degraded by loris: {:?}",
            t0.elapsed()
        );
    }

    for h in loris {
        let out = h.join().unwrap();
        assert!(
            out.starts_with("HTTP/1.1 408"),
            "loris answered with a timeout: {out:?}"
        );
    }
    server.shutdown();
}

#[test]
fn hundreds_of_idle_connections_cost_fds_not_threads() {
    if !epoll_enabled() {
        return;
    }
    const IDLE: usize = 200;
    let (service, server) = start(ServerConfig {
        keepalive_timeout: Duration::from_secs(60),
        max_connections: 1024,
        ..epoll_config()
    });
    let addr = server.addr();

    let threads_before = os_thread_count();
    let mut held = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let (head, _) = read_response(&mut reader).unwrap_or_else(|| panic!("conn {i} served"));
        assert!(head.starts_with("HTTP/1.1 200"), "conn {i}: {head}");
        held.push((writer, reader));
    }

    assert!(
        service.open_connections() >= IDLE as u64,
        "gauge sees the held connections: {}",
        service.open_connections()
    );
    let threads_after = os_thread_count();
    assert!(
        threads_after <= threads_before + 4,
        "idle keep-alive connections must not cost threads: \
         {threads_before} -> {threads_after} with {IDLE} held"
    );

    // The server still answers new clicks with hundreds of idle fds held.
    assert!(get_fresh(addr, "/").starts_with("HTTP/1.1 200"));

    // Every held connection is still live and serves another request.
    for (i, (writer, reader)) in held.iter_mut().enumerate() {
        write!(writer, "GET / HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert!(
            read_response(reader).is_some(),
            "held conn {i} serves after the idle hold"
        );
    }
    drop(held);
    server.shutdown();
}

/// This process's OS thread count (Linux: /proc/self/status).
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}
