//! End-to-end supervised-recovery suite for `--cluster` serving: a
//! router parent, N crash-isolated `shard-worker` processes, WAL-replay
//! recovery, degraded-mode failover.
//!
//! The contract under test, end to end through real processes and real
//! sockets: SIGKILLing any worker under concurrent keep-alive traffic
//! drops **zero** client connections — every response is either fresh
//! or a byte-identical last-known-good copy marked
//! `X-Strudel-Degraded: stale` — and a recovered worker replays the
//! shared store's WAL to byte-equality with an oracle that was never
//! killed.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strudel_graph::{ddl, Graph, GraphDelta, Oid, Value};
use strudel_repo::{Database, IndexLevel, PagedRepo, PagerConfig};
use strudel_schema::dynamic::Mode;
use strudel_serve::cluster::FAULT_PLAN_ENV;
use strudel_serve::{
    proto, serve, ClickService, ClusterConfig, ClusterService, Response, ServerConfig,
    SiteService, Transport,
};
use strudel_template::TemplateSet;

const QUERY: &str = r#"
    create RootPage()
    where Articles(x)
    create ArticlePage(x)
    link RootPage() -> "story" -> ArticlePage(x)
    collect Roots(RootPage()), ArticlePages(ArticlePage(x))
    { where x -> "title" -> t
      link ArticlePage(x) -> "title" -> t }
    { where x -> "body" -> b
      link ArticlePage(x) -> "body" -> b }
"#;

const ROOT_TMPL: &str = "<html><SFMT story UL ORDER=ascend KEY=title></html>";
const ARTICLE_TMPL: &str = "<html><h1><SFMT title></h1><p><SFMT body></p></html>";

const SOURCE_DDL: &str = r#"
    object a1 in Articles { title : "First"; body : "alpha"; }
    object a2 in Articles { title : "Second"; body : "beta"; }
    object a3 in Articles { title : "Third"; body : "gamma"; }
    object a4 in Articles { title : "Fourth"; body : "delta"; }
    object a5 in Articles { title : "Fifth"; body : "epsilon"; }
    object a6 in Articles { title : "Sixth"; body : "zeta"; }
"#;

fn base_graph() -> Graph {
    ddl::parse(SOURCE_DDL).unwrap()
}

fn templates() -> TemplateSet {
    let mut t = TemplateSet::new();
    t.add_template("article", ARTICLE_TMPL).unwrap();
    t.add_template("root", ROOT_TMPL).unwrap();
    t.assign_object("RootPage", "root");
    t.assign_collection("ArticlePages", "article");
    t
}

/// An in-process service over the same site, for byte-equality oracles.
fn oracle(graph: Graph) -> SiteService {
    let db = Arc::new(Database::from_graph(graph, IndexLevel::Full));
    let program = strudel_struql::parse(QUERY).unwrap();
    SiteService::from_parts(db, &program, templates(), "Roots", Mode::Context)
}

/// Writes the same site as a directory the `strudel` binary can load —
/// what each worker process builds its program and templates from. (The
/// worker's *database* comes from replaying the shared store, so the DDL
/// here only has to parse; the store is the source of truth.)
fn write_site_dir(dir: &Path) {
    std::fs::create_dir_all(dir.join("templates")).unwrap();
    std::fs::create_dir_all(dir.join("sources")).unwrap();
    std::fs::write(dir.join("site.struql"), QUERY).unwrap();
    std::fs::write(
        dir.join("site.conf"),
        "root Roots\nobject RootPage root\ncollection ArticlePages article\n",
    )
    .unwrap();
    std::fs::write(dir.join("templates/root.tmpl"), ROOT_TMPL).unwrap();
    std::fs::write(dir.join("templates/article.tmpl"), ARTICLE_TMPL).unwrap();
    std::fs::write(dir.join("sources/articles.ddl"), SOURCE_DDL).unwrap();
}

/// A fresh scratch area: `(site_dir, store_dir)` with the store
/// bulk-loaded from [`base_graph`].
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "strudel-cluster-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let site_dir = root.join("site");
    let store_dir = root.join("store");
    write_site_dir(&site_dir);
    std::fs::create_dir_all(&store_dir).unwrap();
    let store = PagedRepo::bulk_load(&store_dir, PagerConfig::default(), &base_graph()).unwrap();
    drop(store);
    (site_dir, store_dir)
}

/// A cluster config tuned for test turnaround: fast restarts, short
/// probes, the real binary under test.
fn test_config(workers: usize, site_dir: &Path, store_dir: &Path) -> ClusterConfig {
    let mut c = ClusterConfig::new(
        workers,
        PathBuf::from(env!("CARGO_BIN_EXE_strudel")),
        site_dir.to_path_buf(),
        store_dir.to_path_buf(),
    );
    c.backoff_base = Duration::from_millis(20);
    c.backoff_cap = Duration::from_millis(500);
    c.probe_interval = Duration::from_millis(100);
    c.min_uptime = Duration::from_millis(300);
    c
}

/// Opens the store read-write for the router role.
fn open_store(store_dir: &Path) -> PagedRepo {
    PagedRepo::open(store_dir, PagerConfig::default()).unwrap()
}

/// BFS-crawls every page reachable from `/` through `get`.
fn crawl(get: &dyn Fn(&str) -> Response) -> Vec<String> {
    let mut seen = vec!["/".to_string()];
    let mut queue = vec!["/".to_string()];
    while let Some(path) = queue.pop() {
        let response = get(&path);
        assert_eq!(response.status, 200, "crawl of {path}");
        let mut rest = response.body.as_str();
        while let Some(i) = rest.find("href=\"") {
            rest = &rest[i + 6..];
            let Some(end) = rest.find('"') else { break };
            let href = rest[..end].to_string();
            rest = &rest[end..];
            let reserved = ["/metrics", "/healthz", "/readyz", "/debug"]
                .iter()
                .any(|r| href.starts_with(r));
            if href.starts_with('/') && !reserved && !seen.contains(&href) {
                seen.push(href.clone());
                queue.push(href);
            }
        }
    }
    seen.sort();
    seen
}

/// A deterministic always-applicable delta: one new article per call.
fn make_delta(k: usize, next_oid: usize) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let oid = Oid::from_index(next_oid);
    delta.add_node(None);
    delta.add_edge(oid, "title", Value::string(format!("Injected {k:03}").as_str()));
    delta.add_edge(oid, "body", Value::string(format!("payload {k}").as_str()));
    delta.collect("Articles", Value::Node(oid));
    delta
}

/// Waits until every worker is ready (or panics after `deadline`).
fn wait_all_ready(cluster: &ClusterService, workers: usize, deadline: Duration) {
    let start = Instant::now();
    while cluster.ready_workers() < workers {
        assert!(
            start.elapsed() < deadline,
            "workers never recovered: {}/{} ready",
            cluster.ready_workers(),
            workers
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn a_cluster_serves_byte_identically_and_degrades_through_a_kill() {
    let (site_dir, store_dir) = scratch("oracle");
    let cluster =
        ClusterService::start(open_store(&store_dir), test_config(2, &site_dir, &store_dir))
            .unwrap();
    assert_eq!(cluster.ready_workers(), 2);

    // Warm primes the router's last-known-good cache for every page.
    let report = ClickService::warm(&*cluster, strudel_struql::Parallelism::Threads(2)).unwrap();
    assert!(report.pages >= 7, "root + six articles, got {}", report.pages);

    let oracle = oracle(base_graph());
    let paths = crawl(&|p| cluster.handle(p));
    assert!(paths.len() >= 7, "crawl found {paths:?}");
    for path in &paths {
        let ours = cluster.handle(path);
        let theirs = oracle.handle(path);
        assert_eq!(ours.status, theirs.status, "{path}");
        assert_eq!(ours.body, theirs.body, "{path}");
        assert!(!ours.degraded, "{path} fresh while both workers live");
    }

    // Kill the worker that owns "/": the very next response must be the
    // degraded last-known-good copy — same bytes, marked stale — because
    // the replacement cannot possibly be ready yet.
    let shard = strudel_serve::router::shard_of_path("/", 2);
    assert!(cluster.kill_worker(shard), "a live worker to kill");
    let degraded = cluster.handle("/");
    assert_eq!(degraded.status, 200, "degraded, never a reset or 5xx");
    assert!(degraded.degraded, "stale marker set while the worker is down");
    assert_eq!(degraded.body, oracle.handle("/").body, "stale bytes are the last good bytes");

    // The supervisor restarts it; service returns to fresh.
    wait_all_ready(&cluster, 2, Duration::from_secs(60));
    assert!(cluster.worker_restarts(shard) >= 1, "the kill was supervised");
    let fresh = cluster.handle("/");
    assert!(!fresh.degraded, "recovered worker serves fresh again");
    assert_eq!(fresh.body, oracle.handle("/").body);

    let metrics = cluster.stats_text();
    assert!(metrics.contains("strudel_cluster_workers 2"), "{metrics}");
    assert!(metrics.contains("strudel_cluster_degraded_total"), "{metrics}");
    cluster.shutdown();
}

#[test]
fn sigkill_under_keepalive_traffic_drops_zero_connections() {
    let (site_dir, store_dir) = scratch("torture");
    let workers = 4;
    let cluster = ClusterService::start(
        open_store(&store_dir),
        test_config(workers, &site_dir, &store_dir),
    )
    .unwrap();
    ClickService::warm(&*cluster, strudel_struql::Parallelism::Threads(2)).unwrap();

    // The cluster router itself behind the epoll keep-alive front.
    let server = serve(
        cluster.clone(),
        ServerConfig {
            workers: 4,
            transport: if Transport::Epoll.is_supported() {
                Transport::Epoll
            } else {
                Transport::Threads
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let oracle = oracle(base_graph());
    let paths = Arc::new(crawl(&|p| cluster.handle(p)));
    let expected: Arc<Vec<(String, String)>> = Arc::new(
        paths.iter().map(|p| (p.clone(), oracle.handle(p).body.clone())).collect(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let degraded_seen = Arc::new(AtomicU64::new(0));
    let fresh_seen = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for t in 0..4 {
        let expected = expected.clone();
        let stop = stop.clone();
        let degraded_seen = degraded_seen.clone();
        let fresh_seen = fresh_seen.clone();
        clients.push(std::thread::spawn(move || -> Result<(), String> {
            // One keep-alive connection per loop, many requests on it.
            while !stop.load(Ordering::Acquire) {
                let mut stream = std::net::TcpStream::connect(addr)
                    .map_err(|e| format!("connect: {e}"))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .unwrap();
                for (i, (path, want)) in expected.iter().enumerate() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let keep_alive = i + 1 < expected.len();
                    stream
                        .write_all(&proto::encode_request("GET", path, keep_alive))
                        .map_err(|e| format!("client {t} write {path}: {e} (dropped!)"))?;
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 4096];
                    let response = loop {
                        let n = stream
                            .read(&mut chunk)
                            .map_err(|e| format!("client {t} read {path}: {e} (dropped!)"))?;
                        if n == 0 {
                            return Err(format!("client {t} reset mid-response on {path}"));
                        }
                        buf.extend_from_slice(&chunk[..n]);
                        match proto::parse_response(&buf, false) {
                            proto::ResponseOutcome::Complete { response, .. } => break response,
                            proto::ResponseOutcome::Incomplete => continue,
                            proto::ResponseOutcome::Malformed => {
                                return Err(format!("client {t} malformed response on {path}"))
                            }
                        }
                    };
                    if response.status != 200 {
                        return Err(format!(
                            "client {t} got {} on {path} (want fresh or degraded 200)",
                            response.status
                        ));
                    }
                    if response.body != *want {
                        return Err(format!("client {t} got wrong bytes on {path}"));
                    }
                    if response.degraded {
                        degraded_seen.fetch_add(1, Ordering::Relaxed);
                    } else {
                        fresh_seen.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(())
        }));
    }

    // The torture: SIGKILL every worker in turn, under full traffic,
    // waiting for recovery between kills so each kill hits a live fleet.
    for shard in 0..workers {
        wait_all_ready(&cluster, workers, Duration::from_secs(60));
        assert!(cluster.kill_worker(shard), "worker {shard} was alive to kill");
        std::thread::sleep(Duration::from_millis(300));
    }
    wait_all_ready(&cluster, workers, Duration::from_secs(60));

    stop.store(true, Ordering::Release);
    for client in clients {
        client.join().unwrap().expect("no client ever saw a drop, reset, or wrong bytes");
    }
    assert!(
        fresh_seen.load(Ordering::Relaxed) > 0,
        "traffic actually flowed"
    );
    assert!(
        degraded_seen.load(Ordering::Relaxed) > 0,
        "at least one response was served from the last-known-good cache \
         while a worker was down"
    );
    for shard in 0..workers {
        assert!(cluster.worker_restarts(shard) >= 1, "worker {shard} was restarted");
    }
    server.shutdown();
    cluster.shutdown();
}

#[test]
fn a_worker_killed_mid_delta_replays_the_wal_to_byte_equality() {
    let (site_dir, store_dir) = scratch("middelta");
    let mut config = test_config(2, &site_dir, &store_dir);
    // Worker 1 exits while applying its second catch-up delta — after
    // the store committed, before its in-memory state swapped.
    config
        .worker_env
        .push((FAULT_PLAN_ENV.to_string(), "shard=1;exit;at=delta:2".to_string()));
    let cluster = ClusterService::start(open_store(&store_dir), config).unwrap();

    let oracle = oracle(base_graph());
    let base_nodes = base_graph().node_count();
    let mut outcomes = Vec::new();
    for k in 0..3 {
        let delta = make_delta(k, base_nodes + k);
        outcomes.push(cluster.apply_delta(&delta).unwrap());
        oracle.apply_delta(&delta).unwrap();
    }
    assert!(outcomes[0].caught_up.iter().all(|c| *c), "delta 1 lands everywhere");
    assert!(
        !outcomes[1].caught_up[1],
        "delta 2 found worker 1 dead mid-apply: {outcomes:?}"
    );

    // The reborn worker replays the full WAL — all three deltas — and
    // must byte-equal the oracle that was never killed.
    wait_all_ready(&cluster, 2, Duration::from_secs(60));
    assert!(cluster.worker_restarts(1) >= 1);
    assert_eq!(cluster.delta_target(), 3);
    let paths = crawl(&|p| oracle.handle(p));
    assert!(
        paths.iter().any(|p| oracle.handle(p).body.contains("Injected 002")),
        "the oracle saw every delta"
    );
    for path in &paths {
        let ours = cluster.handle(path);
        assert!(!ours.degraded, "{path} served fresh after recovery");
        assert_eq!(ours.body, oracle.handle(path).body, "{path}");
    }
    cluster.shutdown();
}

#[test]
fn a_worker_crash_looping_at_startup_trips_the_breaker() {
    let (site_dir, store_dir) = scratch("breaker");
    let mut config = test_config(2, &site_dir, &store_dir);
    config.max_strikes = 2;
    config
        .worker_env
        .push((FAULT_PLAN_ENV.to_string(), "shard=1;exit;at=start".to_string()));
    let cluster = ClusterService::start(open_store(&store_dir), config).unwrap();

    // Worker 0 serves; worker 1 died at boot twice and the breaker
    // opened instead of burning restarts forever.
    assert_eq!(cluster.ready_workers(), 1);
    assert_eq!(cluster.broken_workers(), 1);
    assert!(cluster.worker_addr(1).is_none());
    let restarts_at_break = cluster.worker_restarts(1);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        cluster.worker_restarts(1),
        restarts_at_break,
        "an open breaker spawns nothing"
    );

    // Routes owned by the broken shard answer 503 (no cached rendition
    // was ever taken); the healthy shard's routes still serve; overall
    // readiness reports the outage.
    let on_broken = (0..100)
        .map(|i| format!("/nope/{i}"))
        .find(|p| strudel_serve::router::shard_of_path(p, 2) == 1)
        .unwrap();
    assert_eq!(cluster.handle(&on_broken).status, 503);
    assert_eq!(cluster.handle("/readyz").status, 503);
    let metrics = cluster.stats_text();
    assert!(
        metrics.contains("strudel_cluster_worker_broken{shard=\"1\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("strudel_cluster_worker_broken{shard=\"0\"} 0"),
        "{metrics}"
    );
    if strudel_serve::router::shard_of_path("/", 2) == 0 {
        assert_eq!(cluster.handle("/").status, 200, "healthy shard unaffected");
    }
    cluster.shutdown();
}

#[test]
fn serve_drains_gracefully_on_sigterm() {
    let (site_dir, _store) = scratch("drain");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_strudel"))
        .arg("serve")
        .arg(&site_dir)
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            let _ = tx.send(line);
        }
    });
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut lines = Vec::new();
    let addr = loop {
        assert!(Instant::now() < deadline, "server never came up: {lines:?}");
        match rx.recv_timeout(Duration::from_secs(1)) {
            Ok(line) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    break rest.split('/').next().unwrap().to_string();
                }
                lines.push(line);
            }
            Err(_) => continue,
        }
    };
    let addr: std::net::SocketAddr = addr.parse().unwrap();

    // Serving; then SIGTERM must drain and exit 0 — not abort.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");

    strudel_epoll::kill_process(child.id(), strudel_epoll::SIGTERM).unwrap();
    let exit_deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < exit_deadline, "serve never drained after SIGTERM");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "graceful drain exits 0, got {status:?}");
    let drained: Vec<String> = rx.try_iter().collect();
    assert!(
        drained.iter().any(|l| l.contains("draining")),
        "drain announced: {drained:?}"
    );
}
