//! Warehouse construction and refresh.

use crate::{MediatorError, Source, SourceFormat};
use std::collections::HashMap;
use strudel_graph::Graph;
use strudel_repo::{Database, IndexLevel};
use strudel_struql::Evaluator;
use strudel_wrappers::{bibtex, html, relational, structured};

/// Per-source statistics from the last build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceReport {
    /// Source name.
    pub name: String,
    /// Nodes contributed.
    pub nodes: usize,
    /// Edges contributed.
    pub edges: usize,
    /// Whether this build re-wrapped the source (false = cache hit).
    pub rewrapped: bool,
}

/// The materialized integrated view.
#[derive(Clone, Debug)]
pub struct Warehouse {
    /// The integrated data graph.
    pub graph: Graph,
    /// Per-source contributions, in registration order.
    pub reports: Vec<SourceReport>,
}

/// The warehousing mediator: registered sources plus a per-source snapshot
/// cache keyed by content fingerprint.
#[derive(Debug, Default)]
pub struct Mediator {
    sources: Vec<Source>,
    cache: HashMap<String, (u64, Graph)>,
}

impl Mediator {
    /// An empty mediator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source. A source with the same name replaces the old
    /// one (its cache entry stays valid only if the content fingerprint
    /// matches).
    pub fn add_source(&mut self, source: Source) {
        if let Some(existing) = self.sources.iter_mut().find(|s| s.name == source.name) {
            *existing = source;
        } else {
            self.sources.push(source);
        }
    }

    /// Updates a source's content in place. Returns `false` when no source
    /// has that name.
    pub fn set_content(&mut self, name: &str, content: &str) -> bool {
        match self.sources.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.content = content.to_owned();
                true
            }
            None => false,
        }
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Builds (or rebuilds) the warehouse. Unchanged sources are served
    /// from the snapshot cache; changed ones are re-wrapped and re-mapped.
    pub fn build(&mut self) -> Result<Warehouse, MediatorError> {
        let mut graph = Graph::new();
        let mut reports = Vec::with_capacity(self.sources.len());
        for source in &self.sources {
            let fp = source.fingerprint();
            let (snapshot, rewrapped) = match self.cache.get(&source.name) {
                Some((cached_fp, g)) if *cached_fp == fp => (g.clone(), false),
                _ => {
                    let g = materialize(source)?;
                    self.cache.insert(source.name.clone(), (fp, g.clone()));
                    (g, true)
                }
            };
            let before_nodes = graph.node_count();
            let before_edges = graph.edge_count();
            graph.import_graph(&snapshot);
            reports.push(SourceReport {
                name: source.name.clone(),
                nodes: graph.node_count() - before_nodes,
                edges: graph.edge_count() - before_edges,
                rewrapped,
            });
        }
        Ok(Warehouse { graph, reports })
    }
}

/// Wraps one source and applies its GAV mapping.
fn materialize(source: &Source) -> Result<Graph, MediatorError> {
    let wrap_err = |error| MediatorError::Wrap {
        source: source.name.clone(),
        error,
    };
    let wrapped = match &source.format {
        SourceFormat::Bibtex => bibtex::wrap(&source.content).map_err(wrap_err)?,
        SourceFormat::BibtexWith(opts) => {
            bibtex::wrap_with(&source.content, opts).map_err(wrap_err)?
        }
        SourceFormat::Relational(opts) => {
            relational::wrap(&source.content, opts).map_err(wrap_err)?
        }
        SourceFormat::Structured(opts) => {
            structured::wrap(&source.content, opts).map_err(wrap_err)?
        }
        SourceFormat::Html { collection } => {
            html::wrap_documents(&source.html_docs, collection).map_err(wrap_err)?
        }
        SourceFormat::Ddl => {
            strudel_graph::ddl::parse(&source.content).map_err(|error| MediatorError::Ddl {
                source: source.name.clone(),
                error,
            })?
        }
    };
    match &source.mapping {
        None => Ok(wrapped),
        Some(mapping) => {
            let program =
                strudel_struql::parse(mapping).map_err(|error| MediatorError::Mapping {
                    source: source.name.clone(),
                    error,
                })?;
            let db = Database::from_graph(wrapped, IndexLevel::ExtensionOnly);
            let result = Evaluator::new(&db)
                .eval(&program)
                .map_err(|error| MediatorError::Mapping {
                    source: source.name.clone(),
                    error,
                })?;
            Ok(result.graph)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_source() -> Source {
        Source::new(
            "people",
            SourceFormat::Relational(relational::TableOptions::new("PeopleRows")),
            "id,name,dept\nmff,Mary Fernandez,db\nsuciu,Dan Suciu,db\n",
        )
    }

    #[test]
    fn integrates_multiple_sources() {
        let mut m = Mediator::new();
        m.add_source(people_source());
        m.add_source(Source::new(
            "bib",
            SourceFormat::Bibtex,
            "@article{p1, title={T1}, author={Mary Fernandez}, year=1997}",
        ));
        m.add_source(Source::new(
            "projects",
            SourceFormat::Structured(structured::RecordOptions::new("Projects")),
            "id: strudel\nname: Strudel\nmember: mff\n",
        ));
        let w = m.build().unwrap();
        assert_eq!(w.reports.len(), 3);
        assert_eq!(w.graph.members_str("PeopleRows").len(), 2);
        assert_eq!(w.graph.members_str("Publications").len(), 1);
        assert_eq!(w.graph.members_str("Projects").len(), 1);
        assert!(w.reports.iter().all(|r| r.rewrapped));
    }

    #[test]
    fn gav_mapping_reshapes_a_source() {
        let mut m = Mediator::new();
        // Mediated schema wants a People collection of Person(x) objects
        // with a uniform `fullname` attribute.
        m.add_source(people_source().with_mapping(
            r#"
            where PeopleRows(x), x -> "name" -> n
            create Person(x)
            link Person(x) -> "fullname" -> n
            collect People(Person(x))
        "#,
        ));
        let w = m.build().unwrap();
        let people = w.graph.members_str("People");
        assert_eq!(people.len(), 2);
        let p = people[0].as_node().unwrap();
        assert_eq!(w.graph.attr_str(p, "fullname").count(), 1);
    }

    #[test]
    fn rebuild_uses_cache_for_unchanged_sources() {
        let mut m = Mediator::new();
        m.add_source(people_source());
        m.add_source(Source::new(
            "bib",
            SourceFormat::Bibtex,
            "@article{p1, title={T}, year=1998}",
        ));
        let w1 = m.build().unwrap();
        assert!(w1.reports.iter().all(|r| r.rewrapped));

        let w2 = m.build().unwrap();
        assert!(w2.reports.iter().all(|r| !r.rewrapped), "all cache hits");
        assert_eq!(w2.graph.node_count(), w1.graph.node_count());

        m.set_content("bib", "@article{p2, title={T2}, year=1999}");
        let w3 = m.build().unwrap();
        assert!(!w3.reports[0].rewrapped, "people unchanged");
        assert!(w3.reports[1].rewrapped, "bib changed");
        assert!(w3.graph.node_by_name("p2").is_some());
        assert!(w3.graph.node_by_name("p1").is_none());
    }

    #[test]
    fn replacing_a_source_by_name() {
        let mut m = Mediator::new();
        m.add_source(people_source());
        m.add_source(Source::new(
            "people",
            SourceFormat::Relational(relational::TableOptions::new("PeopleRows")),
            "id,name\nx,Someone New\n",
        ));
        assert_eq!(m.source_count(), 1);
        let w = m.build().unwrap();
        assert_eq!(w.graph.members_str("PeopleRows").len(), 1);
    }

    #[test]
    fn wrap_errors_carry_source_name() {
        let mut m = Mediator::new();
        m.add_source(Source::new(
            "badbib",
            SourceFormat::Bibtex,
            "@article{broken, title = {unclosed",
        ));
        let err = m.build().unwrap_err();
        assert!(err.to_string().contains("badbib"));
    }

    #[test]
    fn mapping_errors_carry_source_name() {
        let mut m = Mediator::new();
        m.add_source(people_source().with_mapping("where ( create"));
        let err = m.build().unwrap_err();
        assert!(err.to_string().contains("people"));
    }

    #[test]
    fn ddl_sources_import_directly() {
        let mut m = Mediator::new();
        m.add_source(Source::new(
            "extra",
            SourceFormat::Ddl,
            r#"object mff in People { phone : 5551234; }"#,
        ));
        let w = m.build().unwrap();
        assert_eq!(w.graph.members_str("People").len(), 1);
    }

    #[test]
    fn html_sources_wrap_documents() {
        let mut m = Mediator::new();
        m.add_source(Source::html(
            "cnn",
            "Articles",
            vec![
                html::HtmlDoc {
                    name: "a.html".into(),
                    html: "<title>A</title><a href=\"b.html\">b</a>".into(),
                },
                html::HtmlDoc {
                    name: "b.html".into(),
                    html: "<title>B</title>".into(),
                },
            ],
        ));
        let w = m.build().unwrap();
        assert_eq!(w.graph.members_str("Articles").len(), 2);
    }
}
