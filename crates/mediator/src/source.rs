//! Source descriptions.

use strudel_wrappers::bibtex::BibtexOptions;
use strudel_wrappers::html::HtmlDoc;
use strudel_wrappers::relational::TableOptions;
use strudel_wrappers::structured::RecordOptions;

/// How a source's content is interpreted.
#[derive(Clone, Debug)]
pub enum SourceFormat {
    /// A BibTeX bibliography (default options).
    Bibtex,
    /// A BibTeX bibliography with explicit options.
    BibtexWith(BibtexOptions),
    /// A CSV table.
    Relational(TableOptions),
    /// A key/value record file.
    Structured(RecordOptions),
    /// A batch of HTML pages placed in the named collection. The content
    /// string is ignored; pages come from [`Source::html_docs`].
    Html {
        /// Collection the wrapped pages join.
        collection: String,
    },
    /// A Strudel DDL document.
    Ddl,
}

/// One external source: name, format, and current content.
#[derive(Clone, Debug)]
pub struct Source {
    /// Unique source name.
    pub name: String,
    /// Interpretation of the content.
    pub format: SourceFormat,
    /// Text content (for text formats).
    pub content: String,
    /// HTML documents (for [`SourceFormat::Html`]).
    pub html_docs: Vec<HtmlDoc>,
    /// Optional GAV mapping: a STRUQL program applied to the wrapped
    /// source graph; its output graph joins the warehouse. Without a
    /// mapping, the wrapped graph is imported unchanged.
    pub mapping: Option<String>,
}

impl Source {
    /// A text source.
    pub fn new(name: &str, format: SourceFormat, content: &str) -> Self {
        Source {
            name: name.to_owned(),
            format,
            content: content.to_owned(),
            html_docs: Vec::new(),
            mapping: None,
        }
    }

    /// An HTML source from a batch of documents.
    pub fn html(name: &str, collection: &str, docs: Vec<HtmlDoc>) -> Self {
        Source {
            name: name.to_owned(),
            format: SourceFormat::Html {
                collection: collection.to_owned(),
            },
            content: String::new(),
            html_docs: docs,
            mapping: None,
        }
    }

    /// Attaches a GAV mapping (STRUQL source).
    pub fn with_mapping(mut self, mapping: &str) -> Self {
        self.mapping = Some(mapping.to_owned());
        self
    }

    /// A content fingerprint for change detection (FNV-1a over content and
    /// mapping).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.content.as_bytes());
        for d in &self.html_docs {
            h.write(d.name.as_bytes());
            h.write(d.html.as_bytes());
        }
        if let Some(m) = &self.mapping {
            h.write(m.as_bytes());
        }
        h.finish()
    }
}

/// Minimal FNV-1a, enough for change detection (not security).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        // Separate fields so ("ab","c") ≠ ("a","bc").
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_changes_with_content() {
        let a = Source::new("s", SourceFormat::Ddl, "object a {}");
        let b = Source::new("s", SourceFormat::Ddl, "object b {}");
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = Source::new("s", SourceFormat::Ddl, "object a {}");
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn fingerprint_changes_with_mapping() {
        let a = Source::new("s", SourceFormat::Ddl, "object a {}");
        let b = a.clone().with_mapping("where C(x) create P(x)");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_field_separation() {
        let mut a = Source::html(
            "s",
            "C",
            vec![HtmlDoc {
                name: "ab".into(),
                html: "c".into(),
            }],
        );
        let b = Source::html(
            "s",
            "C",
            vec![HtmlDoc {
                name: "a".into(),
                html: "bc".into(),
            }],
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        a.html_docs[0].name = "a".into();
        a.html_docs[0].html = "bc".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
