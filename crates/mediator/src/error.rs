//! Mediator errors.

use std::fmt;

/// An error while wrapping a source or applying its GAV mapping.
#[derive(Debug)]
pub enum MediatorError {
    /// A wrapper rejected its input.
    Wrap {
        /// Source name.
        source: String,
        /// The wrapper's error.
        error: strudel_wrappers::WrapError,
    },
    /// A DDL source failed to parse.
    Ddl {
        /// Source name.
        source: String,
        /// The DDL error.
        error: strudel_graph::ddl::DdlError,
    },
    /// A GAV mapping failed to parse or evaluate.
    Mapping {
        /// Source name.
        source: String,
        /// The STRUQL error.
        error: strudel_struql::StruqlError,
    },
}

impl fmt::Display for MediatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediatorError::Wrap { source, error } => {
                write!(f, "source '{source}': {error}")
            }
            MediatorError::Ddl { source, error } => {
                write!(f, "source '{source}': {error}")
            }
            MediatorError::Mapping { source, error } => {
                write!(f, "mapping for source '{source}': {error}")
            }
        }
    }
}

impl std::error::Error for MediatorError {}
