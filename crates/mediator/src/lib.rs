//! # strudel-mediator
//!
//! The Strudel mediator: a uniform, integrated view of all data feeding a
//! site, irrespective of where it is stored (§2.1).
//!
//! Two design choices from the paper are reproduced:
//!
//! * **Warehousing** — wrapped sources are materialized into one data
//!   graph in the repository ("this simplified our implementation and
//!   sufficed for our applications, which have small databases"). The
//!   [`Mediator`] caches per-source snapshots keyed by a content hash, so
//!   [`Mediator::build`] after a source edit re-wraps only what changed.
//! * **GAV mappings** — the relationship between the mediated schema and
//!   each source is a query *over the source* producing mediated
//!   collections ("for each relation R in the mediated schema, a query
//!   over the source relations specifies how to obtain R's tuples"). A
//!   source's mapping is a STRUQL program applied to its wrapped graph;
//!   sources without a mapping are imported as-is. GAV was the right fit
//!   because it "was immediately extensible to STRUQL".
//!
//! ```
//! use strudel_mediator::{Mediator, Source, SourceFormat};
//!
//! let mut m = Mediator::new();
//! m.add_source(Source::new(
//!     "bib",
//!     SourceFormat::Bibtex,
//!     "@article{p1, title={T}, year=1998, author={A. Author}}",
//! ));
//! let w = m.build().unwrap();
//! assert_eq!(w.graph.members_str("Publications").len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod source;
mod warehouse;

pub use error::MediatorError;
pub use source::{Source, SourceFormat};
pub use warehouse::{Mediator, SourceReport, Warehouse};
