//! Persistence integration: warehoused data graphs survive snapshot + WAL
//! round trips and keep producing identical sites.

use strudel::repo::{Database, IndexLevel};
use strudel::struql::Evaluator;
use strudel_bench::paper_news_corpus;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("strudel-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn warehouse_survives_restart_and_regenerates_the_same_site() {
    let dir = tmpdir("site");
    let corpus = paper_news_corpus(40);
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus);
    let wrapped = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
    let program = strudel::struql::parse(strudel::sites::NEWS_QUERY).unwrap();

    // Session 1: ingest through the durable repository, evaluate, checkpoint.
    let (nodes1, edges1) = {
        let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
        // Replay the wrapped graph into the durable database via a delta.
        let mut delta = strudel::graph::GraphDelta::new();
        for oid in wrapped.node_oids() {
            delta.add_node(wrapped.node_name(oid));
        }
        for oid in wrapped.node_oids() {
            for e in wrapped.edges(oid) {
                delta.add_edge(oid, wrapped.label_name(e.label), e.to.clone());
            }
        }
        for (cid, name) in wrapped.collections() {
            for m in wrapped.members(cid) {
                delta.collect(name, m.clone());
            }
        }
        db.apply_delta(&delta).unwrap();
        db.checkpoint().unwrap();
        let r = Evaluator::new(&db).eval(&program).unwrap();
        (r.new_nodes.len(), r.graph.edge_count())
    };

    // Session 2: reopen from disk and re-evaluate.
    {
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        assert_eq!(db.graph().node_count(), wrapped.node_count());
        let r = Evaluator::new(&db).eval(&program).unwrap();
        assert_eq!(r.new_nodes.len(), nodes1);
        assert_eq!(r.graph.edge_count(), edges1);
    }

    // Session 3: an update lands in the WAL only (no checkpoint), then the
    // store reopens and still reflects it.
    {
        let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("article0.html").unwrap();
        db.add_edge(a, "paragraph", strudel::graph::Value::string("breaking update"))
            .unwrap();
    }
    {
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("article0.html").unwrap();
        assert!(db
            .graph()
            .attr_str(a, "paragraph")
            .any(|v| v.as_str() == Some("breaking update")));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ddl_export_reimports_into_equivalent_warehouse() {
    // DDL is the exchange format between wrappers and the repository: a
    // warehoused graph printed to DDL and re-parsed drives the same site.
    let corpus = paper_news_corpus(25);
    let site = strudel::sites::news_site(&corpus).build().unwrap();
    let data = site.database.graph();

    let text = strudel::graph::ddl::print(data);
    let reparsed = strudel::graph::ddl::parse(&text).unwrap();
    assert_eq!(reparsed.node_count(), data.node_count());
    assert_eq!(reparsed.edge_count(), data.edge_count());

    let db2 = Database::from_graph(reparsed, IndexLevel::Full);
    let program = strudel::struql::parse(strudel::sites::NEWS_QUERY).unwrap();
    let r2 = Evaluator::new(&db2).eval(&program).unwrap();
    assert_eq!(r2.new_nodes.len(), site.result.new_nodes.len());
}

#[test]
fn snapshot_of_site_graph_round_trips() {
    let corpus = paper_news_corpus(25);
    let site = strudel::sites::news_site(&corpus).build().unwrap();
    let mut buf = Vec::new();
    strudel::repo::snapshot::save_graph(&site.result.graph, &mut buf).unwrap();
    let loaded = strudel::repo::snapshot::load_graph(&mut &buf[..]).unwrap();
    assert_eq!(loaded.node_count(), site.result.graph.node_count());
    assert_eq!(loaded.edge_count(), site.result.graph.edge_count());

    // The loaded site graph renders identically.
    let roots: Vec<strudel::graph::Oid> = loaded
        .members_str("FrontRoot")
        .iter()
        .filter_map(strudel::graph::Value::as_node)
        .collect();
    let out = strudel::template::HtmlGenerator::new(&loaded, &site.templates)
        .generate(&roots)
        .unwrap();
    let original = site.render().unwrap();
    assert_eq!(out.pages.len(), original.pages.len());
}
